//! Reviewing an XML specification the way the paper's conclusion suggests:
//! use the constraint/DTD interaction to tell good design from bad design.
//!
//! A vocabulary team writes the DTD and the constraints in plain text (the
//! same files `xic-cli` consumes).  The review then:
//!
//! 1. parses both artifacts,
//! 2. checks consistency,
//! 3. when the specification is inconsistent, extracts the *minimal
//!    inconsistent core* — the constraints that actually clash with the
//!    DTD's cardinality requirements — and
//! 4. shows a repaired specification that keeps every constraint outside the
//!    core.
//!
//! Run with: `cargo run --example design_review`

use xml_integrity_constraints::constraints::{parse_constraint_set, ConstraintSet};
use xml_integrity_constraints::core::{diagnose, CheckerConfig, ConsistencyChecker, Diagnosis};
use xml_integrity_constraints::dtd::parse_dtd;
use xml_integrity_constraints::xml::write_document;

/// A conference-programme vocabulary: every session has exactly two talks
/// (a main talk and a response), mirroring the cardinality trap of the
/// paper's teachers example.
const DTD: &str = r#"
    <!ELEMENT programme (session+)>
    <!ELEMENT session (talk, talk)>
    <!ELEMENT talk (#PCDATA)>
    <!ATTLIST session chair CDATA #REQUIRED>
    <!ATTLIST talk speaker CDATA #REQUIRED>
"#;

/// The constraints a well-meaning designer might write: chairs identify
/// sessions, speakers identify talks, and every speaker must also chair some
/// session.  The last two together contradict the "two talks per session"
/// content model.
const CONSTRAINTS: &str = "
    session.chair -> session
    talk.speaker -> talk
    talk.speaker ref session.chair     # every speaker chairs a session
";

fn main() {
    let dtd = parse_dtd(DTD, Some("programme")).expect("DTD parses");
    let sigma = parse_constraint_set(CONSTRAINTS, &dtd).expect("constraints parse");

    println!("== specification under review ==");
    println!("{}", sigma.render(&dtd));

    let checker = ConsistencyChecker::new();
    let verdict = checker
        .check(&dtd, &sigma)
        .expect("well-formed specification");
    if verdict.is_consistent() {
        println!("verdict: consistent — nothing to review");
        return;
    }
    println!("verdict: INCONSISTENT — no conforming document can satisfy these constraints\n");

    println!("== diagnosis ==");
    let diagnosis = diagnose(&dtd, &sigma, &CheckerConfig::default()).expect("unary specification");
    println!("{}", diagnosis.render(&dtd));

    // Propose a repair: keep everything outside the minimal core, and keep
    // the core minus its weakest member (here: drop the talk key, which is
    // what forces |talk.speaker| = |talk| = 2·|session|).
    let Diagnosis::Core {
        constraints: core,
        innocent,
    } = &diagnosis
    else {
        return;
    };
    println!("== proposed repair ==");
    let mut repaired = ConstraintSet::new();
    for c in innocent {
        repaired.push(c.clone());
    }
    for c in core.iter().skip(1) {
        repaired.push(c.clone());
    }
    println!("keep:\n{}", repaired.render(&dtd));
    println!("drop: {}", core[0].render(&dtd));

    let verdict = checker
        .check(&dtd, &repaired)
        .expect("well-formed specification");
    assert!(
        verdict.is_consistent(),
        "the repaired specification must be consistent"
    );
    println!("\nthe repaired specification is consistent; an example document:");
    if let Some(witness) = verdict.witness() {
        println!("{}", write_document(witness, &dtd));
    }
}
