//! Quickstart: the paper's introductory example, end to end.
//!
//! * parse the teachers DTD `D1` from its textual form;
//! * state the constraints Σ1 (two keys and a foreign key);
//! * ask the static checker whether the specification is consistent — it is
//!   not, exactly as Section 1 of the paper argues;
//! * drop the subject key, re-check, and synthesize + print a witness
//!   document;
//! * also show that the DTD `D2` is unsatisfiable even with no constraints.
//!
//! Run with: `cargo run --example quickstart`

use xml_integrity_constraints::constraints::{Constraint, ConstraintSet};
use xml_integrity_constraints::core::ConsistencyChecker;
use xml_integrity_constraints::dtd::{example_d2, parse_dtd};
use xml_integrity_constraints::xml::write_document;

const D1_TEXT: &str = r#"
    <!ELEMENT teachers (teacher+)>
    <!ELEMENT teacher (teach, research)>
    <!ELEMENT teach (subject, subject)>
    <!ELEMENT research (#PCDATA)>
    <!ELEMENT subject (#PCDATA)>
    <!ATTLIST teacher name CDATA #REQUIRED>
    <!ATTLIST subject taught_by CDATA #REQUIRED>
"#;

fn main() {
    let d1 = parse_dtd(D1_TEXT, Some("teachers")).expect("D1 parses");
    let teacher = d1.type_by_name("teacher").unwrap();
    let subject = d1.type_by_name("subject").unwrap();
    let name = d1.attr_by_name("name").unwrap();
    let taught_by = d1.attr_by_name("taught_by").unwrap();

    // Σ1: name keys teachers, taught_by keys subjects and references names.
    let sigma1 = ConstraintSet::from_vec(vec![
        Constraint::unary_key(teacher, name),
        Constraint::unary_key(subject, taught_by),
        Constraint::unary_foreign_key(subject, taught_by, teacher, name),
    ]);

    let checker = ConsistencyChecker::new();
    println!("== D1 with Σ1 (the paper's Section 1 example) ==");
    println!("{}", sigma1.render(&d1));
    let outcome = checker.check(&d1, &sigma1).expect("well-formed spec");
    println!(
        "verdict: {}",
        if outcome.is_consistent() {
            "CONSISTENT"
        } else {
            "INCONSISTENT"
        }
    );
    println!("why: {}\n", outcome.explanation());

    // Drop the subject key: the specification becomes meaningful.
    let relaxed = ConstraintSet::from_vec(vec![
        Constraint::unary_key(teacher, name),
        Constraint::unary_foreign_key(subject, taught_by, teacher, name),
    ]);
    println!("== D1 with Σ1 minus the subject key ==");
    let outcome = checker.check(&d1, &relaxed).expect("well-formed spec");
    println!(
        "verdict: {}",
        if outcome.is_consistent() {
            "CONSISTENT"
        } else {
            "INCONSISTENT"
        }
    );
    if let Some(witness) = outcome.witness() {
        println!(
            "a smallest witness document:\n{}",
            write_document(witness, &d1)
        );
    }

    // D2 has no finite valid tree at all.
    let d2 = example_d2();
    println!("== D2 = <!ELEMENT db (foo)> <!ELEMENT foo (foo)> with no constraints ==");
    let outcome = checker
        .check(&d2, &ConstraintSet::new())
        .expect("well-formed spec");
    println!(
        "verdict: {}",
        if outcome.is_consistent() {
            "CONSISTENT"
        } else {
            "INCONSISTENT"
        }
    );
    println!("why: {}", outcome.explanation());
}
