//! Session API: edit a live document and re-validate incrementally.
//!
//! The repair loop the paper's checking problem `T ⊨ Σ` runs inside in
//! practice: load a document once, then alternate edits and re-checks until
//! the data is clean.  A [`Session`] keeps the satisfaction indexes exact
//! under every edit, so each re-check costs O(edit) instead of a rebuild —
//! and it reports how many constraints it actually had to re-examine.
//!
//! Run with: `cargo run --example session_editing`

use xml_integrity_constraints::engine::{CompiledSpec, Session};
use xml_integrity_constraints::xml::EditOp;

const DTD: &str = r#"
    <!ELEMENT school (course*, enroll*)>
    <!ELEMENT course EMPTY>
    <!ELEMENT enroll EMPTY>
    <!ATTLIST course code CDATA #REQUIRED>
    <!ATTLIST enroll course CDATA #REQUIRED>
"#;

const SIGMA: &str = "
    course.code -> course
    enroll.course ref course.code
";

const DOC: &str = r#"<school>
    <course code="db101"/>
    <course code="db101"/>
    <enroll course="ml305"/>
</school>"#;

fn main() {
    let spec = CompiledSpec::from_sources(DTD, Some("school"), SIGMA).expect("spec compiles");
    let course = spec.dtd().type_by_name("course").unwrap();
    let code = spec.dtd().attr_by_name("code").unwrap();

    let mut session = Session::new(&spec);
    let doc = session.open_source(DOC).expect("document parses");

    // Two problems: a duplicate course code, and an enrolment referencing a
    // course that does not exist.
    let verdict = session.verdict(doc).unwrap();
    println!("== initial document ==");
    for v in verdict.violations() {
        println!("  violation: {v}");
    }

    // Repair 1: rename the duplicate course.  Only the constraints whose
    // slots mention course.code are re-checked.
    let dup = session.tree(doc).unwrap().ext(course).nth(1).unwrap();
    let verdict = session
        .apply(
            doc,
            &[EditOp::SetAttr {
                element: dup,
                attr: code,
                value: "ml305".into(),
            }],
        )
        .unwrap();
    println!("\n== after renaming the duplicate course to ml305 ==");
    println!(
        "  re-checked {} of {} constraints",
        verdict.rechecked(),
        spec.sigma().len()
    );
    for v in verdict.violations() {
        println!("  violation: {v}");
    }
    assert!(verdict.is_clean(), "one edit fixed both problems");

    // Break it again: removing the ml305 course re-dangles the enrolment.
    let ml305 = session.tree(doc).unwrap().ext(course).nth(1).unwrap();
    let verdict = session
        .apply(doc, &[EditOp::RemoveSubtree { element: ml305 }])
        .unwrap();
    println!("\n== after removing the ml305 course ==");
    for v in verdict.violations() {
        println!("  violation: {v}");
    }
    assert!(!verdict.is_clean());

    // The journal holds the full edit history; the edited tree survives the
    // session.
    println!(
        "\n{} edits journaled; closing returns the edited tree",
        session.journal(doc).unwrap().len()
    );
    let tree = session.close(doc).unwrap();
    println!("final document: {} live nodes", tree.num_nodes());
}
