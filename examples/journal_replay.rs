//! Journal persistence & replication: crash-recover an edited session from
//! its delta log, and keep a validation replica in sync from `BatchDelta`s
//! alone.
//!
//! The scenario: a registrar's editing session crashes mid-shift — the
//! process dies, the document and its edit history must not.  Meanwhile a
//! reporting replica on another box wants the corpus verdicts live,
//! without ever being shipped a document.  Both rest on the same
//! append-only log format (`xic_engine::journal`): base snapshot + edit
//! ops for a session, one `BatchDelta` per commit for a corpus.
//!
//! Run with: `cargo run --example journal_replay`

use xml_integrity_constraints::engine::journal::{append_delta_log, read_delta_log};
use xml_integrity_constraints::engine::{CompiledSpec, CorpusReplica, CorpusSession, Session};
use xml_integrity_constraints::xml::EditOp;

const DTD: &str = r#"
    <!ELEMENT department (course*, enroll*)>
    <!ELEMENT course EMPTY>
    <!ELEMENT enroll EMPTY>
    <!ATTLIST course code CDATA #REQUIRED>
    <!ATTLIST enroll course CDATA #REQUIRED>
"#;

const SIGMA: &str = "
    course.code -> course
    enroll.course ref course.code
";

fn main() {
    let spec = CompiledSpec::from_sources(DTD, Some("department"), SIGMA).expect("spec compiles");
    let code = spec.dtd().attr_by_name("code").unwrap();
    let course = spec.dtd().type_by_name("course").unwrap();
    let dir = std::env::temp_dir();
    let session_log = dir.join(format!("xic-example-session-{}.xicj", std::process::id()));
    let delta_log = dir.join(format!("xic-example-deltas-{}.xicj", std::process::id()));
    std::fs::remove_file(&session_log).ok();
    std::fs::remove_file(&delta_log).ok();

    // --- Part 1: crash recovery of a single editing session. -------------
    let mut session = Session::new(&spec);
    let doc = session
        .open_source(r#"<department><course code="db101"/></department>"#)
        .unwrap();
    session
        .persist_to(doc, &session_log)
        .expect("base persisted");

    // Edit: add a course, give it a clashing code — then persist the ops.
    let root = session.tree(doc).unwrap().root();
    session
        .apply(
            doc,
            &[EditOp::AddElement {
                parent: root,
                ty: course,
            }],
        )
        .unwrap();
    let added = session.tree(doc).unwrap().ext(course).nth(1).unwrap();
    let verdict = session
        .apply(
            doc,
            &[EditOp::SetAttr {
                element: added,
                attr: code,
                value: "db101".into(),
            }],
        )
        .unwrap();
    println!("live session clean? {}", verdict.is_clean());
    session.persist_to(doc, &session_log).expect("ops appended");
    // The durable prefix is on disk: the in-memory journal can shrink.
    let dropped = session.compact(doc).unwrap();
    println!("compacted {dropped} journal entries (log holds the history)");

    // 💥 The process dies here.  A fresh session recovers from the log:
    // base snapshot + op replay, witness-identical to the session we lost.
    drop(session);
    let mut recovered = Session::new(&spec);
    let recovery = recovered.recover_from(&session_log).expect("recovers");
    println!(
        "recovered {} base edits + {} replayed ops; clean? {}",
        recovery.base_edits,
        recovery.ops_replayed,
        recovered.verdict(recovery.handle).unwrap().is_clean()
    );

    // --- Part 2: a replica fed nothing but deltas. -----------------------
    let mut corpus = CorpusSession::new(&spec);
    let mut replica = CorpusReplica::new(spec.id());
    corpus
        .open_source(
            "math.xml",
            r#"<department><course code="db101"/><enroll course="db101"/></department>"#,
        )
        .unwrap();
    corpus
        .open_source("cs.xml", r#"<department><course code="cs1"/></department>"#)
        .unwrap();
    corpus.commit();

    // Ship the new deltas: append to the durable log, apply to the replica.
    let fresh = corpus.export_deltas(replica.last_seq()).unwrap();
    append_delta_log(&delta_log, spec.id(), fresh).unwrap();
    replica.apply_deltas(fresh).unwrap();
    assert_eq!(replica.report(), corpus.report());
    println!(
        "replica mirrors {} documents after commit {}",
        replica.num_docs(),
        replica.last_seq()
    );

    // An edit flips math.xml to violating; the replica follows the delta.
    let math = corpus.handle_by_label("math.xml").unwrap();
    let enroll_node = corpus.tree(math).unwrap().elements().nth(2).unwrap();
    let enroll_course = spec.dtd().attr_by_name("course").unwrap();
    corpus
        .apply(
            math,
            &[EditOp::SetAttr {
                element: enroll_node,
                attr: enroll_course,
                value: "missing".into(),
            }],
        )
        .unwrap();
    corpus.commit();
    let fresh = corpus.export_deltas(replica.last_seq()).unwrap();
    append_delta_log(&delta_log, spec.id(), fresh).unwrap();
    replica.apply_deltas(fresh).unwrap();
    assert_eq!(replica.report(), corpus.report());
    println!(
        "after commit {}: {}/{} clean on the replica — no document was ever shipped",
        replica.last_seq(),
        replica.report().clean_count(),
        replica.report().total()
    );

    // The replica itself restarts: recover from the delta log alone.
    drop(replica);
    let (reborn, truncated) = CorpusReplica::recover_from(&delta_log, spec.id()).unwrap();
    assert!(!truncated);
    assert_eq!(reborn.report(), corpus.report());
    println!(
        "replica recovered from {} ({} commits) and still agrees",
        delta_log.display(),
        reborn.last_seq()
    );
    let log = read_delta_log(&delta_log, spec.id()).unwrap();
    println!(
        "the log is self-describing: {} deltas, {} durable bytes",
        log.deltas.len(),
        log.durable_bytes
    );

    std::fs::remove_file(&session_log).ok();
    std::fs::remove_file(&delta_log).ok();
}
