//! Corpus sessions: keep a whole fleet of documents open against one spec
//! and re-verdict in O(edited documents) per change.
//!
//! The scenario: a registrar system holds one document per department, all
//! validated against the same `(DTD, Σ)`.  Change notifications arrive for
//! one department at a time; after each, the system wants the corpus-wide
//! verdict *and* a diff it can push to subscribers — without re-validating
//! the departments that did not change.
//!
//! Run with: `cargo run --example corpus_validation`

use xml_integrity_constraints::engine::{CompiledSpec, CorpusSession};
use xml_integrity_constraints::xml::EditOp;

const DTD: &str = r#"
    <!ELEMENT department (course*, enroll*)>
    <!ELEMENT course EMPTY>
    <!ELEMENT enroll EMPTY>
    <!ATTLIST course code CDATA #REQUIRED>
    <!ATTLIST enroll course CDATA #REQUIRED>
"#;

const SIGMA: &str = "
    course.code -> course
    enroll.course ref course.code
";

fn main() {
    let spec = CompiledSpec::from_sources(DTD, Some("department"), SIGMA).expect("spec compiles");
    let code = spec.dtd().attr_by_name("code").unwrap();

    // Open one document per department.  They share the spec's compiled
    // automata, its incremental-index layout (derived once, not per
    // document) and one value pool — "db101" below is interned exactly
    // once for the whole corpus.
    let mut corpus = CorpusSession::new(&spec);
    let math = corpus
        .open_source(
            "math.xml",
            r#"<department><course code="db101"/><enroll course="db101"/></department>"#,
        )
        .expect("parses");
    let physics = corpus
        .open_source(
            "physics.xml",
            r#"<department><course code="qm200"/><enroll course="qm200"/></department>"#,
        )
        .expect("parses");

    // The first commit checks everything once and admits both documents
    // into the delta stream.
    let delta = corpus.commit();
    println!(
        "commit {}: {}/{} clean ({} checked)",
        delta.seq, delta.clean, delta.total, delta.rechecked_docs
    );

    // A change notification for math: rename its course so the enrolment
    // dangles.  Only math is dirty — physics is never re-checked.
    let course_node = corpus.tree(math).unwrap().elements().nth(1).unwrap();
    corpus
        .apply(
            math,
            &[EditOp::SetAttr {
                element: course_node,
                attr: code,
                value: "db102".into(),
            }],
        )
        .expect("edit applies");
    let delta = corpus.commit();
    println!(
        "commit {}: {}/{} clean ({} checked)",
        delta.seq, delta.clean, delta.total, delta.rechecked_docs
    );
    assert_eq!(delta.rechecked_docs, 1, "physics was served from cache");
    for change in &delta.changes {
        println!(
            "  {} flipped: clean {:?} -> {}",
            change.report.label,
            change.was_clean,
            change.now_clean()
        );
        for v in &change.report.violations {
            println!("    {v}");
        }
    }

    // Healing the edit flips it back; subscribers see exactly one change.
    corpus
        .apply(
            math,
            &[EditOp::SetAttr {
                element: course_node,
                attr: code,
                value: "db101".into(),
            }],
        )
        .expect("edit applies");
    let delta = corpus.commit();
    assert!(delta.changes.len() == 1 && delta.changes[0].now_clean());
    println!(
        "commit {}: {}/{} clean again",
        delta.seq, delta.clean, delta.total
    );

    // Snapshots on demand: the full report equals what a cold batch run
    // over the current trees would say, ordered by open order.
    let report = corpus.report();
    println!("{}", report.render());
    let _ = physics;
}
