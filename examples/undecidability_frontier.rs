//! The undecidability frontier (Section 3): the chain of reductions
//!
//! ```text
//! FD implication by FDs+INDs  →  key implication by keys+FKs  →  ¬(XML consistency)
//! ```
//!
//! run on concrete instances.  The relational side is explored with the
//! bounded chase; the XML side with the consistency checker; on hard
//! instances both sides honestly report that they ran out of budget — the
//! observable footprint of Theorem 3.1.
//!
//! Run with: `cargo run --example undecidability_frontier`

use xml_integrity_constraints::core::{relational_to_spec, ConsistencyChecker};
use xml_integrity_constraints::relational::{
    encode_fd_implication, implies_fd, ChaseConfig, ChaseResult, RelConstraint, RelSchema,
};

fn main() {
    // A small registrar-style relational schema.
    let mut schema = RelSchema::new();
    let enrol = schema.add_relation("enrol", &["student", "course", "grade"]);
    let course = schema.add_relation("course", &["cid", "dept"]);
    let sigma = vec![
        RelConstraint::fd(enrol, &["student", "course"], &["grade"]),
        RelConstraint::ind(enrol, &["course"], course, &["cid"]),
        RelConstraint::fd(course, &["cid"], &["dept"]),
    ];

    println!("== relational side: chase-based FD implication ==");
    for (label, lhs, rhs) in [
        (
            "enrol: student,course → grade (restated)",
            vec!["student", "course"],
            vec!["grade"],
        ),
        ("enrol: student → grade", vec!["student"], vec!["grade"]),
        ("course: cid → dept (restated)", vec!["cid"], vec!["dept"]),
    ] {
        let rel = if label.starts_with("enrol") {
            enrol
        } else {
            course
        };
        let result = implies_fd(
            &schema,
            &sigma,
            rel,
            &lhs.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            &rhs.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            &ChaseConfig::default(),
        );
        println!("  {label:<46} {}", describe(&result));
    }

    println!("\n== Lemma 3.2: the same implication, phrased with keys and foreign keys ==");
    let target_lhs = vec!["student".to_string()];
    let target_rhs = vec!["grade".to_string()];
    let fd_sigma: Vec<RelConstraint> = sigma
        .iter()
        .filter(|c| matches!(c, RelConstraint::Fd { .. } | RelConstraint::Ind { .. }))
        .cloned()
        .collect();
    let encoded = encode_fd_implication(&schema, &fd_sigma, enrol, &target_lhs, &target_rhs);
    println!(
        "  encoded into {} relations and {} keys/foreign keys; target: {}",
        encoded.schema.num_relations(),
        encoded.sigma.len(),
        encoded.target_key.render(&encoded.schema)
    );

    println!("\n== Theorem 3.1: keys/foreign keys as an XML specification ==");
    let key_sigma = vec![RelConstraint::key(course, &["cid"])];
    let spec = relational_to_spec(&schema, &key_sigma, course, &["cid".to_string()]);
    println!(
        "  generated DTD with {} element types:",
        spec.dtd.num_types()
    );
    println!("{}", indent(&spec.dtd.render()));
    let outcome = ConsistencyChecker::new()
        .check(&spec.dtd, &spec.sigma)
        .expect("well-formed");
    println!(
        "  consistency of the generated XML specification: {}",
        if outcome.is_consistent() {
            "consistent — so the relational key is NOT implied"
        } else if outcome.is_inconsistent() {
            "inconsistent — so the relational key IS implied"
        } else {
            "undetermined (this is the undecidable class; the checker is allowed to give up)"
        }
    );
}

fn describe(result: &ChaseResult) -> &'static str {
    match result {
        ChaseResult::Implied => "implied",
        ChaseResult::NotImplied(_) => "not implied (counterexample instance built)",
        ChaseResult::Unknown => "undetermined (chase budget exhausted)",
    }
}

fn indent(s: &str) -> String {
    s.lines()
        .map(|l| format!("    {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
