//! A miniature "XML specification linter": reads a DTD, a constraint list and
//! optionally a document (all inline here, but the functions take plain
//! strings so they could come from files), then
//!
//! 1. statically checks the specification for consistency and prints the
//!    cardinality system the verdict is based on;
//! 2. dynamically validates the document against the DTD and the constraints.
//!
//! This is the workflow the paper motivates: repeated validation failures can
//! mean a broken document *or* a meaningless specification, and only the
//! static check can tell the two apart.
//!
//! Run with: `cargo run --example spec_linter`

use xml_integrity_constraints::constraints::{Constraint, ConstraintSet};
use xml_integrity_constraints::core::{CardinalitySystem, ConsistencyChecker, SystemOptions};
use xml_integrity_constraints::dtd::parse_dtd;
use xml_integrity_constraints::xml::{parse_document, validate};

const DTD: &str = r#"
    <!ELEMENT library (book+, member*)>
    <!ELEMENT book EMPTY>
    <!ELEMENT member EMPTY>
    <!ATTLIST book isbn CDATA #REQUIRED borrowed_by CDATA #IMPLIED>
    <!ATTLIST member card CDATA #REQUIRED>
"#;

const DOCUMENT: &str = r#"
    <library>
      <book isbn="0-201-53771-0" borrowed_by="m1"/>
      <book isbn="0-201-53771-0" borrowed_by="m2"/>
      <member card="m1"/>
    </library>
"#;

fn main() {
    let dtd = parse_dtd(DTD, Some("library")).expect("DTD parses");
    let book = dtd.type_by_name("book").unwrap();
    let member = dtd.type_by_name("member").unwrap();
    let isbn = dtd.attr_by_name("isbn").unwrap();
    let borrowed_by = dtd.attr_by_name("borrowed_by").unwrap();
    let card = dtd.attr_by_name("card").unwrap();

    let sigma = ConstraintSet::from_vec(vec![
        Constraint::unary_key(book, isbn),
        Constraint::unary_key(member, card),
        Constraint::unary_foreign_key(book, borrowed_by, member, card),
    ]);

    // 1. Static analysis.
    println!("== static analysis ==");
    let system = CardinalitySystem::build(&dtd, &sigma, &SystemOptions::default())
        .expect("unary constraints");
    println!(
        "cardinality system: {} variables, {} linear rows, {} conditionals",
        system.program().num_vars(),
        system.program().num_constraints(),
        system.program().num_conditionals()
    );
    let outcome = ConsistencyChecker::new()
        .check(&dtd, &sigma)
        .expect("well-formed spec");
    println!(
        "specification verdict: {}",
        if outcome.is_consistent() {
            "consistent — documents can exist"
        } else {
            "INCONSISTENT"
        }
    );
    println!();

    // 2. Dynamic validation of the given document.
    println!("== dynamic validation of the sample document ==");
    let doc = parse_document(DOCUMENT, &dtd).expect("document parses");
    let structural = validate(&doc, &dtd);
    if structural.is_empty() {
        println!("structure: conforms to the DTD");
    } else {
        for e in &structural {
            println!("structure error: {e}");
        }
    }
    let violations = xml_integrity_constraints::constraints::check_document(&dtd, &doc, &sigma);
    if violations.is_empty() {
        println!("constraints: all satisfied");
    } else {
        for v in &violations {
            println!("constraint violation of {}", v.constraint());
        }
        println!(
            "\nBecause the static check said the specification is consistent, these failures \
             are data problems, not specification problems."
        );
    }
}
