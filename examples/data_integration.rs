//! Data-integration scenario from the paper's introduction: a mediator
//! publishes an XML interface (a DTD); the sources guarantee some
//! constraints; which constraints can clients rely on?  Since the mediator
//! holds no data, the only way to answer is constraint *implication* over the
//! interface DTD — the coNP procedures of Theorems 4.10/5.4.
//!
//! Run with: `cargo run --example data_integration`

use xml_integrity_constraints::constraints::{Constraint, ConstraintSet};
use xml_integrity_constraints::core::ImplicationChecker;
use xml_integrity_constraints::dtd::parse_dtd;
use xml_integrity_constraints::xml::write_document;

const MEDIATOR_DTD: &str = r#"
    <!ELEMENT feed (supplier*, part*, shipment*)>
    <!ELEMENT supplier EMPTY>
    <!ELEMENT part EMPTY>
    <!ELEMENT shipment EMPTY>
    <!ATTLIST supplier sid CDATA #REQUIRED>
    <!ATTLIST part pid CDATA #REQUIRED owner CDATA #REQUIRED>
    <!ATTLIST shipment item CDATA #REQUIRED by CDATA #REQUIRED>
"#;

fn main() {
    let dtd = parse_dtd(MEDIATOR_DTD, Some("feed")).expect("mediator DTD parses");
    let supplier = dtd.type_by_name("supplier").unwrap();
    let part = dtd.type_by_name("part").unwrap();
    let shipment = dtd.type_by_name("shipment").unwrap();
    let sid = dtd.attr_by_name("sid").unwrap();
    let pid = dtd.attr_by_name("pid").unwrap();
    let owner = dtd.attr_by_name("owner").unwrap();
    let item = dtd.attr_by_name("item").unwrap();
    let by = dtd.attr_by_name("by").unwrap();

    // What the sources guarantee about the integrated feed.
    let sigma = ConstraintSet::from_vec(vec![
        Constraint::unary_key(supplier, sid),
        Constraint::unary_key(part, pid),
        Constraint::unary_foreign_key(part, owner, supplier, sid),
        Constraint::unary_foreign_key(shipment, item, part, pid),
        Constraint::unary_inclusion(shipment, by, part, owner),
    ]);
    println!(
        "source guarantees over the mediator interface:\n{}\n",
        sigma.render(&dtd)
    );

    let checker = ImplicationChecker::new();
    let queries = vec![
        (
            "every shipment.by is a known supplier (shipment.by ⊆ supplier.sid)",
            Constraint::unary_inclusion(shipment, by, supplier, sid),
        ),
        (
            "shipment.item identifies the shipment (shipment.item → shipment)",
            Constraint::unary_key(shipment, item),
        ),
        (
            "part.owner identifies the part (part.owner → part)",
            Constraint::unary_key(part, owner),
        ),
    ];
    for (label, phi) in queries {
        let outcome = checker
            .implies(&dtd, &sigma, &phi)
            .expect("well-formed query");
        println!("can clients rely on: {label}?");
        match &outcome {
            xml_integrity_constraints::core::ImplicationOutcome::Implied { explanation } => {
                println!("  yes — {explanation}\n");
            }
            xml_integrity_constraints::core::ImplicationOutcome::NotImplied {
                counterexample,
                explanation,
            } => {
                println!("  no — {explanation}");
                if let Some(doc) = counterexample {
                    println!(
                        "  counterexample feed:\n{}",
                        indent(&write_document(doc, &dtd))
                    );
                }
            }
            xml_integrity_constraints::core::ImplicationOutcome::Unknown { explanation } => {
                println!("  undetermined — {explanation}\n");
            }
        }
    }
}

fn indent(s: &str) -> String {
    s.lines()
        .map(|l| format!("    {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
