//! The school registrar scenario of Section 2.2: multi-attribute keys and
//! foreign keys over the DTD `D3`.
//!
//! The general class is undecidable, so the library offers keys-only
//! reasoning (linear time), a sound bounded search that here finds a concrete
//! registrar document, and implication queries about what the registrar
//! constraints do and do not guarantee.
//!
//! Run with: `cargo run --example school_registrar`

use xml_integrity_constraints::constraints::{example_sigma3, Constraint};
use xml_integrity_constraints::core::{ConsistencyChecker, ImplicationChecker};
use xml_integrity_constraints::dtd::example_d3;
use xml_integrity_constraints::xml::write_document;

fn main() {
    let d3 = example_d3();
    let sigma3 = example_sigma3(&d3);
    println!("The school DTD:\n{}", d3.render());
    println!("The registrar constraints:\n{}\n", sigma3.render(&d3));

    let checker = ConsistencyChecker::new();
    let outcome = checker.check(&d3, &sigma3).expect("well-formed spec");
    println!(
        "consistency of the registrar specification: {}",
        if outcome.is_consistent() {
            "CONSISTENT"
        } else {
            outcome.explanation()
        }
    );
    if let Some(witness) = outcome.witness() {
        println!(
            "example registrar document:\n{}",
            write_document(witness, &d3)
        );
    }

    // What do the constraints imply?
    let implication = ImplicationChecker::new();
    let enroll = d3.type_by_name("enroll").unwrap();
    let student = d3.type_by_name("student").unwrap();
    let student_id = d3.attr_by_name("student_id").unwrap();
    let dept = d3.attr_by_name("dept").unwrap();
    let course_no = d3.attr_by_name("course_no").unwrap();

    let queries = vec![
        (
            "enroll[student_id, dept, course_no] → enroll (restated)",
            Constraint::key(enroll, vec![student_id, dept, course_no]),
        ),
        (
            "enroll[student_id] → enroll (a student enrols only once?)",
            Constraint::key(enroll, vec![student_id]),
        ),
        (
            "student[student_id, student_id] → student (superkey of the student key)",
            Constraint::key(student, vec![student_id, student_id]),
        ),
    ];
    for (label, phi) in queries {
        let outcome = implication
            .implies(&d3, &sigma3, &phi)
            .expect("well-formed query");
        println!("implied? {:<62} {}", label, summary(&outcome));
    }
}

fn summary(outcome: &xml_integrity_constraints::core::ImplicationOutcome) -> String {
    use xml_integrity_constraints::core::ImplicationOutcome as O;
    match outcome {
        O::Implied { .. } => "yes".to_string(),
        O::NotImplied { counterexample, .. } => format!(
            "no{}",
            if counterexample.is_some() {
                " (counterexample document available)"
            } else {
                ""
            }
        ),
        O::Unknown { .. } => "undetermined (undecidable class)".to_string(),
    }
}
