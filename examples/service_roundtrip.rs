//! The validation service, end to end in one process: an `xic-server`
//! hosting a compiled spec over loopback TCP, a writer client driving
//! edits through the delta-log wire protocol, a reader client mirroring
//! the session with a `CorpusReplica` — and a restart that serves the
//! drained session's history from disk as a read-only replica.
//!
//! Everything on the wire is a PR 5 journal record: the deltas a client
//! receives are byte-identical to the ones `xic journal record` writes to
//! disk, so the stock replica consumes either source.
//!
//! Run with: `cargo run --example service_roundtrip`

use std::net::{IpAddr, Ipv4Addr, SocketAddr};
use std::sync::Arc;

use xml_integrity_constraints::engine::{CompiledSpec, CorpusReplica};
use xml_integrity_constraints::server::{Client, Server, ServerConfig};
use xml_integrity_constraints::xml::EditOp;

const DTD: &str = r#"
    <!ELEMENT department (course*, enroll*)>
    <!ELEMENT course EMPTY>
    <!ELEMENT enroll EMPTY>
    <!ATTLIST course code CDATA #REQUIRED>
    <!ATTLIST enroll course CDATA #REQUIRED>
"#;

const SIGMA: &str = "
    course.code -> course
    enroll.course ref course.code
";

fn main() {
    let spec = Arc::new(
        CompiledSpec::from_sources(DTD, Some("department"), SIGMA).expect("spec compiles"),
    );
    let spec_id = spec.id();
    let state_dir =
        std::env::temp_dir().join(format!("xic-example-service-{}", std::process::id()));
    std::fs::create_dir_all(&state_dir).unwrap();

    // --- A server, a writer, a reader. -----------------------------------
    let server = Server::start(
        Arc::clone(&spec),
        ServerConfig {
            tcp: Some(SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 0)),
            state_dir: Some(state_dir.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.tcp_addr().unwrap();
    println!("service listening on {addr} (spec {spec_id})");

    let source = r#"<department><course code="db101"/><enroll course="db101"/></department>"#;
    let mut writer = Client::connect_tcp(addr, spec_id, "registrar").expect("writer connects");
    let handle = writer.open_doc("math.xml", source).unwrap();
    let delta = writer.commit().unwrap();
    println!(
        "commit {}: {}/{} documents clean",
        delta.seq, delta.clean, delta.total
    );

    // An edit dangles the foreign key; the acknowledged delta carries the
    // violation to every subscriber.  Node ids are deterministic per
    // source, so a local parse of the same document names the server's
    // nodes exactly.
    let course_attr = spec.dtd().attr_by_name("course").unwrap();
    let enroll_node = spec
        .parse_document(source)
        .unwrap()
        .elements()
        .nth(2)
        .unwrap();
    writer
        .apply(
            handle,
            &[EditOp::SetAttr {
                element: enroll_node,
                attr: course_attr,
                value: "missing".into(),
            }],
        )
        .unwrap();
    let delta = writer.commit().unwrap();
    println!(
        "commit {}: {}/{} documents clean",
        delta.seq, delta.clean, delta.total
    );

    // The reader never sees a document — only deltas — yet reconstructs
    // the session's full report.
    let mut reader = Client::connect_tcp(addr, spec_id, "registrar").expect("reader connects");
    let mut replica = CorpusReplica::new(spec_id);
    let applied = reader.sync_replica(&mut replica).unwrap();
    println!(
        "reader synced {applied} deltas: {}/{} clean on the replica",
        replica.report().clean_count(),
        replica.report().total()
    );
    let before_restart = replica.report();

    // --- Graceful drain: acknowledged history goes to disk. ---------------
    let mut admin = Client::connect_tcp(addr, spec_id, "registrar").expect("admin connects");
    let draining = admin.shutdown().unwrap();
    let report = server.wait();
    println!(
        "shutdown drained {draining} session(s): {} deltas persisted to {}",
        report.persisted_deltas,
        state_dir.display()
    );

    // --- Restart: the drained log comes back as a read-only replica. ------
    let server = Server::start(
        Arc::clone(&spec),
        ServerConfig {
            tcp: Some(SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 0)),
            state_dir: Some(state_dir.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("server restarts");
    let addr = server.tcp_addr().unwrap();
    let mut reader = Client::connect_tcp(addr, spec_id, "registrar").expect("reader reconnects");
    assert!(reader.hello().replica, "restarted session is a replica");
    let mut recovered = CorpusReplica::new(spec_id);
    reader.sync_replica(&mut recovered).unwrap();
    assert_eq!(recovered.report(), before_restart);
    println!(
        "restarted service serves the same report from disk: {}/{} clean (read-only replica)",
        recovered.report().clean_count(),
        recovered.report().total()
    );

    reader.shutdown().unwrap();
    server.wait();
    std::fs::remove_dir_all(&state_dir).ok();
}
