//! # xml-integrity-constraints — facade crate
//!
//! Re-exports the public API of the workspace crates that make up the
//! reproduction of Fan & Libkin, *On XML Integrity Constraints in the
//! Presence of DTDs* (PODS 2001 / JACM 2002).  See the README for a tour and
//! `examples/` for runnable end-to-end scenarios.

#![forbid(unsafe_code)]

pub use xic_constraints as constraints;
pub use xic_core as core;
pub use xic_dtd as dtd;
pub use xic_engine as engine;
pub use xic_gen as gen;
pub use xic_ilp as ilp;
pub use xic_relational as relational;
pub use xic_server as server;
pub use xic_xml as xml;

// The production entry points, re-exported flat for discoverability.
pub use xic_engine::{
    BatchDelta, BatchDoc, BatchEngine, CompiledSpec, CorpusReplica, CorpusSession, DocHandle,
    Engine, JournalError, Recovery, Session, SessionVerdict, VerdictCache,
};
pub use xic_xml::{EditJournal, EditOp};
