//! Offline stand-in for the `criterion` crate.
//!
//! The workspace builds with no network access, so the real crates.io
//! `criterion` cannot be fetched.  This shim implements the subset the bench
//! targets use — `criterion_group!` / `criterion_main!`, benchmark groups
//! with `sample_size` / `measurement_time` / `warm_up_time`,
//! `bench_with_input`, `BenchmarkId` and `Bencher::iter` — and reports the
//! median and total time per benchmark on stdout.  It aims for honest wall
//! clock numbers, not statistical rigor.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` runs of `routine`.
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let value = routine();
            self.samples.push(start.elapsed());
            drop(std::hint::black_box(value));
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed runs each benchmark performs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim always runs exactly
    /// `sample_size` iterations.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim does not warm up.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark over `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        routine: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut bencher, input);
        self.report(&id, &bencher.samples);
        self
    }

    /// Runs one benchmark without an explicit input.
    pub fn bench_function(
        &mut self,
        id: BenchmarkId,
        routine: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut bencher);
        self.report(&id, &bencher.samples);
        self
    }

    /// Ends the group (purely cosmetic in the shim).
    pub fn finish(&mut self) {}

    fn report(&mut self, id: &BenchmarkId, samples: &[Duration]) {
        let _ = &self.criterion; // group lifetime is tied to the runner
        if samples.is_empty() {
            println!("{}/{:<40} (no samples)", self.name, id);
            return;
        }
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let total: Duration = samples.iter().sum();
        println!(
            "{}/{}: median {:>12.3?}  ({} samples, total {:.3?})",
            self.name,
            id,
            median,
            samples.len(),
            total
        );
    }
}

/// Mirror of `criterion::Criterion`, the benchmark runner.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for API compatibility; the shim has no CLI options.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Final report hook (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// Mirror of `criterion::black_box` (re-export of the std hint).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
