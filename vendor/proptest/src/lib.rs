//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds with no network access, so the real crates.io
//! `proptest` cannot be fetched.  This shim implements the small API surface
//! the workspace actually uses — `proptest!`, `prop_oneof!`, `Just`, ranges,
//! tuples, `prop_map`, `prop_recursive`, `collection::vec`, `prop_assert*` and
//! `prop_assume!` — with a deterministic SplitMix64 generator so failures are
//! reproducible.  It performs no shrinking: a failing case panics with the
//! case number and the assertion message.

#![forbid(unsafe_code)]

pub mod strategy;

pub mod test_runner {
    /// Mirror of `proptest::test_runner::Config` (the fields used here).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
        /// Maximum rejected (`prop_assume!`) cases before the test aborts.
        pub max_global_rejects: u32,
    }

    impl Config {
        /// A config running `cases` random cases per property — unless the
        /// `PROPTEST_CASES` environment variable is set, which pins the
        /// count for every property in the process.
        ///
        /// Divergence from real proptest (where the env var only overrides
        /// the *default* and an explicit field wins): the workspace's
        /// suites all pass explicit per-test counts, so CI pins the env var
        /// to run them under optimizations with a deterministic budget
        /// (`PROPTEST_CASES=… cargo test --release`).
        pub fn with_cases(cases: u32) -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse::<u32>().ok())
                .unwrap_or(cases);
            Config {
                cases,
                max_global_rejects: 65536,
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config::with_cases(256)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::Config;

        /// The only test in this crate that touches `PROPTEST_CASES`, so
        /// there is no parallel-test race on the process environment.  The
        /// ambient value is saved and restored: CI legitimately runs the
        /// whole workspace (this crate included) with the variable pinned.
        #[test]
        fn proptest_cases_env_pins_the_case_count() {
            let ambient = std::env::var("PROPTEST_CASES").ok();
            std::env::remove_var("PROPTEST_CASES");
            assert_eq!(Config::with_cases(24).cases, 24);
            assert_eq!(Config::default().cases, 256);
            std::env::set_var("PROPTEST_CASES", "7");
            assert_eq!(Config::with_cases(24).cases, 7);
            assert_eq!(Config::default().cases, 7);
            // Malformed values fall back to the explicit count.
            std::env::set_var("PROPTEST_CASES", "many");
            assert_eq!(Config::with_cases(24).cases, 24);
            match ambient {
                Some(value) => std::env::set_var("PROPTEST_CASES", value),
                None => std::env::remove_var("PROPTEST_CASES"),
            }
        }
    }

    /// Outcome of a single property-test case body.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` and should not count.
        Reject(String),
        /// The case failed an assertion.
        Fail(String),
    }

    /// Deterministic SplitMix64 random source for strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a seed.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for vectors with lengths drawn from `len` and elements from
    /// `element`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Mirror of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(
            len.start < len.end,
            "empty length range for collection::vec"
        );
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use super::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use super::test_runner::Config as ProptestConfig;
    pub use super::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests.  Mirrors `proptest::proptest!` for the subset
/// `#![proptest_config(..)]` + `#[test] fn name(arg in strategy, ...) { .. }`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (
        $(#[$meta:meta])*
        fn $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default());
            $(#[$meta])* fn $($rest)*);
    };
    (
        @impl ($config:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut rejects: u32 = 0;
                let mut case: u64 = 0;
                let mut ran: u32 = 0;
                while ran < config.cases {
                    // Seed differs per case but is fixed across runs, so a
                    // failure report ("case N") is reproducible.
                    let mut rng = $crate::test_runner::TestRng::new(
                        0xa076_1d64_78bd_642f_u64 ^ case.wrapping_mul(0x5851_f42d_4c95_7f2d),
                    );
                    case += 1;
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&$strat, &mut rng);
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => ran += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejects += 1;
                            if rejects > config.max_global_rejects {
                                panic!("too many prop_assume! rejections ({rejects})");
                            }
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("property failed at case {} of {}: {}", case, config.cases, msg);
                        }
                    }
                }
            }
        )*
    };
}

/// Mirror of `proptest::prop_oneof!`: uniform choice among the arm strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Mirror of `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Mirror of `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {:?} == {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{}: {:?} != {:?}", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Mirror of `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
}

/// Mirror of `proptest::prop_assume!`: rejected cases are re-drawn rather
/// than counted as passes.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}
