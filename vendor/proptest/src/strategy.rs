//! Strategies: composable random-value generators.
//!
//! The real proptest models a strategy as a value *tree* supporting
//! shrinking; this shim only samples, which is all the workspace's property
//! tests rely on (they treat proptest as a seeded fuzzer).

use super::test_runner::TestRng;
use std::ops::Range;
use std::sync::Arc;

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The type of values produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erases the strategy so heterogeneous strategies over the same
    /// value type can be unioned.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Arc::new(self),
        }
    }

    /// Maps sampled values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives the strategy for the
    /// previous depth and returns the strategy for one level deeper.  The
    /// `_desired_size` / `_expected_branch` hints of the real API are
    /// accepted and ignored.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            // At each level the union picks the leaf half the time, so the
            // expected tree size stays bounded just like real proptest's.
            strat = Union::new(vec![leaf.clone(), recurse(strat).boxed()]).boxed();
        }
        strat
    }
}

/// A clonable, type-erased strategy (`Arc`-backed so `prop_recursive`
/// closures can clone their inner handle).
pub struct BoxedStrategy<T> {
    inner: Arc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.inner.sample(rng)
    }

    fn boxed(self) -> BoxedStrategy<T>
    where
        Self: Sized + 'static,
    {
        self
    }
}

/// Strategy producing a fixed value (mirror of `proptest::strategy::Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among strategies of the same value type.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $ty
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $ty
                }
            }
        )*
    };
}

signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
