//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds with no network access, so the real crates.io `rand`
//! cannot be fetched.  This shim provides the subset `xic-gen` uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range` over
//! (inclusive) integer ranges and `Rng::gen_bool`.  The generator is
//! SplitMix64 — deterministic per seed, which is all the workload generators
//! require (they advertise reproducibility per `seed`, not any particular
//! stream).

#![forbid(unsafe_code)]

/// Low-level uniform 64-bit source.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (mirror of `rand::SeedableRng`, `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling interface (mirror of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from an integer range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let p = p.clamp(0.0, 1.0);
        // 53 random bits give a uniform float in [0, 1).
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can be sampled uniformly (mirror of `rand::distributions`' role).
pub trait SampleRange<T> {
    /// Draws one value from `rng`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {
        $(
            impl SampleRange<$ty> for ::std::ops::Range<$ty> {
                fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $ty
                }
            }

            impl SampleRange<$ty> for ::std::ops::RangeInclusive<$ty> {
                fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end - start) as u64 + 1;
                    if span == 0 {
                        // Full-width range: every value is fair game.
                        return start.wrapping_add(rng.next_u64() as $ty);
                    }
                    start + (rng.next_u64() % span) as $ty
                }
            }
        )*
    };
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($ty:ty),*) => {
        $(
            impl SampleRange<$ty> for ::std::ops::Range<$ty> {
                fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + (rng.next_u64() % span) as i128) as $ty
                }
            }

            impl SampleRange<$ty> for ::std::ops::RangeInclusive<$ty> {
                fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as i128 - start as i128 + 1) as u64;
                    (start as i128 + (rng.next_u64() % span) as i128) as $ty
                }
            }
        )*
    };
}

impl_sample_range_signed!(i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3..7usize);
            assert!((3..7).contains(&x));
            let y = rng.gen_range(1..=4u32);
            assert!((1..=4).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
