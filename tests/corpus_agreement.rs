//! Differential testing of `CorpusSession` against cold `BatchEngine`
//! rebuilds.
//!
//! Two oracles hold after **every** commit of a random interleaved edit
//! sequence across 2–5 documents:
//!
//! 1. **Witness identity with a cold rebuild on the resident trees** —
//!    `CorpusSession::report()` must equal
//!    `BatchEngine::validate_trees(spec, current trees)`: same reports,
//!    same violations, same clash-witness node ids, same order.  This is
//!    the corpus generalization of `tests/session_agreement.rs`.
//! 2. **Semantic identity with a cold `validate_batch` over serialized
//!    sources** — writing every current tree out and re-validating the
//!    sources from scratch must agree on every document's verdict and on
//!    the Σ-ordered list of violated constraints.  Witness node ids (and
//!    witness-dependent detail) are *expected* to differ here: re-parsing
//!    renumbers an edited arena, and "the first witness" follows that
//!    order — which is exactly why the projection, and not the witness, is
//!    compared.
//!
//! On top of the verdicts, the **`BatchDelta` stream** is checked against
//! an independently maintained model: a delta must list exactly the
//! documents whose clean state flipped (or that entered the corpus), the
//! labels closed since the last commit, and a `rechecked_docs` equal to the
//! number of documents touched since the last commit.
//!
//! The generated specs come both from `random_dtd`/`random_unary_constraints`
//! (the proptest half) and from the named `xic-gen` workload families
//! (`primary_key_family`, `keys_only_family`, `fixed_dtd_growing_sigma`), so
//! the suite is not limited to hand-written fixtures.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xml_integrity_constraints::constraints::Violation;
use xml_integrity_constraints::dtd::Dtd;
use xml_integrity_constraints::engine::{
    BatchDoc, BatchEngine, BatchReport, CompiledSpec, CorpusSession, DocHandle,
};
use xml_integrity_constraints::gen::{
    fixed_dtd_growing_sigma, keys_only_family, primary_key_family, random_document, random_dtd,
    random_unary_constraints, ConstraintGenConfig, DocGenConfig, DtdGenConfig, SpecInstance,
};
use xml_integrity_constraints::xml::{write_document, EditOp, NodeId, XmlTree};

/// Picks the next edit against one document's current state: every op is
/// valid by construction (live nodes, non-root removals).
fn random_op(rng: &mut StdRng, dtd: &Dtd, tree: &XmlTree) -> EditOp {
    let elements: Vec<NodeId> = tree.elements().collect();
    let pick = |rng: &mut StdRng, nodes: &[NodeId]| nodes[rng.gen_range(0..nodes.len())];
    for _ in 0..8 {
        match rng.gen_range(0u32..10) {
            0..=4 => {
                let candidates: Vec<NodeId> = elements
                    .iter()
                    .copied()
                    .filter(|&n| {
                        tree.element_type(n)
                            .is_some_and(|ty| !dtd.attrs_of(ty).is_empty())
                    })
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let element = pick(rng, &candidates);
                let ty = tree.element_type(element).unwrap();
                let attrs = dtd.attrs_of(ty);
                let attr = attrs[rng.gen_range(0..attrs.len())];
                return EditOp::SetAttr {
                    element,
                    attr,
                    value: format!("val{}", rng.gen_range(0..4u32)),
                };
            }
            5..=6 => {
                let types: Vec<_> = dtd.types().collect();
                return EditOp::AddElement {
                    parent: pick(rng, &elements),
                    ty: types[rng.gen_range(0..types.len())],
                };
            }
            7 => {
                return EditOp::AddText {
                    parent: pick(rng, &elements),
                    value: format!("text{}", rng.gen_range(0..100u32)),
                };
            }
            _ => {
                let removable: Vec<NodeId> = elements
                    .iter()
                    .copied()
                    .filter(|&n| n != tree.root())
                    .collect();
                if removable.is_empty() {
                    continue;
                }
                return EditOp::RemoveSubtree {
                    element: pick(rng, &removable),
                };
            }
        }
    }
    let types: Vec<_> = dtd.types().collect();
    EditOp::AddElement {
        parent: tree.root(),
        ty: types[0],
    }
}

/// The scan-order-free projection of a violation: the constraint it
/// violates.  Serializing and reparsing renumbers the arena, and the
/// checkers scan in ascending node-id order, so the *witness* (and with it
/// the reported tuple, and for inclusions even the missing-attribute /
/// dangling-tuple classification) may legitimately change across the
/// boundary — but *which constraints are violated* is order-independent,
/// and both paths report violations in Σ order.
fn projection(v: &Violation) -> &str {
    match v {
        Violation::KeyViolation { constraint, .. }
        | Violation::InclusionViolation { constraint, .. }
        | Violation::MissingAttributes { constraint, .. }
        | Violation::NegationUnsatisfied { constraint } => constraint,
    }
}

/// Cold oracle #1: a rebuild on the resident trees (witness-exact).
fn cold_tree_report(
    spec: &CompiledSpec,
    corpus: &CorpusSession,
    handles: &[DocHandle],
) -> BatchReport {
    let labeled: Vec<(String, &XmlTree)> = handles
        .iter()
        .map(|&h| {
            (
                corpus.label(h).unwrap().to_string(),
                corpus.tree(h).unwrap(),
            )
        })
        .collect();
    let borrowed: Vec<(&str, &XmlTree)> = labeled
        .iter()
        .map(|(label, tree)| (label.as_str(), *tree))
        .collect();
    BatchEngine::new(1).validate_trees(spec, &borrowed)
}

/// Cold oracle #2: serialize every tree and `validate_batch` the sources;
/// compare verdicts and violation projections (not node ids).
fn assert_serialized_rebuild_agrees(
    spec: &CompiledSpec,
    corpus: &CorpusSession,
    handles: &[DocHandle],
    resident: &BatchReport,
) {
    let docs: Vec<BatchDoc> = handles
        .iter()
        .map(|&h| {
            BatchDoc::new(
                corpus.label(h).unwrap(),
                write_document(corpus.tree(h).unwrap(), spec.dtd()),
            )
        })
        .collect();
    let cold = BatchEngine::new(1).validate_batch(spec, &docs);
    assert_eq!(cold.total(), resident.total());
    for (from_source, from_tree) in cold.reports().iter().zip(resident.reports()) {
        assert_eq!(from_source.label, from_tree.label);
        assert_eq!(from_source.parse_error, None, "writer output must reparse");
        assert_eq!(
            from_source.is_clean(),
            from_tree.is_clean(),
            "{}: serialized rebuild disagrees on the verdict",
            from_source.label
        );
        let a: Vec<_> = from_source.violations.iter().map(projection).collect();
        let b: Vec<_> = from_tree.violations.iter().map(projection).collect();
        assert_eq!(
            a, b,
            "{}: violation projections diverged",
            from_source.label
        );
    }
}

/// Drives `edits` interleaved random edits over an open corpus, committing
/// after every one and checking verdicts + delta contents against the cold
/// oracles and a report-replica model (the model a subscriber applying the
/// delta stream would maintain).  Returns how many commits changed some
/// document's report (so callers can assert the workload was non-trivial).
fn drive_and_check(
    spec: &CompiledSpec,
    corpus: &mut CorpusSession,
    handles: &[DocHandle],
    rng: &mut StdRng,
    edits: usize,
) -> usize {
    // Initial commit admits every opened document into the delta stream.
    let delta = corpus.commit();
    assert_eq!(delta.rechecked_docs, handles.len());
    assert_eq!(delta.changes.len(), handles.len());
    assert!(delta.changes.iter().all(|c| c.was_clean.is_none()));

    let mut resident = cold_tree_report(spec, corpus, handles);
    assert_eq!(&corpus.report(), &resident);
    // The subscriber's replica: last delivered report per document.
    let mut replica: Vec<_> = resident.reports().to_vec();
    let mut changed_commits = 0;

    for step in 0..edits {
        let victim = rng.gen_range(0..handles.len());
        let handle = handles[victim];
        let op = random_op(rng, spec.dtd(), corpus.tree(handle).unwrap());
        corpus.apply(handle, std::slice::from_ref(&op)).unwrap();
        let delta = corpus.commit();

        // Oracle #1: witness-exact equality with a resident-tree rebuild.
        resident = cold_tree_report(spec, corpus, handles);
        assert_eq!(
            &corpus.report(),
            &resident,
            "diverged at step {step} after {op:?}"
        );

        // The delta model: exactly one doc was rechecked; it appears in
        // `changes` iff its report differs from the last delivered one
        // (clean-state flips AND violating→violating content changes), so
        // applying the stream keeps the replica identical to report().
        assert_eq!(delta.rechecked_docs, 1, "step {step}");
        assert!(delta.closed.is_empty());
        let fresh = &resident.reports()[victim];
        if fresh == &replica[victim] {
            assert!(
                delta.is_empty(),
                "step {step}: report unchanged, delta must be empty"
            );
        } else {
            assert_eq!(delta.changes.len(), 1, "step {step}");
            let change = &delta.changes[0];
            assert_eq!(change.handle, handle);
            assert_eq!(change.was_clean, Some(replica[victim].is_clean()));
            assert_eq!(change.now_clean(), fresh.is_clean());
            assert_eq!(&change.report, fresh);
            replica[victim] = change.report.clone();
            changed_commits += 1;
        }
        // The replica reconstructed from deltas alone matches the truth.
        assert_eq!(replica.as_slice(), resident.reports(), "step {step}");
        assert_eq!(delta.total, handles.len());
        assert_eq!(
            delta.clean,
            replica.iter().filter(|r| r.is_clean()).count(),
            "step {step}"
        );
    }

    // Oracle #2 once per sequence (serialization is the expensive oracle).
    assert_serialized_rebuild_agrees(spec, corpus, handles, &resident);
    changed_commits
}

/// Opens `count` random documents against the spec, or `None` when the DTD
/// admits no document.
fn open_random_docs(
    spec: &CompiledSpec,
    corpus: &mut CorpusSession,
    seed: u64,
    count: usize,
) -> Option<Vec<DocHandle>> {
    let mut handles = Vec::new();
    for i in 0..count {
        let tree = random_document(
            spec.dtd(),
            &DocGenConfig {
                seed: seed.wrapping_add(i as u64),
                value_pool: 3,
                ..Default::default()
            },
        )?;
        handles.push(
            corpus
                .open(format!("doc-{i}.xml"), tree)
                .expect("unlimited corpus admits every tree"),
        );
    }
    Some(handles)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// After every commit of a random interleaved edit sequence across 2–5
    /// documents, corpus verdicts (witnesses included) and the delta stream
    /// agree with cold rebuilds.
    #[test]
    fn corpus_agrees_with_cold_rebuild_after_every_commit(
        seed in 0u64..400,
        types in 2usize..7,
        keys in 0usize..4,
        fks in 0usize..4,
        inclusions in 0usize..3,
        num_docs in 2usize..6,
        edits in 1usize..25,
    ) {
        let dtd = random_dtd(&DtdGenConfig { seed, num_types: types, ..Default::default() });
        let sigma = random_unary_constraints(
            &dtd,
            &ConstraintGenConfig {
                keys,
                foreign_keys: fks,
                inclusions,
                seed,
                ..Default::default()
            },
        );
        let spec = match CompiledSpec::compile(dtd, sigma) {
            Ok(spec) => spec,
            // Ψ(D,Σ) construction can reject exotic generated specs; the
            // corpus needs only (D, Σ), so skip those instances.
            Err(_) => return Ok(()),
        };
        let mut corpus = CorpusSession::new(&spec);
        let Some(handles) = open_random_docs(&spec, &mut corpus, seed, num_docs) else {
            return Ok(()); // unsatisfiable DTD: nothing to open
        };
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9));
        drive_and_check(&spec, &mut corpus, &handles, &mut rng, edits);

        // Closing a document surfaces in the next delta and the next report.
        let victim = handles[0];
        let label = corpus.label(victim).unwrap().to_string();
        corpus.close(victim).unwrap();
        let delta = corpus.commit();
        prop_assert_eq!(delta.closed.len(), 1);
        prop_assert_eq!(delta.closed[0].handle, victim);
        prop_assert_eq!(&delta.closed[0].label, &label);
        prop_assert_eq!(delta.total, handles.len() - 1);
        let survivors: Vec<DocHandle> = handles[1..].to_vec();
        let resident = cold_tree_report(&spec, &corpus, &survivors);
        prop_assert_eq!(corpus.report(), resident);
    }
}

/// The named `xic-gen` workload families drive the same differential, so
/// the agreement suite covers generated DTD/Σ shapes beyond the uniform
/// random sampler: primary-key-restricted specs over random DTDs, keys-only
/// specs, and a fixed DTD under a growing Σ.
#[test]
fn workload_families_agree_with_cold_rebuilds() {
    let families: Vec<(&str, Vec<SpecInstance>)> = vec![
        ("primary_key", primary_key_family(&[4, 6], 11)),
        ("keys_only", keys_only_family(&[4, 6], 12)),
        ("fixed_dtd", fixed_dtd_growing_sigma(5, &[4, 8], 13)),
    ];
    let mut driven = 0usize;
    for (family, instances) in families {
        for instance in instances {
            let label = format!("{family}/{}", instance.label);
            let spec = match CompiledSpec::compile(instance.dtd, instance.sigma) {
                Ok(spec) => spec,
                Err(_) => continue, // Ψ(D,Σ) rejected the instance
            };
            let mut corpus = CorpusSession::new(&spec);
            let Some(handles) = open_random_docs(&spec, &mut corpus, 17, 3) else {
                continue;
            };
            let mut rng = StdRng::seed_from_u64(0xc0ffee ^ driven as u64);
            drive_and_check(&spec, &mut corpus, &handles, &mut rng, 20);
            driven += 1;
            let _ = label;
        }
    }
    assert!(
        driven >= 4,
        "the workload families must actually exercise the differential (drove {driven})"
    );
}
