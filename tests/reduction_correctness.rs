//! Integration tests for the Theorem 4.7 reduction: the generated XML
//! specification is consistent exactly when the 0/1 system `A·x = 1` has a
//! binary solution, checked against brute-force enumeration of all vectors.

use proptest::prelude::*;
use xml_integrity_constraints::core::{lip_to_spec, CheckerConfig, ConsistencyChecker};
use xml_integrity_constraints::xml::validate;

/// Brute-force solvability of `A·x = 1` over binary vectors.
fn solvable(matrix: &[Vec<bool>]) -> bool {
    let cols = matrix[0].len();
    (0u32..(1 << cols)).any(|mask| {
        matrix.iter().all(|row| {
            let sum: u32 = row
                .iter()
                .enumerate()
                .map(|(j, &a)| u32::from(a && mask & (1 << j) != 0))
                .sum();
            sum == 1
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn reduction_matches_brute_force(rows in 1usize..4, cols in 1usize..5, bits in 0u32..4096) {
        // Build a small random 0/1 matrix from the bits.
        let matrix: Vec<Vec<bool>> = (0..rows)
            .map(|i| (0..cols).map(|j| bits & (1 << ((i * cols + j) % 12)) != 0).collect())
            .collect();
        let spec = lip_to_spec(&matrix);
        let checker = ConsistencyChecker::with_config(CheckerConfig::default());
        let outcome = checker.check(&spec.dtd, &spec.sigma).unwrap();
        prop_assert!(!outcome.is_unknown(), "{}", outcome.explanation());
        prop_assert_eq!(outcome.is_consistent(), solvable(&matrix));
        if let Some(witness) = outcome.witness() {
            prop_assert!(validate(witness, &spec.dtd).is_empty());
            let x = spec.decode(witness);
            for row in &matrix {
                let sum: usize = row.iter().zip(&x).filter(|(a, b)| **a && **b).count();
                prop_assert_eq!(sum, 1);
            }
        }
    }
}
