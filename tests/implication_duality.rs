//! Integration tests for the duality between implication and consistency:
//! `(D, Σ) ⊢ φ` iff `Σ ∪ {¬φ}` is inconsistent over `D` (the basis of the
//! paper's coNP upper bounds), plus the Lemma 3.3 reduction round trip.

use proptest::prelude::*;
use xml_integrity_constraints::constraints::{Constraint, ConstraintSet};
use xml_integrity_constraints::core::{
    consistency_to_implication, CheckerConfig, ConsistencyChecker, ImplicationChecker,
};
use xml_integrity_constraints::gen::{
    random_dtd, random_unary_constraints, ConstraintGenConfig, DtdGenConfig,
};

fn fast_config() -> CheckerConfig {
    CheckerConfig {
        synthesize_witness: false,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For random unary specifications and a random candidate key φ, the
    /// implication verdict matches the consistency verdict of Σ ∪ {¬φ}.
    #[test]
    fn implication_agrees_with_negated_consistency(
        seed in 0u64..200,
        types in 3usize..7,
        keys in 0usize..3,
        fks in 0usize..3,
        pick in 0usize..100,
    ) {
        let dtd = random_dtd(&DtdGenConfig { seed, num_types: types, ..Default::default() });
        let sigma = random_unary_constraints(
            &dtd,
            &ConstraintGenConfig { keys, foreign_keys: fks, seed, ..Default::default() },
        );
        // Candidate: a unary key on some attribute slot.
        let mut slots = Vec::new();
        for ty in dtd.types() {
            for &attr in dtd.attrs_of(ty) {
                slots.push((ty, attr));
            }
        }
        prop_assume!(!slots.is_empty());
        let (ty, attr) = slots[pick % slots.len()];
        let phi = Constraint::unary_key(ty, attr);

        let implication = ImplicationChecker::with_config(fast_config());
        let consistency = ConsistencyChecker::with_config(fast_config());
        let implied = implication.implies(&dtd, &sigma, &phi).unwrap();
        let negated = consistency
            .check_unary(&dtd, &sigma.with(phi.negated().unwrap()))
            .unwrap();
        prop_assert_eq!(implied.is_implied(), negated.is_inconsistent(),
            "implication: {} / consistency of negation: {}",
            implied.explanation(), negated.explanation());
    }

    /// Lemma 3.3 round trip: Σ is consistent over D iff the target key of
    /// the reduction is NOT implied over the extended DTD.
    #[test]
    fn lemma_3_3_round_trip(seed in 0u64..100, types in 3usize..6, keys in 0usize..3) {
        let dtd = random_dtd(&DtdGenConfig { seed, num_types: types, ..Default::default() });
        let sigma = random_unary_constraints(
            &dtd,
            &ConstraintGenConfig { keys, foreign_keys: keys, seed, ..Default::default() },
        );
        let consistency = ConsistencyChecker::with_config(fast_config());
        let consistent = consistency.check(&dtd, &sigma).unwrap().is_consistent();

        let red = consistency_to_implication(&dtd);
        // Re-express Σ over the extended DTD (types keep their names).
        let mut sigma_ext = ConstraintSet::new();
        for c in sigma.iter() {
            sigma_ext.push(c.clone());
        }
        sigma_ext.push(red.aux_key.clone());
        sigma_ext.push(red.inclusion.clone());
        let implication = ImplicationChecker::with_config(fast_config());
        let implied =
            implication.implies(&red.dtd, &sigma_ext, &red.target_key).unwrap().is_implied();
        prop_assert_eq!(consistent, !implied);
    }
}

#[test]
fn implied_constraints_can_be_added_without_changing_consistency() {
    // A deterministic spot check of a semantic invariant: adding an implied
    // constraint never flips a consistent specification to inconsistent.
    let dtd = xml_integrity_constraints::dtd::example_d1();
    let teacher = dtd.type_by_name("teacher").unwrap();
    let subject = dtd.type_by_name("subject").unwrap();
    let name = dtd.attr_by_name("name").unwrap();
    let taught_by = dtd.attr_by_name("taught_by").unwrap();
    let sigma = ConstraintSet::from_vec(vec![
        Constraint::unary_key(teacher, name),
        Constraint::unary_foreign_key(subject, taught_by, teacher, name),
    ]);
    let implication = ImplicationChecker::new();
    let consistency = ConsistencyChecker::new();
    assert!(consistency.check(&dtd, &sigma).unwrap().is_consistent());
    // subject.taught_by ⊆ teacher.name is implied (member); adding it keeps
    // consistency.
    let phi = Constraint::unary_inclusion(subject, taught_by, teacher, name);
    assert!(implication
        .implies(&dtd, &sigma, &phi)
        .unwrap()
        .is_implied());
    assert!(consistency
        .check(&dtd, &sigma.with(phi))
        .unwrap()
        .is_consistent());
}
