//! End-to-end integration tests reproducing the worked examples of the paper
//! (Sections 1 and 2) across all crates.

use xml_integrity_constraints::constraints::{
    check_document, example_sigma1, example_sigma3, Constraint, ConstraintSet,
};
use xml_integrity_constraints::core::{ConsistencyChecker, ImplicationChecker};
use xml_integrity_constraints::dtd::{example_d1, example_d2, example_d3, parse_dtd};
use xml_integrity_constraints::xml::{is_valid, parse_document, write_document};

/// The Figure 1 document of the paper, as XML text.
const FIGURE1: &str = r#"
<teachers>
  <teacher name="Joe">
    <teach>
      <subject taught_by="Joe">XML</subject>
      <subject taught_by="Joe">DB</subject>
    </teach>
    <research>Web DB</research>
  </teacher>
  <teacher name="Joe">
    <teach>
      <subject taught_by="Joe">AI</subject>
      <subject taught_by="Joe">Logic</subject>
    </teach>
    <research>KR</research>
  </teacher>
</teachers>
"#;

#[test]
fn figure1_conforms_to_d1_but_violates_sigma1() {
    let d1 = example_d1();
    let doc = parse_document(FIGURE1, &d1).expect("Figure 1 parses");
    assert!(is_valid(&doc, &d1), "Figure 1 conforms to D1");
    let violations = check_document(&d1, &doc, &example_sigma1(&d1));
    assert!(
        !violations.is_empty(),
        "the paper notes the Figure 1 tree violates subject.taught_by → subject"
    );
}

#[test]
fn section1_specification_is_inconsistent() {
    let d1 = example_d1();
    let sigma1 = example_sigma1(&d1);
    let outcome = ConsistencyChecker::new().check(&d1, &sigma1).unwrap();
    assert!(outcome.is_inconsistent(), "{}", outcome.explanation());
}

#[test]
fn section1_d2_has_no_valid_document() {
    let d2 = example_d2();
    let outcome = ConsistencyChecker::new()
        .check(&d2, &ConstraintSet::new())
        .unwrap();
    assert!(outcome.is_inconsistent());
}

#[test]
fn relaxed_sigma1_has_a_witness_that_round_trips_through_text() {
    let d1 = example_d1();
    let teacher = d1.type_by_name("teacher").unwrap();
    let subject = d1.type_by_name("subject").unwrap();
    let name = d1.attr_by_name("name").unwrap();
    let taught_by = d1.attr_by_name("taught_by").unwrap();
    let sigma = ConstraintSet::from_vec(vec![
        Constraint::unary_key(teacher, name),
        Constraint::unary_foreign_key(subject, taught_by, teacher, name),
    ]);
    let outcome = ConsistencyChecker::new().check(&d1, &sigma).unwrap();
    let witness = outcome.witness().expect("witness");
    // Serialize, re-parse, re-validate, re-check.
    let text = write_document(witness, &d1);
    let reparsed = parse_document(&text, &d1).expect("serialized witness parses");
    assert!(is_valid(&reparsed, &d1));
    assert!(check_document(&d1, &reparsed, &sigma).is_empty());
}

#[test]
fn section2_school_constraints_accept_a_realistic_registrar_document() {
    let d3 = example_d3();
    let sigma3 = example_sigma3(&d3);
    let doc = r#"
        <school>
          <course dept="cs" course_no="101"><subject>databases</subject></course>
          <course dept="cs" course_no="240"><subject>logic</subject></course>
          <student student_id="s1"><name>Ada</name></student>
          <student student_id="s2"><name>Alan</name></student>
          <enroll student_id="s1" dept="cs" course_no="101">ok</enroll>
          <enroll student_id="s2" dept="cs" course_no="101">ok</enroll>
          <enroll student_id="s1" dept="cs" course_no="240">ok</enroll>
        </school>
    "#;
    let tree = parse_document(doc, &d3).expect("registrar document parses");
    assert!(is_valid(&tree, &d3));
    assert!(check_document(&d3, &tree, &sigma3).is_empty());

    // Breaking referential integrity is detected.
    let broken = doc.replace("course_no=\"240\">ok", "course_no=\"999\">ok");
    let tree = parse_document(&broken, &d3).expect("still parses");
    assert!(!check_document(&d3, &tree, &sigma3).is_empty());
}

#[test]
fn dtd_text_and_programmatic_d1_agree_on_consistency() {
    let text = r#"
        <!ELEMENT teachers (teacher+)>
        <!ELEMENT teacher (teach, research)>
        <!ELEMENT teach (subject, subject)>
        <!ELEMENT research (#PCDATA)>
        <!ELEMENT subject (#PCDATA)>
        <!ATTLIST teacher name CDATA #REQUIRED>
        <!ATTLIST subject taught_by CDATA #REQUIRED>
    "#;
    let parsed = parse_dtd(text, Some("teachers")).unwrap();
    let sigma = example_sigma1(&parsed);
    let outcome = ConsistencyChecker::new().check(&parsed, &sigma).unwrap();
    assert!(outcome.is_inconsistent());
}

#[test]
fn implication_examples_from_the_school_schema() {
    let d3 = example_d3();
    let sigma3 = example_sigma3(&d3);
    let checker = ImplicationChecker::new();
    let course = d3.type_by_name("course").unwrap();
    let dept = d3.attr_by_name("dept").unwrap();
    let course_no = d3.attr_by_name("course_no").unwrap();
    // Superkeys of stated keys are implied even in the general class.
    let phi = Constraint::key(course, vec![dept, course_no]);
    assert!(checker.implies(&d3, &sigma3, &phi).unwrap().is_implied());
    // dept alone is not a key of course; the checker must not claim it is.
    let phi = Constraint::key(course, vec![dept]);
    assert!(!checker.implies(&d3, &sigma3, &phi).unwrap().is_implied());
}
