//! Replica-differential suite: a [`CorpusReplica`] fed nothing but
//! exported [`BatchDelta`]s must agree with the live [`CorpusSession`]
//! **after every commit** — same `report()`, witnesses included — and must
//! survive a close → re-open through the persisted delta log (the replica
//! recovers from disk and continues consuming the stream where it left
//! off).  No document is ever re-shipped or re-parsed on the replica side:
//! the delta stream is the entire transport.
//!
//! The drive comes from the named `xic-gen` workload families and from a
//! proptest over random specifications, mirroring
//! `tests/corpus_agreement.rs` so the replica inherits the same coverage
//! the delta stream itself was proven under.

use std::fs;
use std::path::PathBuf;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xml_integrity_constraints::dtd::Dtd;
use xml_integrity_constraints::engine::journal::append_delta_log;
use xml_integrity_constraints::engine::{CompiledSpec, CorpusReplica, CorpusSession, DocHandle};
use xml_integrity_constraints::gen::{
    fixed_dtd_growing_sigma, inconsistent_fanout_family, keys_only_family, negation_family,
    primary_key_family, random_document, random_dtd, random_unary_constraints,
    unary_consistency_family, ConstraintGenConfig, DocGenConfig, DtdGenConfig, SpecInstance,
};
use xml_integrity_constraints::xml::{EditOp, NodeId, XmlTree};

/// Picks the next edit against the document's current state: every op is
/// valid by construction (live nodes, non-root removals).
fn random_op(rng: &mut StdRng, dtd: &Dtd, tree: &XmlTree) -> EditOp {
    let elements: Vec<NodeId> = tree.elements().collect();
    let pick = |rng: &mut StdRng, nodes: &[NodeId]| nodes[rng.gen_range(0..nodes.len())];
    for _ in 0..8 {
        match rng.gen_range(0u32..10) {
            0..=4 => {
                let candidates: Vec<NodeId> = elements
                    .iter()
                    .copied()
                    .filter(|&n| {
                        tree.element_type(n)
                            .is_some_and(|ty| !dtd.attrs_of(ty).is_empty())
                    })
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let element = pick(rng, &candidates);
                let ty = tree.element_type(element).unwrap();
                let attrs = dtd.attrs_of(ty);
                let attr = attrs[rng.gen_range(0..attrs.len())];
                return EditOp::SetAttr {
                    element,
                    attr,
                    value: format!("val{}", rng.gen_range(0..4u32)),
                };
            }
            5..=6 => {
                let types: Vec<_> = dtd.types().collect();
                return EditOp::AddElement {
                    parent: pick(rng, &elements),
                    ty: types[rng.gen_range(0..types.len())],
                };
            }
            7 => {
                return EditOp::AddText {
                    parent: pick(rng, &elements),
                    value: format!("text{}", rng.gen_range(0..100u32)),
                };
            }
            _ => {
                let removable: Vec<NodeId> = elements
                    .iter()
                    .copied()
                    .filter(|&n| n != tree.root())
                    .collect();
                if removable.is_empty() {
                    continue;
                }
                return EditOp::RemoveSubtree {
                    element: pick(rng, &removable),
                };
            }
        }
    }
    let types: Vec<_> = dtd.types().collect();
    EditOp::AddElement {
        parent: tree.root(),
        ty: types[0],
    }
}

fn temp_path(tag: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!(
        "xic-replica-{}-{:?}-{tag}.xicj",
        std::process::id(),
        std::thread::current().id()
    ));
    path
}

/// Ships everything the replica has not seen yet: export from the live
/// session, append to the durable log, apply to the replica.  This is one
/// replication round — and the equality it must preserve.
fn sync_and_check(
    corpus: &CorpusSession,
    replica: &mut CorpusReplica,
    log: &PathBuf,
    context: &str,
) {
    let fresh = corpus
        .export_deltas(replica.last_seq())
        .expect("retained window");
    append_delta_log(log, corpus.spec().id(), fresh).expect("append to delta log");
    replica.apply_deltas(fresh).expect("deltas apply in order");
    assert_eq!(replica.last_seq(), corpus.last_seq(), "{context}");
    assert_eq!(
        replica.report(),
        corpus.report(),
        "{context}: replica diverged from the live session"
    );
}

/// Opens `count` random documents, or `None` when the DTD admits none.
fn open_random_docs(
    spec: &CompiledSpec,
    corpus: &mut CorpusSession,
    seed: u64,
    count: usize,
) -> Option<Vec<DocHandle>> {
    let mut handles = Vec::new();
    for i in 0..count {
        let tree = random_document(
            spec.dtd(),
            &DocGenConfig {
                seed: seed.wrapping_add(i as u64),
                value_pool: 3,
                max_elements: 40,
                ..Default::default()
            },
        )?;
        handles.push(
            corpus
                .open(format!("doc-{i}.xml"), tree)
                .expect("unlimited corpus admits every tree"),
        );
    }
    Some(handles)
}

/// Drives `edits` random edits (committing and replicating after every
/// one), closing the replica and recovering it from the log every few
/// commits, closing a live document at the end.  Returns `false` when the
/// generated spec or DTD was unusable.
fn drive_replicated(spec: &CompiledSpec, seed: u64, edits: usize, tag: &str) -> bool {
    let mut corpus = CorpusSession::new(spec);
    let Some(handles) = open_random_docs(spec, &mut corpus, seed, 3) else {
        return false;
    };
    let log = temp_path(tag);
    fs::remove_file(&log).ok();
    let mut replica = CorpusReplica::new(spec.id());
    corpus.commit();
    sync_and_check(&corpus, &mut replica, &log, "open");

    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x517c_c1b7));
    for step in 0..edits {
        let handle = handles[rng.gen_range(0..handles.len())];
        let op = random_op(&mut rng, spec.dtd(), corpus.tree(handle).unwrap());
        corpus.apply(handle, std::slice::from_ref(&op)).unwrap();
        corpus.commit();
        sync_and_check(&corpus, &mut replica, &log, &format!("step {step}"));

        if step % 4 == 3 {
            // Close → re-open of the replica: recover from the durable log
            // alone and keep consuming the stream where it left off.
            let last = replica.last_seq();
            drop(replica);
            let (recovered, truncated) =
                CorpusReplica::recover_from(&log, spec.id()).expect("replica recovers");
            assert!(!truncated);
            assert_eq!(recovered.last_seq(), last);
            replica = recovered;
            assert_eq!(
                replica.report(),
                corpus.report(),
                "step {step}: recovered replica diverged"
            );
        }
    }

    // A close travels the same stream.
    corpus.close(handles[0]).unwrap();
    corpus.commit();
    sync_and_check(&corpus, &mut replica, &log, "close");
    let (recovered, _) = CorpusReplica::recover_from(&log, spec.id()).expect("final recover");
    assert_eq!(recovered.report(), corpus.report());
    fs::remove_file(&log).ok();
    true
}

/// Every document-bearing `xic-gen` workload family drives the replica
/// differential.
#[test]
fn workload_families_agree_with_delta_fed_replicas() {
    let families: Vec<(&str, Vec<SpecInstance>)> = vec![
        ("chain", unary_consistency_family(&[3])),
        ("fanout", inconsistent_fanout_family(&[2])),
        ("primary_key", primary_key_family(&[4, 6], 11)),
        ("keys_only", keys_only_family(&[4, 6], 12)),
        ("fixed_dtd", fixed_dtd_growing_sigma(5, &[4, 8], 13)),
        ("negation", negation_family(&[3], 14)),
    ];
    let mut driven = 0usize;
    for (family, instances) in families {
        for instance in instances {
            let spec = match CompiledSpec::compile(instance.dtd, instance.sigma) {
                Ok(spec) => spec,
                Err(_) => continue, // Ψ(D,Σ) rejected the instance
            };
            if drive_replicated(&spec, 17 + driven as u64, 12, family) {
                driven += 1;
            }
        }
    }
    assert!(
        driven >= 6,
        "the workload families must actually exercise the replica differential (drove {driven})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random specs and interleaved edit sequences: after every commit the
    /// delta-fed replica reconstructs `report()` exactly, including across
    /// close → re-open from the persisted log.
    #[test]
    fn replicas_reconstruct_reports_after_every_commit(
        seed in 0u64..400,
        types in 2usize..7,
        keys in 0usize..4,
        fks in 0usize..4,
        inclusions in 0usize..3,
        edits in 1usize..16,
    ) {
        let dtd = random_dtd(&DtdGenConfig { seed, num_types: types, ..Default::default() });
        let sigma = random_unary_constraints(
            &dtd,
            &ConstraintGenConfig {
                keys,
                foreign_keys: fks,
                inclusions,
                seed,
                ..Default::default()
            },
        );
        let spec = match CompiledSpec::compile(dtd, sigma) {
            Ok(spec) => spec,
            Err(_) => return Ok(()),
        };
        drive_replicated(&spec, seed, edits, "prop");
    }
}
