//! Differential and round-trip properties across the workspace crates.
//!
//! * The fast consistency path (count realizability only) and the
//!   witness-synthesizing path must agree on every decidable unary
//!   specification — this is the regression guard for the "floating cycle"
//!   soundness issue of the raw Ψ(D,Σ) encoding (see `xic_core::witness`).
//! * Whatever the checker calls consistent must come with a witness that
//!   validates and satisfies Σ (soundness of the positive side).
//! * The constraint surface syntax must round-trip through `render`.

use proptest::prelude::*;
use xml_integrity_constraints::constraints::{parse_constraint, Constraint};
use xml_integrity_constraints::core::{CheckerConfig, ConsistencyChecker};
use xml_integrity_constraints::dtd::Dtd;
use xml_integrity_constraints::gen::{
    random_dtd, random_unary_constraints, ConstraintGenConfig, DtdGenConfig,
};
use xml_integrity_constraints::xml::validate;

fn checker(synthesize_witness: bool) -> ConsistencyChecker {
    ConsistencyChecker::with_config(CheckerConfig {
        synthesize_witness,
        ..Default::default()
    })
}

/// All (type, attribute) slots of a DTD, used to draw random constraints.
fn attribute_slots(
    dtd: &Dtd,
) -> Vec<(
    xml_integrity_constraints::dtd::ElemId,
    xml_integrity_constraints::dtd::AttrId,
)> {
    let mut slots = Vec::new();
    for ty in dtd.types() {
        for &attr in dtd.attrs_of(ty) {
            slots.push((ty, attr));
        }
    }
    slots
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The counts-only path and the witness path reach the same verdict on
    /// random unary specifications, including negated keys.
    #[test]
    fn fast_and_witness_paths_agree(
        seed in 0u64..300,
        types in 3usize..7,
        keys in 0usize..3,
        fks in 0usize..3,
        neg_keys in 0usize..2,
    ) {
        let dtd = random_dtd(&DtdGenConfig { seed, num_types: types, ..Default::default() });
        let sigma = random_unary_constraints(
            &dtd,
            &ConstraintGenConfig {
                keys,
                foreign_keys: fks,
                negated_keys: neg_keys,
                seed,
                ..Default::default()
            },
        );
        let fast = checker(false).check(&dtd, &sigma).unwrap();
        let full = checker(true).check(&dtd, &sigma).unwrap();
        // Unknown verdicts (solver budget) are allowed to differ; decisive
        // verdicts must agree.
        if !fast.is_unknown() && !full.is_unknown() {
            prop_assert_eq!(
                fast.is_consistent(),
                full.is_consistent(),
                "fast: {} / full: {}",
                fast.explanation(),
                full.explanation()
            );
        }
    }

    /// Consistent verdicts are backed by a document that conforms to the DTD
    /// and satisfies Σ — for the classes with negated inclusion constraints
    /// as well.
    #[test]
    fn consistent_specs_with_negated_inclusions_have_sound_witnesses(
        seed in 0u64..300,
        types in 3usize..7,
        keys in 0usize..2,
        incs in 0usize..2,
        neg_incs in 1usize..3,
    ) {
        let dtd = random_dtd(&DtdGenConfig { seed, num_types: types, ..Default::default() });
        let sigma = random_unary_constraints(
            &dtd,
            &ConstraintGenConfig {
                keys,
                foreign_keys: 0,
                inclusions: incs,
                negated_inclusions: neg_incs,
                seed,
                ..Default::default()
            },
        );
        let outcome = checker(true).check(&dtd, &sigma).unwrap();
        if let Some(witness) = outcome.witness() {
            prop_assert!(validate(witness, &dtd).is_empty());
            prop_assert!(
                xml_integrity_constraints::constraints::document_satisfies(&dtd, witness, &sigma),
                "witness violates Σ: {}",
                sigma.render(&dtd)
            );
        }
    }

    /// `parse_constraint(render(c)) == c` for random unary constraints of
    /// every kind, so specifications can be written out and read back.
    #[test]
    fn constraint_surface_syntax_round_trips(
        seed in 0u64..500,
        types in 3usize..9,
        kind in 0usize..5,
        pick_a in 0usize..64,
        pick_b in 0usize..64,
    ) {
        let dtd = random_dtd(&DtdGenConfig { seed, num_types: types, ..Default::default() });
        let slots = attribute_slots(&dtd);
        prop_assume!(!slots.is_empty());
        let (t1, l1) = slots[pick_a % slots.len()];
        let (t2, l2) = slots[pick_b % slots.len()];
        let constraint = match kind {
            0 => Constraint::unary_key(t1, l1),
            1 => Constraint::unary_inclusion(t1, l1, t2, l2),
            2 => Constraint::unary_foreign_key(t1, l1, t2, l2),
            3 => Constraint::not_unary_key(t1, l1),
            _ => Constraint::not_unary_inclusion(t1, l1, t2, l2),
        };
        let text = constraint.render(&dtd);
        let parsed = parse_constraint(&text, &dtd).unwrap();
        prop_assert_eq!(parsed, constraint, "round-trip of `{}`", text);
    }
}

/// Inconsistent verdicts never come from the undecidable fallback: whenever
/// the checker says Inconsistent for a unary class, re-checking with an empty
/// constraint set must stay consistent unless the DTD itself is unsatisfiable
/// (a sanity check that inconsistency is attributed to the constraints).
#[test]
fn inconsistency_is_attributed_to_constraints_or_dtd() {
    for seed in 0..40u64 {
        let dtd = random_dtd(&DtdGenConfig {
            seed,
            num_types: 5,
            ..Default::default()
        });
        let sigma = random_unary_constraints(
            &dtd,
            &ConstraintGenConfig {
                keys: 2,
                foreign_keys: 2,
                seed,
                ..Default::default()
            },
        );
        let with_sigma = checker(false).check(&dtd, &sigma).unwrap();
        let without = checker(false)
            .check(
                &dtd,
                &xml_integrity_constraints::constraints::ConstraintSet::new(),
            )
            .unwrap();
        if with_sigma.is_consistent() {
            // A consistent specification requires a satisfiable DTD.
            assert!(
                without.is_consistent(),
                "seed {seed}: {}",
                without.explanation()
            );
        }
    }
}
