//! End-to-end suite for the validation service: concurrent clients editing
//! disjoint documents of one named session must see replica reports
//! byte-identical to a single-process `CorpusSession` oracle; a torn
//! connection must never apply half a batch; a server restarted from its
//! drained delta logs must serve identical reports; and resource
//! rejections must arrive as structured error records on a connection
//! that stays usable.

use std::fs;
use std::io::Write as _;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xml_integrity_constraints::dtd::Dtd;
use xml_integrity_constraints::engine::wire::{self, Request};
use xml_integrity_constraints::engine::{CompiledSpec, Limits, SpecId};
use xml_integrity_constraints::server::{Client, Server, ServerConfig};
use xml_integrity_constraints::xml::{EditOp, NodeId, XmlTree};
use xml_integrity_constraints::{CorpusReplica, CorpusSession};

fn spec() -> Arc<CompiledSpec> {
    Arc::new(
        CompiledSpec::from_sources(
            "<!ELEMENT school (teacher*)>\n\
             <!ELEMENT teacher EMPTY>\n\
             <!ATTLIST teacher name CDATA #REQUIRED>",
            Some("school"),
            "teacher.name -> teacher",
        )
        .expect("fixture spec compiles"),
    )
}

fn doc_source(i: usize) -> String {
    format!("<school><teacher name=\"t{i}a\"/><teacher name=\"t{i}b\"/></school>")
}

fn temp_dir(tag: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("xic-service-{}-{tag}", std::process::id()));
    fs::remove_dir_all(&path).ok();
    fs::create_dir_all(&path).expect("create state dir");
    path
}

fn tcp_server(config: ServerConfig) -> (Arc<CompiledSpec>, Server) {
    let spec = spec();
    let server = Server::start(
        Arc::clone(&spec),
        ServerConfig {
            tcp: Some("127.0.0.1:0".parse().unwrap()),
            ..config
        },
    )
    .expect("server starts");
    (spec, server)
}

/// A valid random edit against the document's current state (mirrors the
/// generator of `tests/replica_agreement.rs`).
fn random_op(rng: &mut StdRng, dtd: &Dtd, tree: &XmlTree) -> EditOp {
    let elements: Vec<NodeId> = tree.elements().collect();
    let pick = |rng: &mut StdRng, nodes: &[NodeId]| nodes[rng.gen_range(0..nodes.len())];
    for _ in 0..8 {
        match rng.gen_range(0u32..10) {
            0..=5 => {
                let candidates: Vec<NodeId> = elements
                    .iter()
                    .copied()
                    .filter(|&n| {
                        tree.element_type(n)
                            .is_some_and(|ty| !dtd.attrs_of(ty).is_empty())
                    })
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let element = pick(rng, &candidates);
                let ty = tree.element_type(element).unwrap();
                let attrs = dtd.attrs_of(ty);
                return EditOp::SetAttr {
                    element,
                    attr: attrs[rng.gen_range(0..attrs.len())],
                    value: format!("val{}", rng.gen_range(0..3u32)),
                };
            }
            6..=7 => {
                let types: Vec<_> = dtd.types().collect();
                return EditOp::AddElement {
                    parent: pick(rng, &elements),
                    ty: types[rng.gen_range(0..types.len())],
                };
            }
            8 => {
                return EditOp::AddText {
                    parent: pick(rng, &elements),
                    value: format!("text{}", rng.gen_range(0..50u32)),
                };
            }
            _ => {
                let removable: Vec<NodeId> = elements
                    .iter()
                    .copied()
                    .filter(|&n| n != tree.root())
                    .collect();
                if removable.is_empty() {
                    continue;
                }
                return EditOp::RemoveSubtree {
                    element: pick(rng, &removable),
                };
            }
        }
    }
    let types: Vec<_> = dtd.types().collect();
    EditOp::AddElement {
        parent: tree.root(),
        ty: types[0],
    }
}

/// Precomputes a random edit script for one document: `rounds` batches,
/// each valid against the state the previous batches left behind.  The
/// same script drives the wire client and the in-process oracle.
fn edit_script(spec: &CompiledSpec, source: &str, seed: u64, rounds: usize) -> Vec<Vec<EditOp>> {
    let mut shadow = spec.parse_document(source).expect("fixture doc parses");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut batches = Vec::new();
    for _ in 0..rounds {
        let mut batch = Vec::new();
        for _ in 0..rng.gen_range(1..4usize) {
            let op = random_op(&mut rng, spec.dtd(), &shadow);
            shadow.apply_edit(&op).expect("generated op is valid");
            batch.push(op);
        }
        batches.push(batch);
    }
    batches
}

/// ≥3 concurrent clients editing disjoint documents of one named session:
/// every client-side replica reconstructs a report byte-identical to the
/// single-process oracle fed the same scripts.
#[test]
fn concurrent_clients_agree_with_oracle() {
    const CLIENTS: usize = 4;
    const ROUNDS: usize = 6;
    let (spec, server) = tcp_server(ServerConfig {
        workers: CLIENTS + 2,
        ..ServerConfig::default()
    });
    let addr = server.tcp_addr().unwrap();

    // Deterministic handle numbering: open every document from one setup
    // connection before any concurrent edits.
    let mut setup = Client::connect_tcp(addr, spec.id(), "shared").expect("connect");
    assert!(setup.hello().spec_known);
    assert_eq!(setup.hello().last_seq, 0);
    let mut handles = Vec::new();
    for i in 0..CLIENTS {
        handles.push(
            setup
                .open_doc(&format!("doc-{i}.xml"), &doc_source(i))
                .expect("open"),
        );
    }
    let scripts: Vec<Vec<Vec<EditOp>>> = (0..CLIENTS)
        .map(|i| edit_script(&spec, &doc_source(i), 0x5eed + i as u64, ROUNDS))
        .collect();

    let workers: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let spec = Arc::clone(&spec);
            let script = scripts[i].clone();
            let handle = handles[i];
            std::thread::spawn(move || {
                let mut client =
                    Client::connect_tcp(addr, spec.id(), "shared").expect("worker connect");
                let mut acked = 0u64;
                for batch in &script {
                    client.apply(handle, batch).expect("apply");
                    let delta = client.commit().expect("commit");
                    acked = delta.seq;
                }
                acked
            })
        })
        .collect();
    let mut max_acked = 0;
    for worker in workers {
        max_acked = max_acked.max(worker.join().expect("worker thread"));
    }
    assert_eq!(max_acked, (CLIENTS * ROUNDS) as u64, "one delta per commit");

    // The oracle replays the same scripts in a plain CorpusSession.
    let mut oracle = CorpusSession::new(&spec);
    let mut oracle_handles = Vec::new();
    for (i, &wire_handle) in handles.iter().enumerate() {
        let h = oracle
            .open_source(format!("doc-{i}.xml"), &doc_source(i))
            .expect("oracle open");
        assert_eq!(h.raw(), wire_handle, "handle numbering agrees");
        oracle_handles.push(h);
    }
    for (i, script) in scripts.iter().enumerate() {
        for batch in script {
            oracle
                .apply(oracle_handles[i], batch)
                .expect("oracle apply");
        }
    }
    oracle.commit();

    // Every client reconstructs the oracle's report from the delta stream
    // alone, byte for byte.
    for _ in 0..3 {
        let mut client = Client::connect_tcp(addr, spec.id(), "shared").expect("reader connect");
        assert_eq!(client.hello().last_seq, max_acked);
        let mut replica = CorpusReplica::new(spec.id());
        client.sync_replica(&mut replica).expect("sync");
        assert_eq!(replica.last_seq(), max_acked);
        assert_eq!(replica.report(), oracle.report());
        assert_eq!(replica.report().render(), oracle.report().render());
    }
    server.stop();
}

/// A connection killed mid-frame never applies any part of the batch: the
/// session equals the last fully framed record.
#[test]
fn torn_connection_applies_nothing() {
    let (spec, server) = tcp_server(ServerConfig::default());
    let addr = server.tcp_addr().unwrap();

    let mut client = Client::connect_tcp(addr, spec.id(), "torn").expect("connect");
    let handle = client.open_doc("doc.xml", &doc_source(0)).expect("open");
    let first = client.commit().expect("commit");
    assert_eq!(first.seq, 1);

    // A raw connection: full hello, then an apply batch cut off mid-frame.
    let mut raw = TcpStream::connect(addr).expect("raw connect");
    wire::write_request(&mut raw, 1, &Request::hello(spec.id(), "torn")).unwrap();
    let (_, hello) = wire::read_response(&mut raw).unwrap().expect("hello ack");
    assert!(matches!(hello, wire::Response::Hello(_)));
    let mut framed = Vec::new();
    wire::write_request(
        &mut framed,
        2,
        &Request::Apply {
            handle,
            ops: vec![
                EditOp::SetAttr {
                    element: NodeId(1),
                    attr: spec.dtd().attr_by_name("name").unwrap(),
                    value: "torn-away".into(),
                },
                EditOp::RemoveSubtree { element: NodeId(2) },
            ],
        },
    )
    .unwrap();
    raw.write_all(&framed[..framed.len() - 9]).unwrap();
    drop(raw);

    // Give the worker a moment to hit the torn tail, then verify nothing
    // of the half-framed batch reached the session.
    std::thread::sleep(Duration::from_millis(300));
    let delta = client.commit().expect("commit after torn peer");
    assert_eq!(delta.seq, 2);
    assert!(
        delta.changes.is_empty(),
        "torn batch must not dirty any document"
    );
    let stats = client.stats().expect("stats");
    assert!(
        stats.counter("server.torn_connections").unwrap_or(0) >= 1,
        "the torn connection must be counted"
    );

    let mut replica = CorpusReplica::new(spec.id());
    client.sync_replica(&mut replica).expect("sync");
    let mut oracle = CorpusSession::new(&spec);
    oracle.open_source("doc.xml", &doc_source(0)).unwrap();
    oracle.commit();
    oracle.commit();
    assert_eq!(replica.report().render(), oracle.report().render());
    server.stop();
}

/// Graceful drain persists every acknowledged commit; a server restarted
/// from the drained delta logs serves identical reports through read-only
/// replica sessions.
#[test]
fn restart_from_drained_logs_serves_identical_reports() {
    let state_dir = temp_dir("restart");
    let (spec, server) = tcp_server(ServerConfig {
        state_dir: Some(state_dir.clone()),
        ..ServerConfig::default()
    });
    let addr = server.tcp_addr().unwrap();

    let mut client = Client::connect_tcp(addr, spec.id(), "durable").expect("connect");
    let handle = client.open_doc("doc.xml", &doc_source(0)).expect("open");
    let script = edit_script(&spec, &doc_source(0), 0xd00d, 5);
    let mut acked = 0;
    for batch in &script {
        client.apply(handle, batch).expect("apply");
        acked = client.commit().expect("commit").seq;
    }
    let mut before = CorpusReplica::new(spec.id());
    client.sync_replica(&mut before).expect("sync");
    assert_eq!(client.shutdown().expect("shutdown"), 1);
    let report = server.wait();
    assert_eq!(report.drained_sessions, 1);
    assert_eq!(report.persisted_deltas, acked);
    assert!(state_dir.join("durable.xicj").is_file());

    // Restart over the same state dir: the session comes back as a
    // replica, serving the same stream.
    let server = Server::start(
        Arc::clone(&spec),
        ServerConfig {
            tcp: Some("127.0.0.1:0".parse().unwrap()),
            state_dir: Some(state_dir.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("restart");
    let addr = server.tcp_addr().unwrap();
    let mut client = Client::connect_tcp(addr, spec.id(), "durable").expect("reconnect");
    assert!(client.hello().replica);
    assert_eq!(client.hello().last_seq, acked);
    let mut after = CorpusReplica::new(spec.id());
    client.sync_replica(&mut after).expect("sync after restart");
    assert_eq!(after.last_seq(), before.last_seq());
    assert_eq!(after.report(), before.report());
    assert_eq!(after.report().render(), before.report().render());

    // Replica sessions reject writes with a structured `replica` record —
    // and the connection stays usable for reads.
    let err = client.open_doc("new.xml", &doc_source(1)).unwrap_err();
    let fault = err.fault().expect("structured record").clone();
    assert_eq!(fault.code, 2);
    assert_eq!(fault.kind, "replica");
    assert_eq!(
        client.sync(0).expect("still readable").len(),
        acked as usize
    );
    server.stop();
    fs::remove_dir_all(&state_dir).ok();
}

/// Shutdown under load: whatever a client saw acknowledged is in the
/// drained log, always.
#[test]
fn shutdown_under_load_loses_no_acknowledged_commit() {
    let state_dir = temp_dir("drain-load");
    let (spec, server) = tcp_server(ServerConfig {
        state_dir: Some(state_dir.clone()),
        ..ServerConfig::default()
    });
    let addr = server.tcp_addr().unwrap();

    let writer = {
        let spec = Arc::clone(&spec);
        std::thread::spawn(move || {
            let mut client = Client::connect_tcp(addr, spec.id(), "loaded").expect("connect");
            let handle = client.open_doc("doc.xml", &doc_source(0)).expect("open");
            let name = spec.dtd().attr_by_name("name").unwrap();
            let mut acked = 0u64;
            for i in 0.. {
                let op = EditOp::SetAttr {
                    element: NodeId(1),
                    attr: name,
                    value: format!("v{i}"),
                };
                if client.apply(handle, &[op]).is_err() {
                    break;
                }
                match client.commit() {
                    Ok(delta) => acked = delta.seq,
                    Err(_) => break,
                }
            }
            acked
        })
    };
    std::thread::sleep(Duration::from_millis(150));
    let mut stopper = Client::connect_tcp(addr, spec.id(), "loaded").expect("stopper");
    stopper.shutdown().expect("shutdown accepted");
    let acked = writer.join().expect("writer thread");
    let report = server.wait();
    assert!(acked >= 1, "the writer must land at least one commit");
    assert!(report.persisted_deltas >= acked);

    let server = Server::start(
        Arc::clone(&spec),
        ServerConfig {
            tcp: Some("127.0.0.1:0".parse().unwrap()),
            state_dir: Some(state_dir.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("restart");
    let mut client =
        Client::connect_tcp(server.tcp_addr().unwrap(), spec.id(), "loaded").expect("reconnect");
    assert!(
        client.hello().last_seq >= acked,
        "no acknowledged commit lost"
    );
    let deltas = client.sync(0).expect("sync");
    assert_eq!(deltas.len() as u64, client.hello().last_seq);
    for (i, delta) in deltas.iter().enumerate() {
        assert_eq!(delta.seq, i as u64 + 1, "delta stream is gap-free");
    }
    server.stop();
    fs::remove_dir_all(&state_dir).ok();
}

/// Resource rejections arrive as code-3 `resource:*` records and the
/// connection stays usable afterwards.
#[test]
fn resource_rejection_is_structured_not_a_dropped_connection() {
    let (spec, server) = tcp_server(ServerConfig {
        limits: Limits {
            max_doc_nodes: Some(4),
            ..Limits::UNLIMITED
        },
        ..ServerConfig::default()
    });
    let addr = server.tcp_addr().unwrap();
    let mut client = Client::connect_tcp(addr, spec.id(), "limited").expect("connect");

    let big = "<school>".to_owned() + &"<teacher name=\"x\"/>".repeat(10) + "</school>";
    let err = client.open_doc("big.xml", &big).unwrap_err();
    let fault = err.fault().expect("structured record").clone();
    assert_eq!(fault.code, 3, "resource rejections map to exit code 3");
    assert_eq!(fault.kind, "resource:max_doc_nodes");

    // Same connection, admissible document: still serving.
    let handle = client
        .open_doc("small.xml", "<school><teacher name=\"y\"/></school>")
        .expect("connection survived the rejection");
    assert_eq!(client.commit().expect("commit").seq, 1);
    client.close_doc(handle).expect("close");
    server.stop();
}

/// A hello with the wrong spec hash is refused with a `spec-mismatch`
/// record, not a silent close.
#[test]
fn spec_mismatch_hello_is_refused() {
    let (spec, server) = tcp_server(ServerConfig::default());
    let addr = server.tcp_addr().unwrap();
    let wrong = SpecId(spec.id().0 ^ 1, spec.id().1);
    let Err(err) = Client::connect_tcp(addr, wrong, "s") else {
        panic!("a mismatched spec hash must be refused");
    };
    let fault = err.fault().expect("structured record");
    assert_eq!(fault.code, 2);
    assert_eq!(fault.kind, "spec-mismatch");
    server.stop();
}

/// The Unix-socket transport speaks the identical protocol.
#[cfg(unix)]
#[test]
fn unix_socket_roundtrip() {
    let dir = temp_dir("unix");
    let sock = dir.join("xic.sock");
    let spec = spec();
    let server = Server::start(
        Arc::clone(&spec),
        ServerConfig {
            unix: Some(sock.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("unix server");
    let mut client = Client::connect_unix(&sock, spec.id(), "uds").expect("connect");
    client.open_doc("doc.xml", &doc_source(0)).expect("open");
    assert_eq!(client.commit().expect("commit").seq, 1);
    let mut replica = CorpusReplica::new(spec.id());
    client.sync_replica(&mut replica).expect("sync");
    assert_eq!(replica.report().total(), 1);
    server.stop();
    assert!(!sock.exists(), "socket file removed on stop");
    fs::remove_dir_all(&dir).ok();
}
