//! Crash-injection differential suite for the durable edit journals.
//!
//! The contract under test (see `xic_engine::journal`): for a persisted
//! session log, **truncation or corruption at any byte offset** yields
//! either
//!
//! * a recovered document that is witness-identical — same violations,
//!   same witness node ids, node-for-node the same arena — to a live
//!   session that replayed the same durable prefix of the edit history, or
//! * a structured [`JournalError`],
//!
//! and **never** a panic or a wrong verdict.  The oracle is the live
//! session itself: it records its verdict and a slot-for-slot arena
//! snapshot after every edit, and every recovery outcome is compared
//! against the state at the prefix the log actually preserved.
//!
//! The suite drives the contract two ways: a proptest over random
//! specifications and edit sequences (truncating at *every* byte boundary
//! and flipping *every* byte), and the named `xic-gen` workload families.
//! A separate test proves recovery still round-trips node-for-node after
//! `EditJournal` compaction dropped the in-memory prefix.

use std::fs;
use std::path::PathBuf;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xml_integrity_constraints::constraints::Violation;
use xml_integrity_constraints::dtd::Dtd;
use xml_integrity_constraints::engine::journal::JournalError;
use xml_integrity_constraints::engine::{CompiledSpec, Session};
use xml_integrity_constraints::gen::{
    fixed_dtd_growing_sigma, inconsistent_fanout_family, keys_only_family, negation_family,
    primary_key_family, random_document, random_dtd, random_unary_constraints,
    unary_consistency_family, ConstraintGenConfig, DocGenConfig, DtdGenConfig, SpecInstance,
};
use xml_integrity_constraints::xml::{EditOp, NodeId, TreeSnapshot, XmlTree};

/// Picks the next edit against the document's current state: every op is
/// valid by construction (live nodes, non-root removals).
fn random_op(rng: &mut StdRng, dtd: &Dtd, tree: &XmlTree) -> EditOp {
    let elements: Vec<NodeId> = tree.elements().collect();
    let pick = |rng: &mut StdRng, nodes: &[NodeId]| nodes[rng.gen_range(0..nodes.len())];
    for _ in 0..8 {
        match rng.gen_range(0u32..10) {
            0..=4 => {
                let candidates: Vec<NodeId> = elements
                    .iter()
                    .copied()
                    .filter(|&n| {
                        tree.element_type(n)
                            .is_some_and(|ty| !dtd.attrs_of(ty).is_empty())
                    })
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let element = pick(rng, &candidates);
                let ty = tree.element_type(element).unwrap();
                let attrs = dtd.attrs_of(ty);
                let attr = attrs[rng.gen_range(0..attrs.len())];
                return EditOp::SetAttr {
                    element,
                    attr,
                    value: format!("val{}", rng.gen_range(0..4u32)),
                };
            }
            5..=6 => {
                let types: Vec<_> = dtd.types().collect();
                return EditOp::AddElement {
                    parent: pick(rng, &elements),
                    ty: types[rng.gen_range(0..types.len())],
                };
            }
            7 => {
                return EditOp::AddText {
                    parent: pick(rng, &elements),
                    value: format!("text{}", rng.gen_range(0..100u32)),
                };
            }
            _ => {
                let removable: Vec<NodeId> = elements
                    .iter()
                    .copied()
                    .filter(|&n| n != tree.root())
                    .collect();
                if removable.is_empty() {
                    continue;
                }
                return EditOp::RemoveSubtree {
                    element: pick(rng, &removable),
                };
            }
        }
    }
    let types: Vec<_> = dtd.types().collect();
    EditOp::AddElement {
        parent: tree.root(),
        ty: types[0],
    }
}

fn temp_path(tag: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    // Tests in this binary run on parallel threads; the thread id keeps
    // their scratch logs from colliding.
    path.push(format!(
        "xic-journal-recovery-{}-{:?}-{tag}.xicj",
        std::process::id(),
        std::thread::current().id()
    ));
    path
}

/// The live session's state after a prefix of the edit history: the
/// verdict (witnesses included) and the slot-for-slot arena.
struct PrefixState {
    violations: Vec<Violation>,
    arena: TreeSnapshot,
}

/// Drives `edits` random edits through a live session, persisting the log
/// (with a mid-history persist + compact to exercise the append path) and
/// recording the oracle state after every prefix.  Returns the log bytes
/// and the per-prefix oracle.
fn build_persisted_history(
    spec: &CompiledSpec,
    tree: XmlTree,
    rng: &mut StdRng,
    edits: usize,
    tag: &str,
) -> (Vec<u8>, Vec<PrefixState>) {
    let path = temp_path(tag);
    fs::remove_file(&path).ok();
    let mut session = Session::new(spec);
    let doc = session.open(tree);
    // Base record first: it folds 0 edits, so log prefix r ⇔ history
    // prefix r.
    session.persist_to(doc, &path).expect("fresh persist");
    let mut states = vec![PrefixState {
        violations: session.verdict(doc).unwrap().violations().to_vec(),
        arena: session.tree(doc).unwrap().snapshot(),
    }];
    for i in 0..edits {
        let op = random_op(rng, spec.dtd(), session.tree(doc).unwrap());
        let verdict = session.apply(doc, std::slice::from_ref(&op)).unwrap();
        states.push(PrefixState {
            violations: verdict.violations().to_vec(),
            arena: session.tree(doc).unwrap().snapshot(),
        });
        if i == edits / 2 {
            // Mid-history persist + compaction: the tail of the log is
            // appended across two calls and the in-memory journal loses
            // its durable prefix — recovery must not notice.
            session.persist_to(doc, &path).expect("mid persist");
            session.compact(doc).expect("compact");
        }
    }
    session.persist_to(doc, &path).expect("final persist");
    let bytes = fs::read(&path).expect("log readable");
    fs::remove_file(&path).ok();
    (bytes, states)
}

/// Recover-or-reject at one mutated log image: recovery must either fail
/// structurally or be witness-identical to the oracle prefix it reports.
fn assert_recover_or_reject(
    spec: &CompiledSpec,
    image: &[u8],
    states: &[PrefixState],
    context: &str,
) {
    let path = temp_path("probe");
    fs::write(&path, image).expect("write probe image");
    let mut session = Session::new(spec);
    match session.recover_from(&path) {
        Err(_) => {} // structured rejection: always allowed
        Ok(recovery) => {
            assert_eq!(
                recovery.base_edits, 0,
                "{context}: the base record folds no edits in this harness"
            );
            let r = recovery.ops_replayed as usize;
            assert!(
                r < states.len(),
                "{context}: recovered {r} ops, history only has {}",
                states.len() - 1
            );
            let oracle = &states[r];
            let verdict = session.verdict(recovery.handle).unwrap();
            assert_eq!(
                verdict.violations(),
                oracle.violations.as_slice(),
                "{context}: recovered prefix {r} disagrees with the live session"
            );
            assert_eq!(
                session.tree(recovery.handle).unwrap().snapshot(),
                oracle.arena,
                "{context}: recovered arena differs node-for-node at prefix {r}"
            );
        }
    }
    fs::remove_file(&path).ok();
}

/// Truncates at every byte boundary and flips every byte (with the given
/// mask); each image must recover-or-reject.
fn crash_inject_everywhere(spec: &CompiledSpec, bytes: &[u8], states: &[PrefixState], mask: u8) {
    // The intact log recovers the full history.
    assert_recover_or_reject(spec, bytes, states, "intact");
    {
        let path = temp_path("full");
        fs::write(&path, bytes).unwrap();
        let mut session = Session::new(spec);
        let recovery = session.recover_from(&path).expect("intact log recovers");
        assert_eq!(recovery.ops_replayed as usize, states.len() - 1);
        assert!(!recovery.truncated_tail);
        fs::remove_file(&path).ok();
    }
    // Kill at every byte prefix.
    for cut in 0..bytes.len() {
        assert_recover_or_reject(spec, &bytes[..cut], states, &format!("truncate@{cut}"));
    }
    // Corrupt every byte.
    let mut image = bytes.to_vec();
    for offset in 0..image.len() {
        image[offset] ^= mask;
        assert_recover_or_reject(spec, &image, states, &format!("flip@{offset}"));
        image[offset] ^= mask;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random specs, random documents, random edit sequences: persist →
    /// kill at arbitrary byte prefix (and flip arbitrary bytes) → recover
    /// yields a durable prefix witness-identical to the live session, or a
    /// structured error.  Never a panic, never a wrong verdict.
    #[test]
    fn crash_injection_recovers_or_rejects(
        seed in 0u64..400,
        types in 2usize..6,
        keys in 0usize..3,
        fks in 0usize..3,
        edits in 1usize..10,
        mask in 1u32..256,
    ) {
        let dtd = random_dtd(&DtdGenConfig { seed, num_types: types, ..Default::default() });
        let sigma = random_unary_constraints(
            &dtd,
            &ConstraintGenConfig { keys, foreign_keys: fks, seed, ..Default::default() },
        );
        let spec = match CompiledSpec::compile(dtd, sigma) {
            Ok(spec) => spec,
            Err(_) => return Ok(()), // Ψ(D,Σ) rejected the generated spec
        };
        let Some(tree) = random_document(
            spec.dtd(),
            &DocGenConfig { seed, max_elements: 16, value_pool: 3, ..Default::default() },
        ) else {
            return Ok(()); // unsatisfiable DTD
        };
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9));
        let (bytes, states) = build_persisted_history(&spec, tree, &mut rng, edits, "prop");
        crash_inject_everywhere(&spec, &bytes, &states, mask as u8);
    }
}

/// The same crash-injection contract driven from every document-bearing
/// `xic-gen` workload family, so the suite is not limited to the uniform
/// random sampler.
#[test]
fn workload_families_survive_crash_injection() {
    let families: Vec<(&str, Vec<SpecInstance>)> = vec![
        ("chain", unary_consistency_family(&[3])),
        ("fanout", inconsistent_fanout_family(&[2])),
        ("primary_key", primary_key_family(&[5], 11)),
        ("keys_only", keys_only_family(&[5], 12)),
        ("fixed_dtd", fixed_dtd_growing_sigma(4, &[4], 13)),
        ("negation", negation_family(&[3], 14)),
    ];
    let mut driven = 0usize;
    for (family, instances) in families {
        for instance in instances {
            let spec = match CompiledSpec::compile(instance.dtd, instance.sigma) {
                Ok(spec) => spec,
                Err(_) => continue,
            };
            let Some(tree) = random_document(
                spec.dtd(),
                &DocGenConfig {
                    seed: 21,
                    max_elements: 10,
                    value_pool: 3,
                    ..Default::default()
                },
            ) else {
                continue;
            };
            let mut rng = StdRng::seed_from_u64(0xfeed ^ driven as u64);
            let (bytes, states) = build_persisted_history(&spec, tree, &mut rng, 5, family);
            crash_inject_everywhere(&spec, &bytes, &states, 0x41);
            driven += 1;
        }
    }
    assert!(
        driven >= 5,
        "the workload families must actually exercise crash injection (drove {driven})"
    );
}

/// Satellite: `EditJournal::compact` drops durable entries without losing
/// recoverability — after persist → compact → edit → persist, recovery
/// reproduces the live document node-for-node, and a torn tail written
/// over the compacted log is repaired by the next persist.
#[test]
fn recovery_after_compaction_round_trips_node_for_node() {
    let spec = CompiledSpec::from_sources(
        "<!ELEMENT school (teacher*)>\n\
         <!ELEMENT teacher (note*)>\n\
         <!ELEMENT note (#PCDATA)>\n\
         <!ATTLIST teacher name CDATA #REQUIRED>",
        Some("school"),
        "teacher.name -> teacher",
    )
    .unwrap();
    let path = temp_path("compaction");
    fs::remove_file(&path).ok();
    let mut rng = StdRng::seed_from_u64(7);

    let tree = spec
        .parse_document("<school><teacher name=\"Joe\"/><teacher name=\"Ann\"/></school>")
        .unwrap();
    let mut session = Session::new(&spec);
    let doc = session.open(tree);
    session.persist_to(doc, &path).unwrap();
    for round in 0..4 {
        for _ in 0..6 {
            let op = random_op(&mut rng, spec.dtd(), session.tree(doc).unwrap());
            session.apply(doc, std::slice::from_ref(&op)).unwrap();
        }
        session.persist_to(doc, &path).unwrap();
        let dropped = session.compact(doc).unwrap();
        assert!(dropped > 0, "round {round} persisted entries to drop");
        assert!(session.journal(doc).unwrap().is_empty());
        assert_eq!(
            session.journal(doc).unwrap().total_recorded(),
            6 * (round + 1)
        );

        // Recovery from the log reproduces the live document exactly even
        // though the in-memory journal no longer holds the history.
        let mut recovered = Session::new(&spec);
        let recovery = recovered.recover_from(&path).unwrap();
        assert_eq!(recovery.total_edits(), 6 * (round + 1));
        assert_eq!(
            recovered.tree(recovery.handle).unwrap().snapshot(),
            session.tree(doc).unwrap().snapshot(),
            "round {round}"
        );
        assert_eq!(
            recovered.verdict(recovery.handle).unwrap().violations(),
            session.verdict(doc).unwrap().violations(),
            "round {round}"
        );
    }

    // A crash mid-append leaves a torn tail; the next persist repairs it
    // and recovery still reaches the live state.
    let mut bytes = fs::read(&path).unwrap();
    bytes.extend_from_slice(&[0xAB; 9]); // half a frame of garbage
    fs::write(&path, &bytes).unwrap();
    let op = random_op(&mut rng, spec.dtd(), session.tree(doc).unwrap());
    session.apply(doc, std::slice::from_ref(&op)).unwrap();
    let receipt = session.persist_to(doc, &path).unwrap();
    assert!(receipt.repaired_torn_tail);
    let mut recovered = Session::new(&spec);
    let recovery = recovered.recover_from(&path).unwrap();
    assert_eq!(recovery.total_edits(), 25);
    assert_eq!(
        recovered.tree(recovery.handle).unwrap().snapshot(),
        session.tree(doc).unwrap().snapshot()
    );

    // Compacting past the log is refused: the history would exist nowhere.
    let mut rogue = Session::new(&spec);
    let tree = spec.parse_document("<school/>").unwrap();
    let rogue_doc = rogue.open(tree);
    let rogue_path = temp_path("rogue");
    fs::remove_file(&rogue_path).ok();
    rogue.persist_to(rogue_doc, &rogue_path).unwrap();
    let root = rogue.tree(rogue_doc).unwrap().root();
    let teacher = spec.dtd().type_by_name("teacher").unwrap();
    rogue
        .apply(
            rogue_doc,
            &[EditOp::AddElement {
                parent: root,
                ty: teacher,
            }],
        )
        .unwrap();
    // Not persisted yet, so nothing is droppable…
    assert_eq!(rogue.compact(rogue_doc).unwrap(), 0);
    rogue.persist_to(rogue_doc, &rogue_path).unwrap();
    rogue.compact(rogue_doc).unwrap();
    // …and a log that was rewound below the compaction watermark is
    // rejected with the structured error, not silently rewritten.
    let full = fs::read(&rogue_path).unwrap();
    let base_only = &full[..full.len() - 1];
    fs::write(&rogue_path, base_only).unwrap();
    let another = random_op(&mut rng, spec.dtd(), rogue.tree(rogue_doc).unwrap());
    rogue
        .apply(rogue_doc, std::slice::from_ref(&another))
        .unwrap();
    let err = rogue.persist_to(rogue_doc, &rogue_path).unwrap_err();
    assert!(
        matches!(err, JournalError::Compacted { .. }),
        "expected Compacted, got {err:?}"
    );

    fs::remove_file(&path).ok();
    fs::remove_file(&rogue_path).ok();
}
