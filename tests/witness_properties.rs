//! Property-based integration tests: the central soundness property of the
//! reproduction is that whenever the checker says "consistent" and produces
//! a witness, that witness really conforms to the DTD and satisfies Σ.

use proptest::prelude::*;
use xml_integrity_constraints::constraints::document_satisfies;
use xml_integrity_constraints::core::{CheckerConfig, ConsistencyChecker};
use xml_integrity_constraints::dtd::SimpleDtd;
use xml_integrity_constraints::gen::{
    random_document, random_dtd, random_unary_constraints, ConstraintGenConfig, DocGenConfig,
    DtdGenConfig,
};
use xml_integrity_constraints::xml::validate;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random documents generated for a random DTD always validate.
    #[test]
    fn generated_documents_validate(seed in 0u64..500, types in 3usize..10) {
        let dtd = random_dtd(&DtdGenConfig { seed, num_types: types, ..Default::default() });
        let doc = random_document(&dtd, &DocGenConfig { seed, ..Default::default() })
            .expect("layered DTDs are satisfiable");
        prop_assert!(validate(&doc, &dtd).is_empty());
    }

    /// Simplification preserves per-type cardinalities of original types
    /// (Lemma 4.3), checked on random generated documents: counting nodes of
    /// original types in a valid document never involves synthetic types.
    #[test]
    fn simplification_keeps_original_types(seed in 0u64..500, types in 3usize..10) {
        let dtd = random_dtd(&DtdGenConfig { seed, num_types: types, ..Default::default() });
        let simple = SimpleDtd::from_dtd(&dtd);
        prop_assert!(simple.num_types() >= dtd.num_types());
        for ty in dtd.types() {
            prop_assert_eq!(simple.original(simple.simple_of(ty)), Some(ty));
        }
        // Satisfiability agrees between the two representations.
        prop_assert_eq!(simple.satisfiable(),
            xml_integrity_constraints::dtd::dtd_satisfiable(&dtd));
    }

    /// Whenever the unary checker reports Consistent, its witness satisfies
    /// both the DTD and Σ; and it never reports Unknown on these instances.
    #[test]
    fn consistent_verdicts_come_with_valid_witnesses(
        seed in 0u64..300,
        types in 3usize..8,
        keys in 0usize..4,
        fks in 0usize..4,
    ) {
        let dtd = random_dtd(&DtdGenConfig { seed, num_types: types, ..Default::default() });
        let sigma = random_unary_constraints(
            &dtd,
            &ConstraintGenConfig { keys, foreign_keys: fks, seed, ..Default::default() },
        );
        let checker = ConsistencyChecker::with_config(CheckerConfig::default());
        let outcome = checker.check(&dtd, &sigma).unwrap();
        prop_assert!(!outcome.is_unknown(), "unary instances must be decided: {}", outcome.explanation());
        if let Some(witness) = outcome.witness() {
            prop_assert!(validate(witness, &dtd).is_empty());
            prop_assert!(document_satisfies(&dtd, witness, &sigma));
        }
    }

    /// With negations in the mix the checker still decides, and witnesses are
    /// still genuine.
    #[test]
    fn negated_constraints_are_also_decided(
        seed in 0u64..200,
        types in 3usize..7,
        neg_keys in 0usize..3,
        neg_incs in 0usize..3,
    ) {
        let dtd = random_dtd(&DtdGenConfig { seed, num_types: types, ..Default::default() });
        let sigma = random_unary_constraints(
            &dtd,
            &ConstraintGenConfig {
                keys: 1,
                foreign_keys: 1,
                negated_keys: neg_keys,
                negated_inclusions: neg_incs,
                seed,
                ..Default::default()
            },
        );
        let checker = ConsistencyChecker::new();
        let outcome = checker.check(&dtd, &sigma).unwrap();
        prop_assert!(!outcome.is_unknown(), "{}", outcome.explanation());
        if let Some(witness) = outcome.witness() {
            prop_assert!(validate(witness, &dtd).is_empty());
            prop_assert!(document_satisfies(&dtd, witness, &sigma));
        }
    }
}
