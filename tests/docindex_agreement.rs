//! Differential testing of the interned-value `DocIndex` fast path against
//! the retained string-valued reference checker.
//!
//! The `DocIndex` rewrite of `T ⊨ Σ` (single-pass index construction over
//! interned `ValueId` tuples) must be observationally identical to the seed
//! algorithm kept alive in `SatisfactionChecker`: same violations, same
//! witnesses, same order, same rendered values — on every generated
//! workload, not just the paper's examples.

use proptest::prelude::*;
use xml_integrity_constraints::constraints::{DocIndex, IndexPlan, SatisfactionChecker};
use xml_integrity_constraints::gen::{
    random_document, random_dtd, random_unary_constraints, ConstraintGenConfig, DocGenConfig,
    DtdGenConfig,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On random DTDs, random unary constraint sets (including negations)
    /// and random conforming documents, the `DocIndex`-backed checker and
    /// the reference checker produce identical violation sets.
    #[test]
    fn docindex_and_reference_checker_agree(
        seed in 0u64..500,
        types in 2usize..8,
        keys in 0usize..4,
        fks in 0usize..4,
        inclusions in 0usize..3,
        neg_keys in 0usize..2,
        neg_inclusions in 0usize..2,
        value_pool in 1usize..6,
    ) {
        let dtd = random_dtd(&DtdGenConfig { seed, num_types: types, ..Default::default() });
        let sigma = random_unary_constraints(
            &dtd,
            &ConstraintGenConfig {
                keys,
                foreign_keys: fks,
                inclusions,
                negated_keys: neg_keys,
                negated_inclusions: neg_inclusions,
                seed,
                ..Default::default()
            },
        );
        // Small value pools force key clashes and dangling references, so
        // both violation and satisfaction branches are exercised.
        let Some(tree) = random_document(
            &dtd,
            &DocGenConfig { seed, value_pool, ..Default::default() },
        ) else {
            return Ok(()); // unsatisfiable DTD: nothing to compare
        };

        let plan = IndexPlan::for_set(&sigma);
        let index = DocIndex::build(&dtd, &tree, &plan);
        let fast = index.check_all(&sigma);
        let reference = SatisfactionChecker::new(&dtd, &tree).check_all(&sigma);
        prop_assert_eq!(&fast, &reference);

        // The boolean views agree with the violation lists.
        prop_assert_eq!(index.satisfies_all(&sigma), fast.is_empty());
        for c in sigma.iter() {
            prop_assert_eq!(
                index.check(c),
                SatisfactionChecker::new(&dtd, &tree).check(c)
            );
        }
    }

    /// Serializing and re-parsing a document (fresh pool, different interning
    /// order) never changes any verdict: ids are per-document symbols, and
    /// only string equality is observable.
    #[test]
    fn verdicts_survive_a_write_parse_round_trip(
        seed in 0u64..200,
        types in 2usize..6,
        keys in 1usize..4,
        fks in 0usize..3,
    ) {
        let dtd = random_dtd(&DtdGenConfig { seed, num_types: types, ..Default::default() });
        let sigma = random_unary_constraints(
            &dtd,
            &ConstraintGenConfig { keys, foreign_keys: fks, seed, ..Default::default() },
        );
        let Some(tree) = random_document(
            &dtd,
            &DocGenConfig { seed, value_pool: 3, ..Default::default() },
        ) else {
            return Ok(());
        };
        let text = xml_integrity_constraints::xml::write_document(&tree, &dtd);
        let reparsed = xml_integrity_constraints::xml::parse_document(&text, &dtd).unwrap();

        let plan = IndexPlan::for_set(&sigma);
        let direct = DocIndex::build(&dtd, &tree, &plan).check_all(&sigma);
        let round_tripped = DocIndex::build(&dtd, &reparsed, &plan).check_all(&sigma);
        // Node ids can shift across serialization (attribute nodes are
        // created in a different order), so compare the rendered constraints
        // and values, which is what users observe.
        let view = |vs: &[xml_integrity_constraints::constraints::Violation]| {
            vs.iter()
                .map(|v| v.constraint().to_string())
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(view(&direct), view(&round_tripped));
    }
}
