//! Exact limit enforcement across the `xic-gen` generator families.
//!
//! The resource-governance contract (see `xic_engine::Limits`) promises
//! boundaries, not heuristics: a bound set to precisely a document's
//! measured cost admits it, a bound one below rejects it with a structured
//! error that names the violated limit — never a panic, never an
//! off-by-one, never a partially applied batch.  This suite *measures*
//! each generated document (rendered bytes, node count, element nesting
//! depth) and then probes every boundary at exactly-N and N−1:
//!
//! * the parser budget ([`xic_xml::ParseBudget`]) over proptest-drawn
//!   random DTDs and documents,
//! * [`Session::open_source`] / [`CorpusSession::open_source`] over the
//!   named workload families,
//! * edit admission ([`Session::apply`]) for the node, depth and
//!   queued-op bounds, asserting rejection is all-or-nothing with the
//!   batch echoed back,
//! * [`CorpusSession`] dirty-document backpressure.

use proptest::prelude::*;
use xml_integrity_constraints::engine::{
    CompiledSpec, CorpusSession, LimitKind, Limits, Session, SessionError,
};
use xml_integrity_constraints::gen::{
    fixed_dtd_growing_sigma, inconsistent_fanout_family, keys_only_family, negation_family,
    primary_key_family, random_document, random_dtd, random_unary_constraints,
    unary_consistency_family, ConstraintGenConfig, DocGenConfig, DtdGenConfig, SpecInstance,
};
use xml_integrity_constraints::xml::{
    parse_document_budgeted, write_document, EditOp, ParseBudget, ParseError, ParseLimit,
    ValuePool, XmlTree,
};

/// Element nesting depth of the document: the maximum, over all elements,
/// of the parent-chain length (root = 1).  This is exactly the quantity
/// the parser's `max_depth` bound meters.
fn element_depth(tree: &XmlTree) -> usize {
    tree.elements()
        .map(|node| {
            let mut depth = 1;
            let mut cursor = node;
            while let Some(parent) = tree.parent(cursor) {
                depth += 1;
                cursor = parent;
            }
            depth
        })
        .max()
        .expect("a document always has a root element")
}

/// Asserts the parser budget boundary is exact for one measured document:
/// the budget at precisely (bytes, nodes, depth) admits it, and each bound
/// lowered by one rejects it naming that limit, with the observed value
/// the first one past the bound.
fn assert_parse_boundary(source: &str, dtd: &xml_integrity_constraints::dtd::Dtd) {
    let exact = parse_document_budgeted(source, dtd, ValuePool::new(), &ParseBudget::UNLIMITED)
        .expect("an unlimited budget admits every well-formed document");
    let bytes = source.len();
    let nodes = exact.num_nodes();
    let depth = element_depth(&exact);

    let admitted = parse_document_budgeted(
        source,
        dtd,
        ValuePool::new(),
        &ParseBudget {
            max_bytes: Some(bytes),
            max_nodes: Some(nodes),
            max_depth: Some(depth),
        },
    )
    .expect("a budget of exactly the measured cost admits the document");
    assert_eq!(admitted.num_nodes(), nodes, "admission must not truncate");

    for (budget, limit, observed) in [
        (
            ParseBudget {
                max_bytes: Some(bytes - 1),
                ..ParseBudget::UNLIMITED
            },
            ParseLimit::Bytes,
            bytes,
        ),
        (
            ParseBudget {
                max_nodes: Some(nodes - 1),
                ..ParseBudget::UNLIMITED
            },
            ParseLimit::Nodes,
            nodes,
        ),
        (
            ParseBudget {
                max_depth: Some(depth - 1),
                ..ParseBudget::UNLIMITED
            },
            ParseLimit::Depth,
            depth,
        ),
    ] {
        // A one-element document has depth 1; `max_depth: 0` still rejects
        // it (the root trips the bound), so no case is skipped.
        let (err, _pool) = parse_document_budgeted(source, dtd, ValuePool::new(), &budget)
            .expect_err("a budget one below the measured cost must reject");
        match err {
            ParseError::Budget(b) => {
                assert_eq!(b.limit, limit, "wrong limit named: {b}");
                assert_eq!(
                    b.observed, observed,
                    "observed must be the first value past the bound: {b}"
                );
            }
            ParseError::Xml(e) => panic!("budget rejection must be structured, got XML error {e}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Parser-budget boundaries are exact for random DTDs and documents.
    #[test]
    fn parse_budget_boundaries_are_exact(seed in 0u64..5_000, doc_seed in 0u64..5_000) {
        let dtd = random_dtd(&DtdGenConfig {
            seed,
            num_types: 5,
            ..Default::default()
        });
        let Some(tree) = random_document(
            &dtd,
            &DocGenConfig {
                seed: doc_seed,
                max_elements: 24,
                value_pool: 4,
                ..Default::default()
            },
        ) else {
            // Some random DTDs admit no finite document; nothing to meter.
            return Ok(());
        };
        let source = write_document(&tree, &dtd);
        assert_parse_boundary(&source, &dtd);
    }

    /// Edit admission boundaries are exact, and rejection is all-or-nothing:
    /// the document is untouched and the whole batch comes back in the echo.
    #[test]
    fn edit_admission_boundaries_are_exact(extra in 1usize..8) {
        let spec = school_spec();
        let teacher = spec.dtd().type_by_name("teacher").unwrap();

        // `max_doc_nodes`: each AddElement costs one node.
        let mut session = Session::new(&spec);
        let doc = session.open_source("<school><teacher name=\"Joe\"/></school>").unwrap();
        let before = session.tree(doc).unwrap().num_nodes();
        let root = session.tree(doc).unwrap().root();
        let ops: Vec<EditOp> = (0..extra)
            .map(|_| EditOp::AddElement { parent: root, ty: teacher })
            .collect();

        let mut tight = Session::with_limits(&spec, Limits {
            max_doc_nodes: Some(before + extra - 1),
            ..Limits::UNLIMITED
        });
        let doc = tight.open_source("<school><teacher name=\"Joe\"/></school>").unwrap();
        let err = tight.apply(doc, &ops).expect_err("one node over the bound must reject");
        let SessionError::Resource(r) = err else {
            panic!("expected a structured resource rejection, got {err}");
        };
        prop_assert_eq!(r.limit, LimitKind::DocNodes);
        prop_assert_eq!(r.observed, (before + extra) as u64);
        prop_assert_eq!(r.rejected.len(), ops.len(), "the whole batch is echoed back");
        prop_assert_eq!(
            tight.tree(doc).unwrap().num_nodes(),
            before,
            "rejection must leave the document untouched"
        );
        // Exactly at the bound the same batch is admitted whole.
        tight.apply(doc, &ops).expect_err("still one over; widen first");
        let mut exact = Session::with_limits(&spec, Limits {
            max_doc_nodes: Some(before + extra),
            ..Limits::UNLIMITED
        });
        let doc = exact.open_source("<school><teacher name=\"Joe\"/></school>").unwrap();
        exact.apply(doc, &ops).expect("exactly at the bound admits the batch");
        prop_assert_eq!(exact.tree(doc).unwrap().num_nodes(), before + extra);

        // `max_queued_ops`: bounds the batch length itself.
        let mut queued = Session::with_limits(&spec, Limits {
            max_queued_ops: Some(ops.len() - 1),
            ..Limits::UNLIMITED
        });
        let doc = queued.open_source("<school><teacher name=\"Joe\"/></school>").unwrap();
        let err = queued.apply(doc, &ops).expect_err("batch longer than the queue bound");
        let SessionError::Resource(r) = err else {
            panic!("expected a structured resource rejection, got {err}");
        };
        prop_assert_eq!(r.limit, LimitKind::QueuedOps);
        prop_assert_eq!(r.rejected.len(), ops.len());
        let mut queued_ok = Session::with_limits(&spec, Limits {
            max_queued_ops: Some(ops.len()),
            ..Limits::UNLIMITED
        });
        let doc = queued_ok.open_source("<school><teacher name=\"Joe\"/></school>").unwrap();
        queued_ok.apply(doc, &ops).expect("a batch of exactly the bound is admitted");
    }
}

fn school_spec() -> CompiledSpec {
    CompiledSpec::from_sources(
        "<!ELEMENT school (teacher*)>\n\
         <!ELEMENT teacher EMPTY>\n\
         <!ATTLIST teacher name CDATA #IMPLIED>",
        Some("school"),
        "",
    )
    .expect("the school spec compiles")
}

/// The named workload families, through both session front doors: the
/// measured cost admits, one below rejects as [`SessionError::Resource`]
/// naming the violated limit.
#[test]
fn session_open_boundaries_hold_across_workload_families() {
    let families: Vec<(&str, Vec<SpecInstance>)> = vec![
        ("chain", unary_consistency_family(&[3])),
        ("fanout", inconsistent_fanout_family(&[2])),
        ("primary_key", primary_key_family(&[5], 11)),
        ("keys_only", keys_only_family(&[5], 12)),
        ("fixed_dtd", fixed_dtd_growing_sigma(4, &[4], 13)),
        ("negation", negation_family(&[3], 14)),
    ];
    let mut probed = 0usize;
    for (family, instances) in families {
        for instance in instances {
            let Ok(spec) = CompiledSpec::compile(instance.dtd, instance.sigma) else {
                continue;
            };
            let Some(tree) = random_document(
                spec.dtd(),
                &DocGenConfig {
                    seed: 33,
                    max_elements: 12,
                    value_pool: 3,
                    ..Default::default()
                },
            ) else {
                continue;
            };
            let source = write_document(&tree, spec.dtd());
            assert_parse_boundary(&source, spec.dtd());

            let bytes = source.len();
            let nodes = tree.num_nodes();
            let depth = element_depth(&tree);
            let exact = Limits {
                max_doc_bytes: Some(bytes),
                max_doc_nodes: Some(nodes),
                max_depth: Some(depth),
                ..Limits::UNLIMITED
            };
            Session::with_limits(&spec, exact)
                .open_source(&source)
                .unwrap_or_else(|e| panic!("{family}: exact limits must admit: {e}"));
            CorpusSession::with_limits(&spec, exact)
                .open_source(family, &source)
                .unwrap_or_else(|e| panic!("{family}: exact limits must admit: {e}"));

            for (limits, kind) in [
                (
                    Limits {
                        max_doc_bytes: Some(bytes - 1),
                        ..Limits::UNLIMITED
                    },
                    LimitKind::DocBytes,
                ),
                (
                    Limits {
                        max_doc_nodes: Some(nodes - 1),
                        ..Limits::UNLIMITED
                    },
                    LimitKind::DocNodes,
                ),
                (
                    Limits {
                        max_depth: Some(depth - 1),
                        ..Limits::UNLIMITED
                    },
                    LimitKind::NestingDepth,
                ),
            ] {
                let err = Session::with_limits(&spec, limits)
                    .open_source(&source)
                    .expect_err("one below the measured cost must reject");
                let SessionError::Resource(r) = err else {
                    panic!("{family}: expected a resource rejection, got {err}");
                };
                assert_eq!(r.limit, kind, "{family}: wrong limit named");

                let err = CorpusSession::with_limits(&spec, limits)
                    .open_source(family, &source)
                    .expect_err("one below the measured cost must reject");
                let SessionError::Resource(r) = err else {
                    panic!("{family}: expected a resource rejection, got {err}");
                };
                assert_eq!(r.limit, kind, "{family}: wrong limit named");
            }
            probed += 1;
        }
    }
    assert!(
        probed >= 5,
        "the workload families must actually probe boundaries (probed {probed})"
    );
}

/// Random unary constraint sets don't change admission: limits meter the
/// document, not the specification.
#[test]
fn constraints_do_not_perturb_admission_boundaries() {
    let dtd = random_dtd(&DtdGenConfig {
        seed: 7,
        num_types: 6,
        ..Default::default()
    });
    let sigma = random_unary_constraints(
        &dtd,
        &ConstraintGenConfig {
            keys: 2,
            foreign_keys: 2,
            seed: 7,
            ..Default::default()
        },
    );
    let Ok(spec) = CompiledSpec::compile(dtd, sigma) else {
        return;
    };
    let Some(tree) = random_document(
        spec.dtd(),
        &DocGenConfig {
            seed: 7,
            max_elements: 16,
            value_pool: 3,
            ..Default::default()
        },
    ) else {
        return;
    };
    let source = write_document(&tree, spec.dtd());
    let nodes = tree.num_nodes();
    Session::with_limits(
        &spec,
        Limits {
            max_doc_nodes: Some(nodes),
            ..Limits::UNLIMITED
        },
    )
    .open_source(&source)
    .expect("the node boundary is the document's, not the spec's");
    let err = Session::with_limits(
        &spec,
        Limits {
            max_doc_nodes: Some(nodes - 1),
            ..Limits::UNLIMITED
        },
    )
    .open_source(&source)
    .expect_err("one node below must reject regardless of Σ");
    assert!(
        matches!(err, SessionError::Resource(ref r) if r.limit == LimitKind::DocNodes),
        "expected a DocNodes rejection, got {err}"
    );
}

/// Corpus dirty-document backpressure is exact: `max_dirty_docs` admits
/// exactly that many opens, and the next one is shed with a structured
/// rejection pointing at the commit that would drain the set.
#[test]
fn corpus_dirty_doc_backpressure_is_exact() {
    let spec = school_spec();
    let cap = 3usize;
    let mut corpus = CorpusSession::with_limits(
        &spec,
        Limits {
            max_dirty_docs: Some(cap),
            ..Limits::UNLIMITED
        },
    );
    for i in 0..cap {
        corpus
            .open_source(format!("doc-{i}"), "<school/>")
            .expect("opens up to the cap are admitted");
    }
    let err = corpus
        .open_source("doc-overflow", "<school/>")
        .expect_err("the open past the cap is shed");
    let SessionError::Resource(r) = err else {
        panic!("expected a structured resource rejection, got {err}");
    };
    assert_eq!(r.limit, LimitKind::DirtyDocs);
    assert_eq!(r.limit_value, cap as u64);
    assert_eq!(r.observed, (cap + 1) as u64);

    // Committing drains the dirty set; the shed document is admitted on retry.
    corpus
        .try_commit()
        .expect("an unlimited-deadline commit runs");
    corpus
        .open_source("doc-overflow", "<school/>")
        .expect("after the commit drains the set, the retry is admitted");
}
