//! Differential testing of the Session API's incremental re-validation
//! against from-scratch `DocIndex` rebuilds.
//!
//! The contract of `xic_engine::Session` is *witness identity*: after every
//! prefix of an arbitrary edit sequence, the incremental verdict must equal
//! what a fresh `DocIndex` build over the edited tree reports — the same
//! violations in the same order with the same witness nodes and values (so
//! clash witnesses too, not just the boolean).  The edits themselves are
//! generated adaptively against the evolving document: attribute rewrites
//! (including no-op rewrites), element and text insertions under random live
//! parents, and subtree removals.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xml_integrity_constraints::constraints::{DocIndex, IndexPlan};
use xml_integrity_constraints::engine::{CompiledSpec, Session};
use xml_integrity_constraints::gen::{
    fixed_dtd_growing_sigma, keys_only_family, primary_key_family, random_document, random_dtd,
    random_unary_constraints, ConstraintGenConfig, DocGenConfig, DtdGenConfig,
};
use xml_integrity_constraints::xml::{EditOp, NodeId, XmlTree};

/// Picks the next edit against the current document state: every op is
/// valid by construction (live nodes, non-root removals).
fn random_op(
    rng: &mut StdRng,
    dtd: &xml_integrity_constraints::dtd::Dtd,
    tree: &XmlTree,
) -> EditOp {
    let elements: Vec<NodeId> = tree.elements().collect();
    let pick = |rng: &mut StdRng, nodes: &[NodeId]| nodes[rng.gen_range(0..nodes.len())];
    // Attribute edits dominate (they are the constraint-relevant edits);
    // small value pools force clashes and dangling references both to appear
    // and to disappear again.
    for _ in 0..8 {
        match rng.gen_range(0u32..10) {
            0..=4 => {
                let candidates: Vec<NodeId> = elements
                    .iter()
                    .copied()
                    .filter(|&n| {
                        tree.element_type(n)
                            .is_some_and(|ty| !dtd.attrs_of(ty).is_empty())
                    })
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let element = pick(rng, &candidates);
                let ty = tree.element_type(element).unwrap();
                let attrs = dtd.attrs_of(ty);
                let attr = attrs[rng.gen_range(0..attrs.len())];
                return EditOp::SetAttr {
                    element,
                    attr,
                    value: format!("val{}", rng.gen_range(0..4u32)),
                };
            }
            5..=6 => {
                let types: Vec<_> = dtd.types().collect();
                return EditOp::AddElement {
                    parent: pick(rng, &elements),
                    ty: types[rng.gen_range(0..types.len())],
                };
            }
            7 => {
                return EditOp::AddText {
                    parent: pick(rng, &elements),
                    value: format!("text{}", rng.gen_range(0..100u32)),
                };
            }
            _ => {
                let removable: Vec<NodeId> = elements
                    .iter()
                    .copied()
                    .filter(|&n| n != tree.root())
                    .collect();
                if removable.is_empty() {
                    continue;
                }
                return EditOp::RemoveSubtree {
                    element: pick(rng, &removable),
                };
            }
        }
    }
    // Degenerate document (a bare root with no attributes): grow it.
    let types: Vec<_> = dtd.types().collect();
    EditOp::AddElement {
        parent: tree.root(),
        ty: types[0],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After every prefix of a random edit sequence, the session verdict is
    /// witness-identical to a from-scratch DocIndex rebuild.
    #[test]
    fn session_agrees_with_rebuild_after_every_edit(
        seed in 0u64..400,
        types in 2usize..7,
        keys in 0usize..4,
        fks in 0usize..4,
        inclusions in 0usize..3,
        neg_keys in 0usize..2,
        neg_inclusions in 0usize..2,
        edits in 1usize..40,
    ) {
        let dtd = random_dtd(&DtdGenConfig { seed, num_types: types, ..Default::default() });
        let sigma = random_unary_constraints(
            &dtd,
            &ConstraintGenConfig {
                keys,
                foreign_keys: fks,
                inclusions,
                negated_keys: neg_keys,
                negated_inclusions: neg_inclusions,
                seed,
                ..Default::default()
            },
        );
        let Some(tree) = random_document(
            &dtd,
            &DocGenConfig { seed, value_pool: 3, ..Default::default() },
        ) else {
            return Ok(()); // unsatisfiable DTD: nothing to edit
        };
        let spec = match CompiledSpec::compile(dtd, sigma) {
            Ok(spec) => spec,
            // Ψ(D,Σ) construction can reject exotic generated specs; the
            // session needs only (D, Σ), so skip those instances.
            Err(_) => return Ok(()),
        };
        let plan = IndexPlan::for_set(spec.sigma());

        let mut session = Session::new(&spec);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9));
        let doc = session.open(tree);

        // The opening verdict must already agree.
        let verdict = session.verdict(doc).unwrap();
        let rebuilt = DocIndex::build(spec.dtd(), session.tree(doc).unwrap(), &plan)
            .check_all(spec.sigma());
        prop_assert_eq!(verdict.violations(), rebuilt.as_slice());

        for step in 0..edits {
            let op = random_op(&mut rng, spec.dtd(), session.tree(doc).unwrap());
            let verdict = session.apply(doc, std::slice::from_ref(&op)).unwrap();
            let tree = session.tree(doc).unwrap();
            let rebuilt = DocIndex::build(spec.dtd(), tree, &plan).check_all(spec.sigma());
            prop_assert_eq!(
                verdict.violations(),
                rebuilt.as_slice(),
                "diverged at step {} after {:?}",
                step,
                op
            );
            // The incremental path only recomputes touched constraints.
            prop_assert!(verdict.rechecked() <= spec.sigma().len());
        }

        // The journal recorded every edit, and closing returns the edited
        // tree with verdicts still reproducible from scratch.
        prop_assert_eq!(session.journal(doc).unwrap().len(), edits);
        let tree = session.close(doc).unwrap();
        let rebuilt = DocIndex::build(spec.dtd(), &tree, &plan).check_all(spec.sigma());
        let mut reopened = Session::new(&spec);
        let doc = reopened.open(tree);
        let verdict = reopened.verdict(doc).unwrap();
        prop_assert_eq!(verdict.violations(), rebuilt.as_slice());
    }
}

/// The named `xic-gen` workload families drive the single-document
/// differential too, so the agreement suite covers generated DTD/Σ shapes
/// (primary-key-restricted, keys-only, fixed DTD under growing Σ) beyond
/// the uniform random sampler above.
#[test]
fn workload_families_agree_with_rebuild_after_every_edit() {
    let instances = primary_key_family(&[4, 6], 21)
        .into_iter()
        .chain(keys_only_family(&[4, 6], 22))
        .chain(fixed_dtd_growing_sigma(5, &[4, 8], 23));
    let mut driven = 0usize;
    for instance in instances {
        let label = instance.label.clone();
        let spec = match CompiledSpec::compile(instance.dtd, instance.sigma) {
            Ok(spec) => spec,
            Err(_) => continue, // Ψ(D,Σ) rejected the instance
        };
        let plan = IndexPlan::for_set(spec.sigma());
        let Some(tree) = random_document(
            spec.dtd(),
            &DocGenConfig {
                seed: 29,
                value_pool: 3,
                ..Default::default()
            },
        ) else {
            continue;
        };
        let mut session = Session::new(&spec);
        let doc = session.open(tree);
        let mut rng = StdRng::seed_from_u64(0xfeed ^ driven as u64);
        for step in 0..24 {
            let op = random_op(&mut rng, spec.dtd(), session.tree(doc).unwrap());
            let verdict = session.apply(doc, std::slice::from_ref(&op)).unwrap();
            let rebuilt = DocIndex::build(spec.dtd(), session.tree(doc).unwrap(), &plan)
                .check_all(spec.sigma());
            assert_eq!(
                verdict.violations(),
                rebuilt.as_slice(),
                "{label}: diverged at step {step} after {op:?}"
            );
        }
        driven += 1;
    }
    assert!(
        driven >= 4,
        "the workload families must actually exercise the differential (drove {driven})"
    );
}
