//! Edge cases of the edit layer, driven through the Session API:
//! close/re-open with journal replay, tombstoned-subtree reads after
//! `RemoveSubtree`, and every `EditError` variant surfacing through
//! `Session::apply`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xml_integrity_constraints::engine::{CompiledSpec, Session, SessionError};
use xml_integrity_constraints::xml::{write_document, EditError, EditOp, NodeId};

fn school_spec() -> CompiledSpec {
    CompiledSpec::from_sources(
        "<!ELEMENT school (teacher*)>\n\
         <!ELEMENT teacher (note*)>\n\
         <!ELEMENT note (#PCDATA)>\n\
         <!ATTLIST teacher name CDATA #REQUIRED>\n\
         <!ATTLIST teacher dept CDATA #IMPLIED>",
        Some("school"),
        "teacher.name -> teacher",
    )
    .unwrap()
}

/// Close → re-open with journal replay: applying the journaled ops, in
/// order, to a copy of the pristine tree reproduces the edited document
/// node-for-node (the arena allocates deterministically), and the replayed
/// session's verdict — witnesses included — matches the original's.
#[test]
fn journal_replay_reproduces_the_edited_document() {
    let spec = school_spec();
    let dtd = spec.dtd();
    let teacher = dtd.type_by_name("teacher").unwrap();
    let note = dtd.type_by_name("note").unwrap();
    let name = dtd.attr_by_name("name").unwrap();
    let dept = dtd.attr_by_name("dept").unwrap();

    let pristine = spec
        .parse_document(
            "<school><teacher name=\"Joe\"/><teacher name=\"Ann\"><note>hi</note></teacher></school>",
        )
        .unwrap();

    // A mixed random edit history: adds, attribute writes (some displacing,
    // some fresh), text, and removals.
    let mut session = Session::new(&spec);
    let doc = session.open(pristine.clone());
    let mut rng = StdRng::seed_from_u64(42);
    for step in 0..40 {
        let tree = session.tree(doc).unwrap();
        let elements: Vec<NodeId> = tree.elements().collect();
        let pick = elements[rng.gen_range(0..elements.len())];
        let op = match rng.gen_range(0u32..8) {
            0..=2 => {
                let candidates: Vec<NodeId> = elements
                    .iter()
                    .copied()
                    .filter(|&n| tree.element_type(n) == Some(teacher))
                    .collect();
                if candidates.is_empty() {
                    EditOp::AddElement {
                        parent: tree.root(),
                        ty: teacher,
                    }
                } else {
                    let element = candidates[rng.gen_range(0..candidates.len())];
                    let attr = if rng.gen_bool(0.7) { name } else { dept };
                    EditOp::SetAttr {
                        element,
                        attr,
                        value: format!("v{}", rng.gen_range(0..3u32)),
                    }
                }
            }
            3..=4 => EditOp::AddElement {
                parent: tree.root(),
                ty: teacher,
            },
            5 => {
                let parents: Vec<NodeId> = elements
                    .iter()
                    .copied()
                    .filter(|&n| tree.element_type(n) == Some(teacher))
                    .collect();
                match parents.first() {
                    Some(&p) => EditOp::AddElement {
                        parent: p,
                        ty: note,
                    },
                    None => EditOp::AddText {
                        parent: tree.root(),
                        value: format!("t{step}"),
                    },
                }
            }
            6 => EditOp::AddText {
                parent: pick,
                value: format!("t{step}"),
            },
            _ => {
                let removable: Vec<NodeId> = elements
                    .iter()
                    .copied()
                    .filter(|&n| n != tree.root())
                    .collect();
                match removable.first() {
                    Some(&r) => EditOp::RemoveSubtree { element: r },
                    None => EditOp::AddElement {
                        parent: tree.root(),
                        ty: teacher,
                    },
                }
            }
        };
        session.apply(doc, std::slice::from_ref(&op)).unwrap();
    }

    let final_verdict = session.verdict(doc).unwrap();
    let journal = session.journal(doc).unwrap().clone();
    assert_eq!(journal.len(), 40);
    let edited = session.close(doc).unwrap();

    // Replay the ops onto the pristine copy in a fresh session.
    let mut replayed = Session::new(&spec);
    let doc = replayed.open(pristine);
    for op in journal.ops() {
        replayed.apply(doc, std::slice::from_ref(op)).unwrap();
    }
    let replay_verdict = replayed.verdict(doc).unwrap();
    assert_eq!(replay_verdict.violations(), final_verdict.violations());
    assert_eq!(replay_verdict.edits_applied(), 40);
    // The replayed journal's effects match the original's (same displaced
    // values, same removed-element lists), so a replica applying the log
    // reaches the same state by the same deltas.
    assert_eq!(replayed.journal(doc).unwrap().entries(), journal.entries());
    let replica = replayed.close(doc).unwrap();
    assert_eq!(replica.num_nodes(), edited.num_nodes());
    assert_eq!(
        write_document(&replica, spec.dtd()),
        write_document(&edited, spec.dtd())
    );
}

/// Tombstoned subtrees stay readable after `RemoveSubtree` — the retraction
/// contract the incremental index depends on — while every live-view
/// accessor excludes them.
#[test]
fn tombstoned_subtree_values_stay_readable() {
    let spec = school_spec();
    let dtd = spec.dtd();
    let teacher = dtd.type_by_name("teacher").unwrap();
    let name = dtd.attr_by_name("name").unwrap();

    let mut session = Session::new(&spec);
    let doc = session
        .open_source(
            "<school><teacher name=\"Joe\"><note>keep me</note></teacher>\
             <teacher name=\"Ann\"/></school>",
        )
        .unwrap();
    let tree = session.tree(doc).unwrap();
    let joe = tree.ext(teacher).next().unwrap();
    let joe_note = tree
        .children(joe)
        .iter()
        .copied()
        .find(|&n| tree.element_type(n).is_some())
        .unwrap();
    let note_text = tree.children(joe_note)[0];

    session
        .apply(doc, &[EditOp::RemoveSubtree { element: joe }])
        .unwrap();
    let tree = session.tree(doc).unwrap();

    // The whole removed subtree is detached but its values are tombstoned,
    // not erased: attribute and text reads still resolve.
    for node in [joe, joe_note, note_text] {
        assert!(tree.contains(node));
        assert!(tree.is_detached(node));
    }
    assert_eq!(tree.attr_value(joe, name), Some("Joe"));
    assert_eq!(tree.value(note_text), Some("keep me"));

    // Live views exclude the tombstones…
    assert_eq!(tree.ext_count(teacher), 1);
    assert!(tree.elements().all(|n| n != joe && n != joe_note));
    // …and the verdict matches: Ann is the only teacher left.
    assert!(session.verdict(doc).unwrap().is_clean());
}

/// Every [`EditError`] variant surfaces through `Session::apply`, wrapped
/// in a [`SessionError::Edit`] that reports the applied prefix.
#[test]
fn every_edit_error_variant_surfaces_through_apply() {
    let spec = school_spec();
    let dtd = spec.dtd();
    let teacher = dtd.type_by_name("teacher").unwrap();
    let name = dtd.attr_by_name("name").unwrap();

    let mut session = Session::new(&spec);
    let doc = session
        .open_source("<school><teacher name=\"Joe\"><note>x</note></teacher></school>")
        .unwrap();
    let tree = session.tree(doc).unwrap();
    let root = tree.root();
    let joe = tree.ext(teacher).next().unwrap();
    let note_el = tree
        .children(joe)
        .iter()
        .copied()
        .find(|&n| tree.element_type(n).is_some())
        .unwrap();
    let text_node = tree.children(note_el)[0];
    let bogus = NodeId(u32::MAX);

    // UnknownNode: the arena has never seen this id.
    let err = session
        .apply(
            doc,
            &[EditOp::SetAttr {
                element: bogus,
                attr: name,
                value: "X".into(),
            }],
        )
        .unwrap_err();
    assert_eq!(
        err,
        SessionError::Edit {
            index: 0,
            error: EditError::UnknownNode(bogus)
        }
    );

    // NotAnElement: text nodes take no attributes, children or removals.
    for op in [
        EditOp::SetAttr {
            element: text_node,
            attr: name,
            value: "X".into(),
        },
        EditOp::AddElement {
            parent: text_node,
            ty: teacher,
        },
        EditOp::AddText {
            parent: text_node,
            value: "y".into(),
        },
        EditOp::RemoveSubtree { element: text_node },
    ] {
        let err = session.apply(doc, std::slice::from_ref(&op)).unwrap_err();
        assert_eq!(
            err,
            SessionError::Edit {
                index: 0,
                error: EditError::NotAnElement(text_node)
            },
            "{op:?}"
        );
    }

    // RemoveRoot, reported mid-batch with the applied prefix count.
    let err = session
        .apply(
            doc,
            &[
                EditOp::AddElement {
                    parent: root,
                    ty: teacher,
                },
                EditOp::RemoveSubtree { element: root },
            ],
        )
        .unwrap_err();
    assert_eq!(
        err,
        SessionError::Edit {
            index: 1,
            error: EditError::RemoveRoot
        }
    );
    assert_eq!(err.to_string(), "edit op #1 rejected (the document root cannot be removed); the 1 earlier ops of the batch were applied");

    // Detached: any edit aimed at a tombstone.
    session
        .apply(doc, &[EditOp::RemoveSubtree { element: joe }])
        .unwrap();
    for op in [
        EditOp::SetAttr {
            element: joe,
            attr: name,
            value: "X".into(),
        },
        EditOp::AddElement {
            parent: joe,
            ty: teacher,
        },
        EditOp::RemoveSubtree { element: joe },
    ] {
        let err = session.apply(doc, std::slice::from_ref(&op)).unwrap_err();
        assert_eq!(
            err,
            SessionError::Edit {
                index: 0,
                error: EditError::Detached(joe)
            },
            "{op:?}"
        );
    }

    // UnknownHandle rounds out the session-level errors.
    let tree = session.close(doc).unwrap();
    drop(tree);
    assert_eq!(
        session.apply(doc, &[]),
        Err(SessionError::UnknownHandle(doc))
    );

    // The journal on a fresh document records only *applied* ops: rejected
    // ones never enter the log.
    let doc = session
        .open_source("<school><teacher name=\"Joe\"/></school>")
        .unwrap();
    let root = session.tree(doc).unwrap().root();
    let _ = session
        .apply(
            doc,
            &[
                EditOp::AddElement {
                    parent: root,
                    ty: teacher,
                },
                EditOp::RemoveSubtree { element: root },
            ],
        )
        .unwrap_err();
    assert_eq!(session.journal(doc).unwrap().len(), 1);
}
