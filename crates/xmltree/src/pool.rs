//! Interned string values.
//!
//! The constraint language of the paper compares attribute and text values
//! only by string equality (Section 2.2: "string value equality"), so the
//! tree never needs to *operate* on value characters — it only needs a
//! symbol that two equal strings share.  A [`ValuePool`] interns each
//! distinct string once and hands out dense `u32` [`ValueId`]s; the tree
//! stores ids, and key / inclusion checking becomes hashing and comparing
//! integer tuples instead of heap-allocated string vectors.
//!
//! Pools are append-only: interning never invalidates previously issued ids,
//! which is what lets one pool be threaded through a whole batch of
//! documents (see `xic-engine`'s `BatchEngine`) so repeated values across a
//! corpus are allocated exactly once.

use std::collections::HashMap;
use std::sync::Arc;

/// Identifier of an interned string within a [`ValuePool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ValueId(pub u32);

impl ValueId {
    /// Index into the pool's value table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An append-only string interner: each distinct string is stored once and
/// addressed by a dense [`ValueId`].
///
/// The backing storage is `Arc<str>` so the lookup table and the id table
/// share one allocation per distinct string.
#[derive(Debug, Clone, Default)]
pub struct ValuePool {
    values: Vec<Arc<str>>,
    lookup: HashMap<Arc<str>, ValueId>,
}

impl ValuePool {
    /// An empty pool.
    pub fn new() -> ValuePool {
        ValuePool::default()
    }

    /// Interns a string, returning the id it already has or a fresh one.
    pub fn intern(&mut self, value: &str) -> ValueId {
        if let Some(&id) = self.lookup.get(value) {
            return id;
        }
        let id = ValueId(self.values.len() as u32);
        let stored: Arc<str> = Arc::from(value);
        self.values.push(Arc::clone(&stored));
        self.lookup.insert(stored, id);
        id
    }

    /// The id of an already-interned string, if any (no insertion).
    pub fn get(&self, value: &str) -> Option<ValueId> {
        self.lookup.get(value).copied()
    }

    /// A fork of this pool: an independent pool whose backing `Arc<str>`
    /// allocations — and the id assignment of everything interned so far —
    /// are **shared** with this one.  Forks may then diverge (interning into
    /// either side never disturbs the other), but values of the common
    /// prefix keep one allocation and one id everywhere.
    ///
    /// This is how a corpus-scale session gives every open document a warm
    /// interner without copying a single string: the corpus keeps a master
    /// pool, forks it into each opened tree, and re-forks the grown pool
    /// back (see `xic-engine`'s `CorpusSession`).
    pub fn fork(&self) -> ValuePool {
        self.clone()
    }

    /// Interns every value of `other` into this pool (ids in `other` are
    /// *not* remapped — this warms the receiving interner, it does not
    /// translate symbols).  The backing `Arc<str>` allocations are shared,
    /// not copied.  Used when a document carrying its own pool joins a
    /// corpus: the corpus's master pool absorbs the newcomer's values so
    /// later opens and edits share their allocations.
    pub fn absorb(&mut self, other: &ValuePool) {
        for stored in &other.values {
            if self.lookup.contains_key(stored.as_ref()) {
                continue;
            }
            let id = ValueId(self.values.len() as u32);
            self.values.push(Arc::clone(stored));
            self.lookup.insert(Arc::clone(stored), id);
        }
    }

    /// The string an id stands for.
    ///
    /// # Panics
    /// Panics if the id was issued by a different (or later state of a) pool
    /// and is out of range.
    pub fn resolve(&self, id: ValueId) -> &str {
        &self.values[id.index()]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(id, value)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (ValueId, &str)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (ValueId(i as u32), v.as_ref()))
    }
}

impl PartialEq for ValuePool {
    fn eq(&self, other: &ValuePool) -> bool {
        self.values == other.values
    }
}

impl Eq for ValuePool {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_resolve_reintern_is_identity() {
        let mut pool = ValuePool::new();
        for value in ["Joe", "", "Joe", "Sue", "val0", "", "val0"] {
            let id = pool.intern(value);
            let resolved = pool.resolve(id).to_string();
            assert_eq!(resolved, value);
            assert_eq!(pool.intern(&resolved), id, "re-interning {value:?}");
        }
    }

    #[test]
    fn duplicates_share_one_id() {
        let mut pool = ValuePool::new();
        let a = pool.intern("x");
        let b = pool.intern("y");
        let c = pool.intern("x");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn empty_string_is_a_value_like_any_other() {
        let mut pool = ValuePool::new();
        assert!(pool.is_empty());
        let id = pool.intern("");
        assert_eq!(pool.resolve(id), "");
        assert_eq!(pool.get(""), Some(id));
        assert_eq!(pool.len(), 1);
        assert!(!pool.is_empty());
    }

    #[test]
    fn get_does_not_insert() {
        let mut pool = ValuePool::new();
        assert_eq!(pool.get("missing"), None);
        assert_eq!(pool.len(), 0);
        pool.intern("present");
        assert_eq!(pool.get("missing"), None);
        assert!(pool.get("present").is_some());
    }

    #[test]
    fn fork_shares_prefix_ids_and_diverges_independently() {
        let mut master = ValuePool::new();
        let joe = master.intern("Joe");
        let ann = master.intern("Ann");

        let mut doc_a = master.fork();
        let mut doc_b = master.fork();
        // The common prefix keeps one id assignment everywhere…
        assert_eq!(doc_a.get("Joe"), Some(joe));
        assert_eq!(doc_b.get("Ann"), Some(ann));
        // …and one allocation: the forked Arc points at the same string.
        assert_eq!(doc_a.resolve(joe).as_ptr(), master.resolve(joe).as_ptr());

        // Divergence is invisible across forks.
        let sue_a = doc_a.intern("Sue");
        let bob_b = doc_b.intern("Bob");
        assert_eq!(sue_a, bob_b, "suffix ids are per-fork");
        assert_eq!(doc_a.get("Bob"), None);
        assert_eq!(doc_b.get("Sue"), None);
        assert_eq!(master.len(), 2);
    }

    #[test]
    fn absorb_warms_without_remapping_and_shares_allocations() {
        let mut master = ValuePool::new();
        master.intern("shared");
        let mut doc = ValuePool::new();
        let doc_shared = doc.intern("shared");
        doc.intern("private");

        master.absorb(&doc);
        assert_eq!(master.len(), 2);
        // The absorbed string shares the newcomer's allocation…
        assert_eq!(
            master.resolve(master.get("private").unwrap()).as_ptr(),
            doc.resolve(doc.get("private").unwrap()).as_ptr()
        );
        // …and absorbing never disturbs existing id assignments.
        assert_eq!(doc.get("shared"), Some(doc_shared));
        assert_eq!(master.get("shared"), Some(ValueId(0)));
        // Idempotent.
        master.absorb(&doc);
        assert_eq!(master.len(), 2);
    }

    #[test]
    fn ids_are_dense_and_ordered_by_first_occurrence() {
        let mut pool = ValuePool::new();
        let ids: Vec<ValueId> = ["a", "b", "a", "c"]
            .iter()
            .map(|v| pool.intern(v))
            .collect();
        assert_eq!(ids, vec![ValueId(0), ValueId(1), ValueId(0), ValueId(2)]);
        let collected: Vec<(ValueId, String)> =
            pool.iter().map(|(i, v)| (i, v.to_string())).collect();
        assert_eq!(
            collected,
            vec![
                (ValueId(0), "a".to_string()),
                (ValueId(1), "b".to_string()),
                (ValueId(2), "c".to_string()),
            ]
        );
    }
}
