//! # xic-xml — the XML tree model, parser, serializer and validator
//!
//! Implements Definition 2.2 of Fan & Libkin: node-labelled XML trees
//! `T = (V, lab, ele, att, val, root)` over a DTD's element types and
//! attributes, together with the surrounding machinery a user of the
//! reproduction needs:
//!
//! * [`tree::XmlTree`] — an arena-based tree with the paper's `ext(τ)` /
//!   `ext(τ.l)` / `x[X]` accessors;
//! * [`pool::ValuePool`] — the string interner behind the tree: attribute
//!   and text values are stored as dense [`pool::ValueId`] symbols, so the
//!   string-value equality of Section 2.2 is integer equality;
//! * [`edit`] — typed point edits ([`edit::EditOp`]) applied through
//!   [`tree::XmlTree::apply_edit`], which returns delta records
//!   ([`edit::EditEffect`]) that incremental indexes consume; sessions keep
//!   them in an [`edit::EditJournal`];
//! * [`snapshot`] — slot-for-slot arena snapshots ([`snapshot::TreeSnapshot`])
//!   that rebuild a tree id-exactly ([`tree::XmlTree::from_snapshot`]), the
//!   serialization hook durable edit journals persist base documents with;
//! * [`parser::parse_document`] / [`writer::write_document`] — a DTD-aware
//!   XML parser and serializer (from scratch, no external XML crates);
//! * [`mod@validate`] — the `T ⊨ D` validity test of Definition 2.2, with
//!   detailed per-node error reporting.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod budget;
pub mod edit;
pub mod error;
pub mod parser;
pub mod pool;
pub mod snapshot;
pub mod tree;
pub mod validate;
pub mod writer;

pub use budget::{BudgetExceeded, ParseBudget, ParseError, ParseLimit};
pub use edit::{EditEffect, EditError, EditJournal, EditOp};
pub use error::XmlError;
pub use parser::{parse_document, parse_document_budgeted, parse_document_pooled};
pub use pool::{ValueId, ValuePool};
pub use snapshot::{NodeSnapshot, SnapshotError, TreeSnapshot};
pub use tree::{NodeId, NodeLabel, XmlTree};
pub use validate::{compile_automata, is_valid, validate, ValidationError, Validator};
pub use writer::{write_document, write_document_with, WriteOptions};
