//! # xic-xml — the XML tree model, parser, serializer and validator
//!
//! Implements Definition 2.2 of Fan & Libkin: node-labelled XML trees
//! `T = (V, lab, ele, att, val, root)` over a DTD's element types and
//! attributes, together with the surrounding machinery a user of the
//! reproduction needs:
//!
//! * [`tree::XmlTree`] — an arena-based tree with the paper's `ext(τ)` /
//!   `ext(τ.l)` / `x[X]` accessors;
//! * [`parser::parse_document`] / [`writer::write_document`] — a DTD-aware
//!   XML parser and serializer (from scratch, no external XML crates);
//! * [`validate`] — the `T ⊨ D` validity test of Definition 2.2, with
//!   detailed per-node error reporting.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod parser;
pub mod tree;
pub mod validate;
pub mod writer;

pub use error::XmlError;
pub use parser::parse_document;
pub use tree::{NodeId, NodeLabel, XmlTree};
pub use validate::{compile_automata, is_valid, validate, ValidationError, Validator};
pub use writer::{write_document, write_document_with, WriteOptions};
