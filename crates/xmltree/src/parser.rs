//! A small XML document parser producing [`XmlTree`] values.
//!
//! The parser covers the fragment of XML corresponding to the paper's data
//! model: elements, single-valued string attributes, text content, comments
//! and processing-instruction/XML-declaration skipping.  Namespaces, CDATA
//! sections, entity definitions and references (beyond the five predefined
//! ones) are out of scope.  Element and attribute names are resolved against
//! a [`Dtd`] so the resulting tree is directly usable by the validator and
//! the constraint checker.

use std::sync::{Arc, OnceLock};

use xic_dtd::Dtd;
use xic_telemetry::{Counter, Histogram};

use crate::budget::{BudgetExceeded, ParseBudget, ParseError, ParseLimit};
use crate::error::XmlError;
use crate::pool::ValuePool;
use crate::tree::{NodeId, XmlTree};

/// Process-wide parse instruments, resolved once (registry name lookups
/// take a read lock; the hot path should not).
fn instruments() -> &'static (Arc<Counter>, Arc<Histogram>) {
    static INSTRUMENTS: OnceLock<(Arc<Counter>, Arc<Histogram>)> = OnceLock::new();
    INSTRUMENTS.get_or_init(|| {
        let telemetry = xic_telemetry::global();
        (
            telemetry.counter("parse.docs"),
            telemetry.histogram("parse.doc_ns"),
        )
    })
}

/// Parses an XML document against a DTD.
///
/// Whitespace-only text between elements is discarded (it is never
/// meaningful in the paper's model); all other text is kept verbatim after
/// entity expansion.
pub fn parse_document(input: &str, dtd: &Dtd) -> Result<XmlTree, XmlError> {
    parse_document_pooled(input, dtd, ValuePool::new()).map_err(|(err, _)| err)
}

/// Parses a document interning its values into an existing pool.
///
/// The pool is moved into the resulting tree (recover it with
/// [`XmlTree::into_pool`]); on a parse error it is handed back alongside the
/// error so a caller looping over a corpus never loses its warm interner.
pub fn parse_document_pooled(
    input: &str,
    dtd: &Dtd,
    pool: ValuePool,
) -> Result<XmlTree, (XmlError, ValuePool)> {
    parse_document_budgeted(input, dtd, pool, &ParseBudget::UNLIMITED).map_err(|(err, pool)| {
        match err {
            ParseError::Xml(e) => (e, pool),
            // Statically dead: an unlimited budget never trips.  Mapped to
            // a syntax error rather than a panic so the contract "parsing
            // never panics" holds unconditionally.
            ParseError::Budget(b) => (
                XmlError::Syntax {
                    offset: 0,
                    message: b.to_string(),
                },
                pool,
            ),
        }
    })
}

/// Parses a document under a [`ParseBudget`]: input size is checked before
/// parsing, node count and nesting depth as the tree grows, so a hostile
/// document costs at most its budget before rejection.
///
/// On failure the pool is handed back alongside the structured
/// [`ParseError`], exactly like [`parse_document_pooled`].
pub fn parse_document_budgeted(
    input: &str,
    dtd: &Dtd,
    pool: ValuePool,
    budget: &ParseBudget,
) -> Result<XmlTree, (ParseError, ValuePool)> {
    let (docs, doc_ns) = instruments();
    let timer = xic_telemetry::global().start_timer();
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
        dtd,
        budget,
    };
    let parsed = (|| {
        if let Some(max) = budget.max_bytes {
            if input.len() > max {
                return Err((
                    BudgetExceeded {
                        limit: ParseLimit::Bytes,
                        limit_value: max,
                        observed: input.len(),
                    }
                    .into(),
                    pool,
                ));
            }
        }
        if let Err(err) = p.skip_prolog() {
            return Err((err.into(), pool));
        }
        let tree = p.parse_root(pool)?;
        p.skip_misc();
        if !p.eof() {
            return Err((
                p.error("trailing content after the root element").into(),
                tree.into_pool(),
            ));
        }
        Ok(tree)
    })();
    docs.inc();
    if let Some(t) = timer {
        doc_ns.record_elapsed(t);
    }
    parsed
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    dtd: &'a Dtd,
    budget: &'a ParseBudget,
}

impl<'a> Parser<'a> {
    fn eof(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn error(&self, message: &str) -> XmlError {
        XmlError::Syntax {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b) if (b as char).is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn skip_until(&mut self, needle: &str) -> Result<(), XmlError> {
        match find(self.input, self.pos, needle.as_bytes()) {
            Some(end) => {
                self.pos = end + needle.len();
                Ok(())
            }
            None => Err(self.error(&format!("unterminated construct, expected `{needle}`"))),
        }
    }

    /// Skips the XML declaration, DOCTYPE, comments and PIs before the root.
    fn skip_prolog(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<!DOCTYPE") {
                // Skip a possibly-bracketed internal subset.
                let mut depth = 0usize;
                while let Some(b) = self.peek() {
                    self.pos += 1;
                    match b {
                        b'[' => depth += 1,
                        b']' => depth = depth.saturating_sub(1),
                        b'>' if depth == 0 => break,
                        _ => {}
                    }
                }
            } else {
                return Ok(());
            }
        }
    }

    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                if self.skip_until("-->").is_err() {
                    return;
                }
            } else if self.starts_with("<?") {
                if self.skip_until("?>").is_err() {
                    return;
                }
            } else {
                return;
            }
        }
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b) if (b as char).is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.' || b == b':')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn parse_root(&mut self, pool: ValuePool) -> Result<XmlTree, (ParseError, ValuePool)> {
        self.skip_ws();
        if self.peek() != Some(b'<') {
            return Err((self.error("expected the root element").into(), pool));
        }
        self.pos += 1;
        let name = match self.name() {
            Ok(name) => name,
            Err(err) => return Err((err.into(), pool)),
        };
        let Some(ty) = self.dtd.type_by_name(&name) else {
            return Err((XmlError::UnknownElement(name).into(), pool));
        };
        if let Err(err) = self.check_depth(1) {
            return Err((err.into(), pool));
        }
        let mut tree = XmlTree::with_pool(ty, pool);
        let root = tree.root();
        let body = self
            .check_nodes(&tree)
            .map_err(ParseError::from)
            .and_then(|()| {
                self.parse_attributes(&mut tree, root, &name)
                    .map_err(ParseError::from)
            })
            .and_then(|self_closing| {
                // Attributes are arena nodes too; re-check after parsing them.
                self.check_nodes(&tree)?;
                if self_closing {
                    Ok(())
                } else {
                    self.parse_children(&mut tree, root, name)
                }
            });
        match body {
            Ok(()) => Ok(tree),
            Err(err) => Err((err, tree.into_pool())),
        }
    }

    /// Budget check: element nesting depth (the root element is depth 1).
    fn check_depth(&self, depth: usize) -> Result<(), BudgetExceeded> {
        match self.budget.max_depth {
            Some(max) if depth > max => Err(BudgetExceeded {
                limit: ParseLimit::Depth,
                limit_value: max,
                observed: depth,
            }),
            _ => Ok(()),
        }
    }

    /// Budget check: live tree nodes, called after every node creation.
    fn check_nodes(&self, tree: &XmlTree) -> Result<(), BudgetExceeded> {
        match self.budget.max_nodes {
            Some(max) if tree.num_nodes() > max => Err(BudgetExceeded {
                limit: ParseLimit::Nodes,
                limit_value: max,
                observed: tree.num_nodes(),
            }),
            _ => Ok(()),
        }
    }

    /// Flushes accumulated character data as a text node, then re-checks
    /// the node budget (comments and PIs can split one element's text into
    /// arbitrarily many nodes, so text creation must count too).
    fn flush_text(
        &self,
        tree: &mut XmlTree,
        parent: NodeId,
        text: &mut String,
    ) -> Result<(), BudgetExceeded> {
        if !text.trim().is_empty() {
            tree.add_text(parent, unescape(text.trim()));
            text.clear();
            return self.check_nodes(tree);
        }
        text.clear();
        Ok(())
    }

    /// Parses attributes of the current element; returns `true` if the
    /// element was self-closing (`/>`).
    fn parse_attributes(
        &mut self,
        tree: &mut XmlTree,
        node: NodeId,
        elem_name: &str,
    ) -> Result<bool, XmlError> {
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    return Ok(false);
                }
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() == Some(b'>') {
                        self.pos += 1;
                        return Ok(true);
                    }
                    return Err(self.error("expected `>` after `/`"));
                }
                Some(_) => {
                    let attr_name = self.name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.error("expected `=` after attribute name"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let value = self.quoted()?;
                    let attr = self.dtd.attr_by_name(&attr_name).ok_or_else(|| {
                        XmlError::UnknownAttribute {
                            element: elem_name.to_string(),
                            attribute: attr_name.clone(),
                        }
                    })?;
                    tree.set_attr(node, attr, unescape(&value));
                }
                None => return Err(self.error("unterminated start tag")),
            }
        }
    }

    fn quoted(&mut self) -> Result<String, XmlError> {
        let quote = self
            .peek()
            .ok_or_else(|| self.error("expected a quoted value"))?;
        if quote != b'"' && quote != b'\'' {
            return Err(self.error("expected a quoted value"));
        }
        self.pos += 1;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == quote {
                let s = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                self.pos += 1;
                return Ok(s);
            }
            self.pos += 1;
        }
        Err(self.error("unterminated attribute value"))
    }

    /// Parses the content (children and text) of an already-opened element
    /// and everything nested below it.
    ///
    /// Iterative on an explicit frame stack — one heap frame per open
    /// element instead of one call-stack frame — so nesting depth is
    /// bounded only by [`ParseBudget::max_depth`] policy (or the heap),
    /// never by stack overflow.  A 100k-deep document parses fine; see the
    /// `deeply_nested_document_parses_without_recursion` regression test.
    fn parse_children(
        &mut self,
        tree: &mut XmlTree,
        parent: NodeId,
        parent_name: String,
    ) -> Result<(), ParseError> {
        /// One open element: its node, its tag name (for end-tag matching)
        /// and its pending character data.
        struct Frame {
            node: NodeId,
            name: String,
            text: String,
        }
        let mut stack = vec![Frame {
            node: parent,
            name: parent_name,
            text: String::new(),
        }];
        while let Some(depth) = stack.len().checked_sub(1) {
            if self.eof() {
                let name = &stack[depth].name;
                return Err(self.error(&format!("unterminated element `{name}`")).into());
            }
            if self.starts_with("<!--") {
                let Frame { node, text, .. } = &mut stack[depth];
                self.flush_text(tree, *node, text)?;
                self.skip_until("-->")?;
                continue;
            }
            if self.starts_with("<?") {
                let Frame { node, text, .. } = &mut stack[depth];
                self.flush_text(tree, *node, text)?;
                self.skip_until("?>")?;
                continue;
            }
            if self.starts_with("</") {
                {
                    let Frame { node, text, .. } = &mut stack[depth];
                    self.flush_text(tree, *node, text)?;
                }
                self.pos += 2;
                let name = self.name()?;
                if name != stack[depth].name {
                    let expected = &stack[depth].name;
                    return Err(self
                        .error(&format!(
                            "mismatched end tag: expected `</{expected}>`, found `</{name}>`"
                        ))
                        .into());
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return Err(self.error("expected `>` in end tag").into());
                }
                self.pos += 1;
                stack.pop();
                continue;
            }
            if self.peek() == Some(b'<') {
                {
                    let Frame { node, text, .. } = &mut stack[depth];
                    self.flush_text(tree, *node, text)?;
                }
                self.pos += 1;
                let name = self.name()?;
                let ty = self
                    .dtd
                    .type_by_name(&name)
                    .ok_or_else(|| XmlError::UnknownElement(name.clone()))?;
                // The child sits one level below the current frame whether
                // or not it self-closes, so depth is checked before it is
                // even allocated.
                self.check_depth(depth + 2)?;
                let child = tree.add_element(stack[depth].node, ty);
                self.check_nodes(tree)?;
                let self_closing = self.parse_attributes(tree, child, &name)?;
                // Attributes are arena nodes too; re-check after parsing them.
                self.check_nodes(tree)?;
                if !self_closing {
                    stack.push(Frame {
                        node: child,
                        name,
                        text: String::new(),
                    });
                }
                continue;
            }
            // Character data.
            let b = self.input[self.pos];
            stack[depth].text.push(b as char);
            self.pos += 1;
        }
        Ok(())
    }
}

fn find(haystack: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    if from >= haystack.len() {
        return None;
    }
    haystack[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + from)
}

/// Expands the five predefined XML entities.
fn unescape(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::is_valid;
    use xic_dtd::example_d1;

    const DOC: &str = r#"<?xml version="1.0"?>
<!-- the Figure 1 document -->
<teachers>
  <teacher name="Joe">
    <teach>
      <subject taught_by="Joe">XML</subject>
      <subject taught_by="Joe">DB</subject>
    </teach>
    <research>Web DB</research>
  </teacher>
</teachers>"#;

    #[test]
    fn parses_the_figure1_document() {
        let dtd = example_d1();
        let tree = parse_document(DOC, &dtd).unwrap();
        let teacher = dtd.type_by_name("teacher").unwrap();
        let subject = dtd.type_by_name("subject").unwrap();
        let taught_by = dtd.attr_by_name("taught_by").unwrap();
        assert_eq!(tree.ext_count(teacher), 1);
        assert_eq!(tree.ext_count(subject), 2);
        let s = tree.ext(subject).next().unwrap();
        assert_eq!(tree.attr_value(s, taught_by), Some("Joe"));
        assert_eq!(tree.text_of(s), "XML");
        assert!(is_valid(&tree, &dtd));
    }

    #[test]
    fn self_closing_elements() {
        let mut b = xic_dtd::Dtd::builder();
        let r = b.elem("r");
        let item = b.elem("item");
        b.content(
            r,
            xic_dtd::ContentModel::star(xic_dtd::ContentModel::Element(item)),
        );
        b.attr(item, "id");
        let dtd = b.build("r").unwrap();
        let tree = parse_document(r#"<r><item id="1"/><item id="2"/></r>"#, &dtd).unwrap();
        assert_eq!(tree.ext_count(item), 2);
        assert!(is_valid(&tree, &dtd));
    }

    #[test]
    fn unknown_element_is_an_error() {
        let dtd = example_d1();
        let err = parse_document("<bogus/>", &dtd).unwrap_err();
        assert!(matches!(err, XmlError::UnknownElement(name) if name == "bogus"));
    }

    #[test]
    fn unknown_attribute_is_an_error() {
        let dtd = example_d1();
        let err = parse_document(r#"<teachers id="1"/>"#, &dtd).unwrap_err();
        assert!(matches!(err, XmlError::UnknownAttribute { .. }));
    }

    #[test]
    fn mismatched_tags_are_an_error() {
        let dtd = example_d1();
        let err = parse_document("<teachers><teacher></teachers></teacher>", &dtd).unwrap_err();
        assert!(matches!(err, XmlError::Syntax { .. }));
    }

    #[test]
    fn entities_are_expanded() {
        let mut b = xic_dtd::Dtd::builder();
        let r = b.elem("r");
        b.content(r, xic_dtd::ContentModel::Text);
        b.attr(r, "label");
        let dtd = b.build("r").unwrap();
        let tree = parse_document(r#"<r label="a &amp; b">x &lt; y</r>"#, &dtd).unwrap();
        let label = dtd.attr_by_name("label").unwrap();
        assert_eq!(tree.attr_value(tree.root(), label), Some("a & b"));
        assert_eq!(tree.text_of(tree.root()), "x < y");
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        let dtd = example_d1();
        let err = parse_document("<teachers></teachers><teachers/>", &dtd).unwrap_err();
        assert!(matches!(err, XmlError::Syntax { .. }));
    }

    #[test]
    fn pooled_parse_shares_the_interner_across_documents() {
        let dtd = example_d1();
        let tree = parse_document(DOC, &dtd).unwrap();
        let distinct = tree.pool().len();
        assert!(distinct > 0);
        // Re-parsing the same document over the recovered pool interns
        // nothing new: every value is already a symbol.
        let tree2 = parse_document_pooled(DOC, &dtd, tree.into_pool()).unwrap();
        assert_eq!(tree2.pool().len(), distinct);
        // A parse error hands the warm pool back instead of dropping it.
        let (err, pool) = parse_document_pooled("<bogus/>", &dtd, tree2.into_pool()).unwrap_err();
        assert!(matches!(err, XmlError::UnknownElement(_)));
        assert_eq!(pool.len(), distinct);
        // Mid-document failures (after the tree exists) also recover it.
        let (_, pool) = parse_document_pooled("<teachers><teacher>", &dtd, pool).unwrap_err();
        assert_eq!(pool.len(), distinct);
    }

    /// A DTD with one recursive element `<!ELEMENT n (n*)>`.
    fn recursive_dtd() -> xic_dtd::Dtd {
        let mut b = xic_dtd::Dtd::builder();
        let n = b.elem("n");
        b.content(
            n,
            xic_dtd::ContentModel::star(xic_dtd::ContentModel::Element(n)),
        );
        b.build("n").unwrap()
    }

    #[test]
    fn deeply_nested_document_parses_without_recursion() {
        // 100k-deep nesting: the recursive parser this replaced overflowed
        // the call stack here; the explicit frame stack must not.
        const DEPTH: usize = 100_000;
        let doc = format!("{}{}", "<n>".repeat(DEPTH), "</n>".repeat(DEPTH));
        let dtd = recursive_dtd();
        let tree = parse_document(&doc, &dtd).unwrap();
        assert_eq!(tree.num_nodes(), DEPTH);
    }

    #[test]
    fn depth_budget_rejects_deep_documents() {
        use crate::budget::{ParseBudget, ParseError, ParseLimit};
        let dtd = recursive_dtd();
        let doc = format!("{}{}", "<n>".repeat(64), "</n>".repeat(64));
        let budget = ParseBudget {
            max_depth: Some(16),
            ..ParseBudget::UNLIMITED
        };
        let (err, _) = parse_document_budgeted(&doc, &dtd, ValuePool::new(), &budget).unwrap_err();
        match err {
            ParseError::Budget(b) => {
                assert_eq!(b.limit, ParseLimit::Depth);
                assert_eq!(b.limit_value, 16);
                assert_eq!(b.observed, 17);
            }
            other => panic!("expected a depth budget rejection, got {other:?}"),
        }
        // At the exact bound the document is accepted.
        let exact = ParseBudget {
            max_depth: Some(64),
            ..ParseBudget::UNLIMITED
        };
        assert!(parse_document_budgeted(&doc, &dtd, ValuePool::new(), &exact).is_ok());
    }

    #[test]
    fn node_budget_is_exact() {
        use crate::budget::{ParseBudget, ParseError, ParseLimit};
        let dtd = example_d1();
        let tree = parse_document(DOC, &dtd).unwrap();
        let n = tree.num_nodes();
        let accept = ParseBudget {
            max_nodes: Some(n),
            ..ParseBudget::UNLIMITED
        };
        assert!(parse_document_budgeted(DOC, &dtd, ValuePool::new(), &accept).is_ok());
        let reject = ParseBudget {
            max_nodes: Some(n - 1),
            ..ParseBudget::UNLIMITED
        };
        let (err, _) = parse_document_budgeted(DOC, &dtd, ValuePool::new(), &reject).unwrap_err();
        assert!(
            matches!(err, ParseError::Budget(b) if b.limit == ParseLimit::Nodes),
            "expected a node budget rejection, got {err:?}"
        );
    }

    #[test]
    fn byte_budget_rejects_before_parsing() {
        use crate::budget::{ParseBudget, ParseError, ParseLimit};
        let dtd = example_d1();
        let budget = ParseBudget {
            max_bytes: Some(8),
            ..ParseBudget::UNLIMITED
        };
        let (err, _) = parse_document_budgeted(DOC, &dtd, ValuePool::new(), &budget).unwrap_err();
        match err {
            ParseError::Budget(b) => {
                assert_eq!(b.limit, ParseLimit::Bytes);
                assert_eq!(b.observed, DOC.len());
                assert_eq!(b.limit.name(), "max_doc_bytes");
            }
            other => panic!("expected a byte budget rejection, got {other:?}"),
        }
    }

    #[test]
    fn doctype_and_comments_are_skipped() {
        let dtd = example_d1();
        let doc = r#"<!DOCTYPE teachers [ <!ELEMENT teachers (teacher+)> ]>
            <!-- prolog comment -->
            <teachers></teachers>"#;
        let tree = parse_document(doc, &dtd).unwrap();
        assert_eq!(tree.num_nodes(), 1);
    }
}
