//! Validation of XML trees against DTDs (the `T ⊨ D` relation of
//! Definition 2.2).

use std::collections::HashMap;

use xic_dtd::{ChildSymbol, Dtd, ElemId, Glushkov};

use crate::tree::{NodeId, NodeLabel, XmlTree};

/// A single validation violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// The root element is not labelled with the DTD's root type.
    WrongRootType {
        /// Expected root type name.
        expected: String,
        /// Actual root type name.
        found: String,
    },
    /// The ordered children of an element do not match its content model.
    ContentModelMismatch {
        /// Path of the offending element.
        path: String,
        /// Element type name.
        element_type: String,
        /// The content model, rendered.
        expected: String,
        /// The children label word, rendered.
        found: String,
    },
    /// A required attribute is missing.
    MissingAttribute {
        /// Path of the offending element.
        path: String,
        /// Attribute name.
        attribute: String,
    },
    /// An attribute not in `R(τ)` is present.
    UnexpectedAttribute {
        /// Path of the offending element.
        path: String,
        /// Attribute name.
        attribute: String,
    },
    /// An attribute or text node is missing its string value, or an element
    /// node carries one.
    ValueShape {
        /// Path of the offending node.
        path: String,
        /// Description of the problem.
        message: String,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::WrongRootType { expected, found } => {
                write!(
                    f,
                    "root element is `{found}` but the DTD root is `{expected}`"
                )
            }
            ValidationError::ContentModelMismatch {
                path,
                element_type,
                expected,
                found,
            } => {
                write!(
                    f,
                    "{path}: children of `{element_type}` are [{found}] which does not match {expected}"
                )
            }
            ValidationError::MissingAttribute { path, attribute } => {
                write!(f, "{path}: missing required attribute `{attribute}`")
            }
            ValidationError::UnexpectedAttribute { path, attribute } => {
                write!(
                    f,
                    "{path}: attribute `{attribute}` is not defined for this element type"
                )
            }
            ValidationError::ValueShape { path, message } => write!(f, "{path}: {message}"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// A compiled validator: one Glushkov automaton per element type.
///
/// The automata can be owned (built by [`Validator::new`]) or borrowed from a
/// caller that compiled them once and validates many documents (see
/// [`Validator::from_automata`]).
#[derive(Debug)]
pub struct Validator<'d> {
    dtd: &'d Dtd,
    automata: Automata<'d>,
}

#[derive(Debug)]
enum Automata<'d> {
    Owned(HashMap<ElemId, Glushkov>),
    Borrowed(&'d HashMap<ElemId, Glushkov>),
}

impl Automata<'_> {
    fn get(&self, ty: ElemId) -> &Glushkov {
        match self {
            Automata::Owned(map) => &map[&ty],
            Automata::Borrowed(map) => &map[&ty],
        }
    }
}

/// Builds the Glushkov automata of every content model of a DTD, keyed by
/// element type — the per-spec compilation step that [`Validator::new`] runs
/// implicitly and that batch engines want to run exactly once.
pub fn compile_automata(dtd: &Dtd) -> HashMap<ElemId, Glushkov> {
    dtd.types()
        .map(|ty| (ty, Glushkov::new(dtd.content(ty))))
        .collect()
}

impl<'d> Validator<'d> {
    /// Compiles the content models of a DTD.
    pub fn new(dtd: &'d Dtd) -> Validator<'d> {
        Validator {
            dtd,
            automata: Automata::Owned(compile_automata(dtd)),
        }
    }

    /// Wraps automata compiled once elsewhere (see [`compile_automata`]);
    /// `automata` must cover every element type of `dtd`.
    pub fn from_automata(dtd: &'d Dtd, automata: &'d HashMap<ElemId, Glushkov>) -> Validator<'d> {
        Validator {
            dtd,
            automata: Automata::Borrowed(automata),
        }
    }

    /// Validates a whole tree, collecting every violation.
    pub fn validate(&self, tree: &XmlTree) -> Vec<ValidationError> {
        let mut errors = Vec::new();
        // Root label.
        match tree.label(tree.root()) {
            NodeLabel::Element(e) if e == self.dtd.root() => {}
            NodeLabel::Element(e) => errors.push(ValidationError::WrongRootType {
                expected: self.dtd.type_name(self.dtd.root()).to_string(),
                found: self.dtd.type_name(e).to_string(),
            }),
            _ => errors.push(ValidationError::WrongRootType {
                expected: self.dtd.type_name(self.dtd.root()).to_string(),
                found: "#text".to_string(),
            }),
        }
        for node in tree.elements() {
            self.validate_element(tree, node, &mut errors);
        }
        errors
    }

    /// Returns `true` iff the tree is valid with respect to the DTD.
    pub fn is_valid(&self, tree: &XmlTree) -> bool {
        self.validate(tree).is_empty()
    }

    fn validate_element(&self, tree: &XmlTree, node: NodeId, errors: &mut Vec<ValidationError>) {
        let Some(ty) = tree.element_type(node) else {
            return;
        };
        let path = || tree.path_of(self.dtd, node);

        // Elements carry no value.
        if tree.value(node).is_some() {
            errors.push(ValidationError::ValueShape {
                path: path(),
                message: "element node has a string value".to_string(),
            });
        }

        // Children word must be in L(P(τ)).
        let word: Vec<ChildSymbol> = tree
            .children(node)
            .iter()
            .map(|&c| match tree.label(c) {
                NodeLabel::Element(e) => ChildSymbol::Element(e),
                _ => ChildSymbol::Text,
            })
            .collect();
        let automaton = self.automata.get(ty);
        if !automaton.matches(&word) {
            let found = word
                .iter()
                .map(|s| match s {
                    ChildSymbol::Element(e) => self.dtd.type_name(*e).to_string(),
                    ChildSymbol::Text => "S".to_string(),
                })
                .collect::<Vec<_>>()
                .join(", ");
            errors.push(ValidationError::ContentModelMismatch {
                path: path(),
                element_type: self.dtd.type_name(ty).to_string(),
                expected: self
                    .dtd
                    .content(ty)
                    .render(&|e| self.dtd.type_name(e).to_string()),
                found,
            });
        }

        // Attribute set must be exactly R(τ), every attribute with a value.
        for &required in self.dtd.attrs_of(ty) {
            if tree.attr_value(node, required).is_none() {
                errors.push(ValidationError::MissingAttribute {
                    path: path(),
                    attribute: self.dtd.attr_name(required).to_string(),
                });
            }
        }
        for &(attr, attr_node) in tree.attributes(node) {
            if !self.dtd.has_attr(ty, attr) {
                errors.push(ValidationError::UnexpectedAttribute {
                    path: path(),
                    attribute: self.dtd.attr_name(attr).to_string(),
                });
            }
            if tree.value(attr_node).is_none() {
                errors.push(ValidationError::ValueShape {
                    path: path(),
                    message: format!(
                        "attribute `{}` has no string value",
                        self.dtd.attr_name(attr)
                    ),
                });
            }
        }

        // Text children must carry values and no children of their own.
        for &child in tree.children(node) {
            if matches!(tree.label(child), NodeLabel::Text) {
                if tree.value(child).is_none() {
                    errors.push(ValidationError::ValueShape {
                        path: tree.path_of(self.dtd, child),
                        message: "text node has no string value".to_string(),
                    });
                }
                if !tree.children(child).is_empty() {
                    errors.push(ValidationError::ValueShape {
                        path: tree.path_of(self.dtd, child),
                        message: "text node has children".to_string(),
                    });
                }
            }
        }
    }
}

/// One-shot validation helper.
pub fn validate(tree: &XmlTree, dtd: &Dtd) -> Vec<ValidationError> {
    Validator::new(dtd).validate(tree)
}

/// One-shot validity test (`T ⊨ D`).
pub fn is_valid(tree: &XmlTree, dtd: &Dtd) -> bool {
    validate(tree, dtd).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xic_dtd::example_d1;

    fn d1_tree(dtd: &Dtd) -> XmlTree {
        let teachers = dtd.type_by_name("teachers").unwrap();
        let teacher = dtd.type_by_name("teacher").unwrap();
        let teach = dtd.type_by_name("teach").unwrap();
        let research = dtd.type_by_name("research").unwrap();
        let subject = dtd.type_by_name("subject").unwrap();
        let name = dtd.attr_by_name("name").unwrap();
        let taught_by = dtd.attr_by_name("taught_by").unwrap();
        let mut t = XmlTree::new(teachers);
        let te = t.add_element(t.root(), teacher);
        t.set_attr(te, name, "Joe");
        let th = t.add_element(te, teach);
        for s_name in ["XML", "DB"] {
            let s = t.add_element(th, subject);
            t.set_attr(s, taught_by, "Joe");
            t.add_text(s, s_name);
        }
        let r = t.add_element(te, research);
        t.add_text(r, "Web DB");
        t
    }

    #[test]
    fn figure1_style_tree_is_valid() {
        let dtd = example_d1();
        let t = d1_tree(&dtd);
        let errors = validate(&t, &dtd);
        assert!(errors.is_empty(), "{errors:?}");
        assert!(is_valid(&t, &dtd));
    }

    #[test]
    fn missing_attribute_is_reported() {
        let dtd = example_d1();
        let mut t = d1_tree(&dtd);
        // Add an extra subject without taught_by under teach.
        let teach = dtd.type_by_name("teach").unwrap();
        let subject = dtd.type_by_name("subject").unwrap();
        let teach_node = t.ext(teach).next().unwrap();
        t.add_element(teach_node, subject);
        let errors = validate(&t, &dtd);
        assert!(errors
            .iter()
            .any(|e| matches!(e, ValidationError::MissingAttribute { attribute, .. } if attribute == "taught_by")));
        // The teach element now has three subject children: also a content
        // model mismatch.
        assert!(errors
            .iter()
            .any(|e| matches!(e, ValidationError::ContentModelMismatch { .. })));
    }

    #[test]
    fn wrong_root_is_reported() {
        let dtd = example_d1();
        let teacher = dtd.type_by_name("teacher").unwrap();
        let t = XmlTree::new(teacher);
        let errors = validate(&t, &dtd);
        assert!(errors
            .iter()
            .any(|e| matches!(e, ValidationError::WrongRootType { .. })));
    }

    #[test]
    fn unexpected_attribute_is_reported() {
        let dtd = example_d1();
        let mut t = d1_tree(&dtd);
        let teach = dtd.type_by_name("teach").unwrap();
        let name = dtd.attr_by_name("name").unwrap();
        let teach_node = t.ext(teach).next().unwrap();
        t.set_attr(teach_node, name, "oops");
        let errors = validate(&t, &dtd);
        assert!(errors
            .iter()
            .any(|e| matches!(e, ValidationError::UnexpectedAttribute { attribute, .. } if attribute == "name")));
    }

    #[test]
    fn empty_teachers_violates_plus() {
        let dtd = example_d1();
        let teachers = dtd.type_by_name("teachers").unwrap();
        let t = XmlTree::new(teachers);
        // teachers requires at least one teacher child.
        let errors = validate(&t, &dtd);
        assert!(errors
            .iter()
            .any(|e| matches!(e, ValidationError::ContentModelMismatch { .. })));
    }

    #[test]
    fn error_messages_are_informative() {
        let dtd = example_d1();
        let teachers = dtd.type_by_name("teachers").unwrap();
        let t = XmlTree::new(teachers);
        let errors = validate(&t, &dtd);
        let msg = errors[0].to_string();
        assert!(msg.contains("teachers"), "{msg}");
    }

    #[test]
    fn validator_is_reusable() {
        let dtd = example_d1();
        let v = Validator::new(&dtd);
        let t1 = d1_tree(&dtd);
        let t2 = d1_tree(&dtd);
        assert!(v.is_valid(&t1));
        assert!(v.is_valid(&t2));
    }
}
