//! Error types for XML document parsing.

use std::fmt;

/// Errors raised while parsing an XML document against a DTD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// A syntax error in the document text.
    Syntax {
        /// Byte offset of the error.
        offset: usize,
        /// Description of the problem.
        message: String,
    },
    /// An element name that is not declared in the DTD.
    UnknownElement(String),
    /// An attribute name that is not declared in the DTD.
    UnknownAttribute {
        /// The element carrying the attribute.
        element: String,
        /// The attribute name.
        attribute: String,
    },
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::Syntax { offset, message } => {
                write!(f, "XML syntax error at byte {offset}: {message}")
            }
            XmlError::UnknownElement(name) => {
                write!(f, "element `{name}` is not declared in the DTD")
            }
            XmlError::UnknownAttribute { element, attribute } => {
                write!(
                    f,
                    "attribute `{attribute}` on `{element}` is not declared in the DTD"
                )
            }
        }
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = XmlError::Syntax {
            offset: 10,
            message: "bad".into(),
        };
        assert!(e.to_string().contains("byte 10"));
        assert!(XmlError::UnknownElement("x".into())
            .to_string()
            .contains('x'));
        let e = XmlError::UnknownAttribute {
            element: "a".into(),
            attribute: "b".into(),
        };
        assert!(e.to_string().contains('a') && e.to_string().contains('b'));
    }
}
