//! Serialisation of [`XmlTree`] values back to XML text.

use xic_dtd::Dtd;

use crate::tree::{NodeId, NodeLabel, XmlTree};

/// Serialisation options.
#[derive(Debug, Clone)]
pub struct WriteOptions {
    /// Indentation string per nesting level (empty for compact output).
    pub indent: String,
    /// Whether to emit an XML declaration.
    pub declaration: bool,
}

impl Default for WriteOptions {
    fn default() -> Self {
        WriteOptions {
            indent: "  ".to_string(),
            declaration: true,
        }
    }
}

/// Serialises a tree to text with default options.
pub fn write_document(tree: &XmlTree, dtd: &Dtd) -> String {
    write_document_with(tree, dtd, &WriteOptions::default())
}

/// Serialises a tree to text.
pub fn write_document_with(tree: &XmlTree, dtd: &Dtd, options: &WriteOptions) -> String {
    let mut out = String::new();
    if options.declaration {
        out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    }
    write_element(tree, dtd, tree.root(), 0, options, &mut out);
    out
}

fn write_element(
    tree: &XmlTree,
    dtd: &Dtd,
    node: NodeId,
    depth: usize,
    options: &WriteOptions,
    out: &mut String,
) {
    let NodeLabel::Element(ty) = tree.label(node) else {
        return;
    };
    let pretty = !options.indent.is_empty();
    if pretty {
        for _ in 0..depth {
            out.push_str(&options.indent);
        }
    }
    out.push('<');
    out.push_str(dtd.type_name(ty));
    for &(attr, attr_node) in tree.attributes(node) {
        out.push(' ');
        out.push_str(dtd.attr_name(attr));
        out.push_str("=\"");
        out.push_str(&escape(tree.value(attr_node).unwrap_or("")));
        out.push('"');
    }
    let children = tree.children(node);
    if children.is_empty() {
        out.push_str("/>");
        if pretty {
            out.push('\n');
        }
        return;
    }
    out.push('>');
    // If the element has only text children, keep them inline.
    let only_text = children
        .iter()
        .all(|&c| matches!(tree.label(c), NodeLabel::Text));
    if only_text {
        for &c in children {
            out.push_str(&escape(tree.value(c).unwrap_or("")));
        }
    } else {
        if pretty {
            out.push('\n');
        }
        for &c in children {
            match tree.label(c) {
                NodeLabel::Element(_) => {
                    write_element(tree, dtd, c, depth + 1, options, out);
                }
                NodeLabel::Text => {
                    if pretty {
                        for _ in 0..=depth {
                            out.push_str(&options.indent);
                        }
                    }
                    out.push_str(&escape(tree.value(c).unwrap_or("")));
                    if pretty {
                        out.push('\n');
                    }
                }
                NodeLabel::Attribute(_) => {}
            }
        }
        if pretty {
            for _ in 0..depth {
                out.push_str(&options.indent);
            }
        }
    }
    out.push_str("</");
    out.push_str(dtd.type_name(ty));
    out.push('>');
    if pretty {
        out.push('\n');
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;
    use xic_dtd::example_d1;

    fn sample(dtd: &Dtd) -> XmlTree {
        let teachers = dtd.type_by_name("teachers").unwrap();
        let teacher = dtd.type_by_name("teacher").unwrap();
        let teach = dtd.type_by_name("teach").unwrap();
        let research = dtd.type_by_name("research").unwrap();
        let subject = dtd.type_by_name("subject").unwrap();
        let name = dtd.attr_by_name("name").unwrap();
        let taught_by = dtd.attr_by_name("taught_by").unwrap();
        let mut t = XmlTree::new(teachers);
        let te = t.add_element(t.root(), teacher);
        t.set_attr(te, name, "Joe & Sue");
        let th = t.add_element(te, teach);
        for s_name in ["X<ML", "DB"] {
            let s = t.add_element(th, subject);
            t.set_attr(s, taught_by, "Joe & Sue");
            t.add_text(s, s_name);
        }
        let r = t.add_element(te, research);
        t.add_text(r, "Web DB");
        t
    }

    #[test]
    fn round_trip_through_text() {
        let dtd = example_d1();
        let tree = sample(&dtd);
        let text = write_document(&tree, &dtd);
        let reparsed = parse_document(&text, &dtd).unwrap();
        assert_eq!(reparsed.num_nodes(), tree.num_nodes());
        let subject = dtd.type_by_name("subject").unwrap();
        let taught_by = dtd.attr_by_name("taught_by").unwrap();
        // ext(τ.l) is a set of per-tree interned symbols; resolve both sides
        // to strings before comparing across the two pools.
        let resolved = |t: &crate::tree::XmlTree| {
            t.ext_attr(subject, taught_by)
                .into_iter()
                .map(|id| t.resolve(id).to_string())
                .collect::<std::collections::HashSet<_>>()
        };
        assert_eq!(resolved(&reparsed), resolved(&tree));
        assert_eq!(
            reparsed.text_of(reparsed.ext(subject).next().unwrap()),
            "X<ML"
        );
    }

    #[test]
    fn compact_output_has_no_newlines() {
        let dtd = example_d1();
        let tree = sample(&dtd);
        let text = write_document_with(
            &tree,
            &dtd,
            &WriteOptions {
                indent: String::new(),
                declaration: false,
            },
        );
        assert!(!text.contains('\n'));
        assert!(text.starts_with("<teachers>"));
    }

    #[test]
    fn empty_elements_are_self_closed() {
        let mut b = xic_dtd::Dtd::builder();
        let r = b.elem("r");
        b.content(r, xic_dtd::ContentModel::Epsilon);
        let dtd = b.build("r").unwrap();
        let tree = XmlTree::new(r);
        let text = write_document_with(
            &tree,
            &dtd,
            &WriteOptions {
                indent: String::new(),
                declaration: false,
            },
        );
        assert_eq!(text, "<r/>");
    }

    #[test]
    fn declaration_toggle() {
        let dtd = example_d1();
        let tree = sample(&dtd);
        assert!(write_document(&tree, &dtd).starts_with("<?xml"));
    }
}
