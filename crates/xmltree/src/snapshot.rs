//! Arena snapshots of [`XmlTree`](crate::XmlTree) — the serialization hook
//! of the durable edit journals.
//!
//! A delta log persists a session document as *base snapshot + edit ops*
//! (see `xic-engine::journal`).  The base cannot be stored as XML source:
//! re-parsing renumbers the arena (tombstones are not serialized, and a
//! hand-built tree interleaves attribute nodes differently from a parsed
//! one), and the logged [`crate::EditOp`]s address nodes by [`NodeId`] —
//! replaying them onto a renumbered arena would edit the wrong nodes and
//! report wrong verdicts.  A [`TreeSnapshot`] therefore captures the arena
//! *slot-for-slot*: every node's label, parent, value, detached flag and
//! ordered child/attribute lists, so
//! [`XmlTree::from_snapshot`](crate::XmlTree::from_snapshot) rebuilds a
//! tree on which journal replay is id-exact.
//!
//! `XmlTree::from_snapshot` validates the snapshot before trusting it
//! (persistence formats are hostile inputs): out-of-range references,
//! label/value mismatches, orphaned or multiply-referenced live nodes and
//! unreachable live subtrees are all rejected with a structured
//! [`SnapshotError`], never a panic or a silently wrong tree.

use std::fmt;

use crate::tree::{NodeId, NodeLabel};
use xic_dtd::AttrId;

/// One arena slot of a [`crate::XmlTree`], values resolved to strings (pool
/// symbols are tree-local and are re-interned on reconstruction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSnapshot {
    /// The node's label (element type, attribute, or text).
    pub label: NodeLabel,
    /// The parent slot (`None` exactly for the root).
    pub parent: Option<NodeId>,
    /// The string value (`Some` exactly for attribute and text nodes).
    pub value: Option<String>,
    /// Whether the node is a tombstone (removed from the document but kept
    /// in the arena so ids stay stable and old values stay readable).
    pub detached: bool,
    /// Ordered subelement/text children (the `ele` function).
    pub children: Vec<NodeId>,
    /// Attribute children, identified by attribute id (the `att` function).
    pub attrs: Vec<(AttrId, NodeId)>,
}

/// A slot-for-slot dump of an [`crate::XmlTree`] arena.
///
/// [`crate::XmlTree::snapshot`] produces one; [`crate::XmlTree::from_snapshot`]
/// rebuilds a tree whose arena — node ids, orders, tombstones — is
/// indistinguishable from the original, which is what makes journaled edit
/// ops replayable onto it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeSnapshot {
    /// Every arena slot, in id order (index `i` is `NodeId(i)`).
    pub nodes: Vec<NodeSnapshot>,
    /// The root slot.
    pub root: NodeId,
}

impl TreeSnapshot {
    /// Number of arena slots (live and tombstoned).
    pub fn num_slots(&self) -> usize {
        self.nodes.len()
    }

    /// Number of live (not detached) nodes.
    pub fn live_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| !n.detached).count()
    }
}

/// Why a [`TreeSnapshot`] was rejected by [`crate::XmlTree::from_snapshot`].
///
/// Snapshots come from persistence formats, so every structural invariant
/// the arena normally maintains by construction is re-checked here; the
/// error names the offending slot where one exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError {
    /// The offending arena slot, when the failure is local to one node.
    pub node: Option<NodeId>,
    /// What was wrong.
    pub detail: String,
}

impl SnapshotError {
    pub(crate) fn at(node: NodeId, detail: impl Into<String>) -> SnapshotError {
        SnapshotError {
            node: Some(node),
            detail: detail.into(),
        }
    }

    pub(crate) fn global(detail: impl Into<String>) -> SnapshotError {
        SnapshotError {
            node: None,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node {
            Some(n) => write!(
                f,
                "invalid tree snapshot at node #{}: {}",
                n.index(),
                self.detail
            ),
            None => write!(f, "invalid tree snapshot: {}", self.detail),
        }
    }
}

impl std::error::Error for SnapshotError {}
