//! The XML tree model of Definition 2.2.
//!
//! An XML tree is `T = (V, lab, ele, att, val, root)`:
//!
//! * `V` — nodes (here an arena indexed by [`NodeId`]);
//! * `lab` — labels each node with an element type, an attribute, or `S`;
//! * `ele` — the ordered list of subelements/text children of an element;
//! * `att` — the attribute nodes of an element, identified by attribute name;
//! * `val` — string values of attribute and text nodes;
//! * `root` — the unique root node.
//!
//! The structure is DTD-aware in the sense that labels are the interned
//! [`ElemId`] / [`AttrId`] identifiers of a [`Dtd`]; the tree itself does not
//! enforce validity — that is the job of [`mod@crate::validate`].

use std::collections::{HashMap, HashSet};

use xic_dtd::{AttrId, Dtd, ElemId};

use crate::pool::{ValueId, ValuePool};
use crate::snapshot::{NodeSnapshot, SnapshotError, TreeSnapshot};

/// Identifier of a node within an [`XmlTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into the tree's node arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Label of a node: element type, attribute, or text (`S`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeLabel {
    /// An element node of the given type.
    Element(ElemId),
    /// An attribute node.
    Attribute(AttrId),
    /// A text node (the string type `S`).
    Text,
}

/// A single node of the tree.
#[derive(Debug, Clone)]
struct Node {
    label: NodeLabel,
    parent: Option<NodeId>,
    /// Interned string value; `Some` exactly for attribute and text nodes.
    value: Option<ValueId>,
    /// Ordered subelement / text children (the `ele` function).
    children: Vec<NodeId>,
    /// Attribute children, identified by attribute id (the `att` function).
    attrs: Vec<(AttrId, NodeId)>,
    /// Whether the node has been removed from the document.  The arena slot
    /// is kept (ids stay stable and the node's values stay readable, which
    /// incremental index maintenance relies on), but detached nodes are
    /// invisible to every document-level accessor.
    detached: bool,
}

/// An XML tree (Definition 2.2).
///
/// Attribute and text values are interned in the tree's [`ValuePool`]:
/// nodes store dense [`ValueId`] symbols, and the string-value equality the
/// paper's constraints are built on becomes integer equality.  The string
/// accessors ([`XmlTree::value`], [`XmlTree::attr_value`], …) resolve
/// through the pool, so the external API is unchanged.
#[derive(Debug, Clone)]
pub struct XmlTree {
    nodes: Vec<Node>,
    root: NodeId,
    pool: ValuePool,
    /// Number of nodes that are not detached (arena slots of removed
    /// subtrees are tombstoned, not reclaimed).
    live: usize,
}

impl XmlTree {
    /// Creates a tree consisting of a single root element of type `root_type`.
    pub fn new(root_type: ElemId) -> XmlTree {
        XmlTree::with_pool(root_type, ValuePool::new())
    }

    /// Creates a tree over an existing (possibly pre-warmed) value pool.
    ///
    /// Threading one pool through a sequence of documents means values they
    /// share are interned — and allocated — exactly once; `xic-engine`'s
    /// batch validator does this per worker.
    pub fn with_pool(root_type: ElemId, pool: ValuePool) -> XmlTree {
        let root = Node {
            label: NodeLabel::Element(root_type),
            parent: None,
            value: None,
            children: Vec::new(),
            attrs: Vec::new(),
            detached: false,
        };
        XmlTree {
            nodes: vec![root],
            root: NodeId(0),
            pool,
            live: 1,
        }
    }

    /// The tree's value pool.
    pub fn pool(&self) -> &ValuePool {
        &self.pool
    }

    /// Consumes the tree, recovering its value pool for reuse.
    pub fn into_pool(self) -> ValuePool {
        self.pool
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Total number of live nodes (elements, attributes and text nodes;
    /// detached subtrees are not counted).
    pub fn num_nodes(&self) -> usize {
        self.live
    }

    /// Whether the id names a node of this tree (live or detached).
    pub fn contains(&self, node: NodeId) -> bool {
        node.index() < self.nodes.len()
    }

    /// Whether the node has been removed from the document by
    /// [`XmlTree::remove_subtree`].  Detached nodes keep their label, value
    /// and attributes readable (index maintenance needs the old state) but
    /// no longer appear in [`XmlTree::elements`] or any extension.
    pub fn is_detached(&self, node: NodeId) -> bool {
        self.nodes[node.index()].detached
    }

    /// Label of a node.
    pub fn label(&self, node: NodeId) -> NodeLabel {
        self.nodes[node.index()].label
    }

    /// Element type of a node, if it is an element.
    pub fn element_type(&self, node: NodeId) -> Option<ElemId> {
        match self.label(node) {
            NodeLabel::Element(e) => Some(e),
            _ => None,
        }
    }

    /// Parent of a node (`None` for the root).
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node.index()].parent
    }

    /// String value of a node (`Some` for attribute and text nodes).
    pub fn value(&self, node: NodeId) -> Option<&str> {
        self.nodes[node.index()]
            .value
            .map(|id| self.pool.resolve(id))
    }

    /// Interned value of a node (`Some` for attribute and text nodes).
    pub fn value_id(&self, node: NodeId) -> Option<ValueId> {
        self.nodes[node.index()].value
    }

    /// Resolves an interned value back to its string.
    pub fn resolve(&self, id: ValueId) -> &str {
        self.pool.resolve(id)
    }

    /// Ordered subelement/text children of an element (the `ele` function).
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.nodes[node.index()].children
    }

    /// Attribute nodes of an element (the `att` function).
    pub fn attributes(&self, node: NodeId) -> &[(AttrId, NodeId)] {
        &self.nodes[node.index()].attrs
    }

    /// The value of attribute `attr` of element `node` (the `x.l` notation).
    pub fn attr_value(&self, node: NodeId, attr: AttrId) -> Option<&str> {
        self.attr_value_id(node, attr)
            .map(|id| self.pool.resolve(id))
    }

    /// The interned value of attribute `attr` of element `node`.
    pub fn attr_value_id(&self, node: NodeId, attr: AttrId) -> Option<ValueId> {
        self.nodes[node.index()]
            .attrs
            .iter()
            .find(|(a, _)| *a == attr)
            .and_then(|(_, n)| self.value_id(*n))
    }

    /// The list of attribute values `x[X]` for a list of attributes `X`.
    /// Returns `None` if any attribute is missing.
    pub fn attr_values(&self, node: NodeId, attrs: &[AttrId]) -> Option<Vec<String>> {
        attrs
            .iter()
            .map(|&a| self.attr_value(node, a).map(str::to_string))
            .collect()
    }

    /// Fills `out` with the interned tuple `x[X]`, clearing it first.
    /// Returns `false` (leaving `out` in an unspecified state) if any
    /// attribute is missing.  This is the zero-allocation probe the
    /// constraint indexes are built on: `out` is a caller-owned scratch
    /// buffer reused across nodes.
    pub fn attr_value_ids(&self, node: NodeId, attrs: &[AttrId], out: &mut Vec<ValueId>) -> bool {
        out.clear();
        for &a in attrs {
            match self.attr_value_id(node, a) {
                Some(id) => out.push(id),
                None => return false,
            }
        }
        true
    }

    /// Adds an element child of type `ty` under `parent` and returns its id.
    pub fn add_element(&mut self, parent: NodeId, ty: ElemId) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            label: NodeLabel::Element(ty),
            parent: Some(parent),
            value: None,
            children: Vec::new(),
            attrs: Vec::new(),
            detached: false,
        });
        self.nodes[parent.index()].children.push(id);
        self.live += 1;
        id
    }

    /// Adds a text child with the given value under `parent`.
    pub fn add_text(&mut self, parent: NodeId, value: impl AsRef<str>) -> NodeId {
        let value = self.pool.intern(value.as_ref());
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            label: NodeLabel::Text,
            parent: Some(parent),
            value: Some(value),
            children: Vec::new(),
            attrs: Vec::new(),
            detached: false,
        });
        self.nodes[parent.index()].children.push(id);
        self.live += 1;
        id
    }

    /// Sets (or replaces) attribute `attr` of element `node` to `value`,
    /// returning the attribute node id.
    pub fn set_attr(&mut self, node: NodeId, attr: AttrId, value: impl AsRef<str>) -> NodeId {
        let value = self.pool.intern(value.as_ref());
        if let Some(&(_, existing)) = self.nodes[node.index()]
            .attrs
            .iter()
            .find(|(a, _)| *a == attr)
        {
            self.nodes[existing.index()].value = Some(value);
            return existing;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            label: NodeLabel::Attribute(attr),
            parent: Some(node),
            value: Some(value),
            children: Vec::new(),
            attrs: Vec::new(),
            detached: false,
        });
        self.nodes[node.index()].attrs.push((attr, id));
        self.live += 1;
        id
    }

    /// Removes the subtree rooted at `element` from the document: the node
    /// is unlinked from its parent and every node below it (elements, text
    /// and attribute nodes) is tombstoned.  Returns the removed **element**
    /// nodes with their types, in ascending id order — exactly the list an
    /// incremental index needs to retract.
    ///
    /// Returns `None` — and changes nothing — if `element` is not a live,
    /// non-root element node.  Detached nodes keep their labels, values and
    /// attribute lists readable so that retraction can still ask for the
    /// tuples the removed elements used to carry.
    pub fn remove_subtree(&mut self, element: NodeId) -> Option<Vec<(NodeId, ElemId)>> {
        if !self.contains(element)
            || self.is_detached(element)
            || element == self.root
            || self.element_type(element).is_none()
        {
            return None;
        }
        let parent = self.nodes[element.index()].parent.expect("non-root");
        let siblings = &mut self.nodes[parent.index()].children;
        let pos = siblings.iter().position(|&c| c == element)?;
        siblings.remove(pos);

        let mut removed = Vec::new();
        let mut stack = vec![element];
        while let Some(n) = stack.pop() {
            let node = &mut self.nodes[n.index()];
            debug_assert!(!node.detached, "subtrees never share nodes");
            node.detached = true;
            self.live -= 1;
            if let NodeLabel::Element(ty) = node.label {
                removed.push((n, ty));
            }
            stack.extend(node.children.iter().copied());
            let attr_nodes: Vec<NodeId> = node.attrs.iter().map(|&(_, a)| a).collect();
            for attr_node in attr_nodes {
                self.nodes[attr_node.index()].detached = true;
                self.live -= 1;
            }
        }
        removed.sort();
        Some(removed)
    }

    /// Iterates over all live element nodes in ascending id (creation)
    /// order.  For a parsed or top-down-built document this *is* document
    /// pre-order; after edits insert under earlier parents the two can
    /// diverge, and id order is the canonical traversal every checker in
    /// the workspace uses — witnesses are "first" in this order.
    pub fn elements(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId).filter(move |&n| {
            matches!(self.label(n), NodeLabel::Element(_)) && !self.is_detached(n)
        })
    }

    /// `ext(τ)`: the element nodes of type `ty`, in the order of
    /// [`XmlTree::elements`].
    ///
    /// Returns a lazy iterator — callers that need a materialized list
    /// `collect()` it themselves; most probes (`first`, `any`, counting)
    /// never allocate.
    pub fn ext(&self, ty: ElemId) -> impl Iterator<Item = NodeId> + '_ {
        self.elements()
            .filter(move |&n| self.element_type(n) == Some(ty))
    }

    /// `|ext(τ)|` without materialising the node list.
    pub fn ext_count(&self, ty: ElemId) -> usize {
        self.ext(ty).count()
    }

    /// `ext(τ.l)`: the set of `l`-attribute values over all `τ` elements,
    /// as interned [`ValueId`] symbols (string-value equality is id equality
    /// within one tree; resolve through [`XmlTree::resolve`] at the edges).
    pub fn ext_attr(&self, ty: ElemId, attr: AttrId) -> HashSet<ValueId> {
        self.ext(ty)
            .filter_map(|n| self.attr_value_id(n, attr))
            .collect()
    }

    /// Concatenated text content of an element's direct text children,
    /// folded into one string in a single pass (no intermediate `Vec`).
    pub fn text_of(&self, node: NodeId) -> String {
        self.children(node)
            .iter()
            .filter_map(|&c| match self.label(c) {
                NodeLabel::Text => self.value(c),
                _ => None,
            })
            .fold(String::new(), |mut acc, piece| {
                acc.push_str(piece);
                acc
            })
    }

    /// Per-type element counts (used by the Lemma 4.3 preservation tests).
    /// One walk over the arena, matching each node's label exactly once;
    /// detached nodes are skipped, so the counts agree with [`XmlTree::ext`].
    pub fn type_histogram(&self) -> HashMap<ElemId, usize> {
        let mut hist = HashMap::new();
        for node in &self.nodes {
            if node.detached {
                continue;
            }
            if let NodeLabel::Element(ty) = node.label {
                *hist.entry(ty).or_insert(0) += 1;
            }
        }
        hist
    }

    /// Dumps the arena slot-for-slot into a [`TreeSnapshot`] — the
    /// serialization hook of the durable edit journals.  The snapshot keeps
    /// tombstones, child/attribute orders and (implicitly, by position) node
    /// ids, so a tree rebuilt by [`XmlTree::from_snapshot`] replays journaled
    /// [`crate::EditOp`]s id-exactly.  Values are resolved to strings: pool
    /// symbols are tree-local and re-interned on reconstruction.
    pub fn snapshot(&self) -> TreeSnapshot {
        let nodes = self
            .nodes
            .iter()
            .map(|node| NodeSnapshot {
                label: node.label,
                parent: node.parent,
                value: node.value.map(|id| self.pool.resolve(id).to_string()),
                detached: node.detached,
                children: node.children.clone(),
                attrs: node.attrs.clone(),
            })
            .collect();
        TreeSnapshot {
            nodes,
            root: self.root,
        }
    }

    /// Rebuilds a tree from a [`TreeSnapshot`], re-validating every arena
    /// invariant first — snapshots arrive from persistence formats and must
    /// be treated as hostile.  On success the arena (ids, orders,
    /// tombstones, values) is indistinguishable from the snapshotted one;
    /// on any inconsistency a structured [`SnapshotError`] is returned and
    /// nothing is built.  Values are interned into a fresh pool (symbol
    /// numbering may differ from the original tree's; string values, which
    /// are what constraints compare at the edges, are identical).
    pub fn from_snapshot(snapshot: &TreeSnapshot) -> Result<XmlTree, SnapshotError> {
        let n = snapshot.nodes.len();
        if n == 0 {
            return Err(SnapshotError::global("empty arena"));
        }
        if n > u32::MAX as usize {
            return Err(SnapshotError::global("arena exceeds u32 ids"));
        }
        let in_range = |id: NodeId| (id.index() < n).then_some(id);
        let slot = |id: NodeId| &snapshot.nodes[id.index()];

        // Root invariants.
        let root = in_range(snapshot.root)
            .ok_or_else(|| SnapshotError::global("root slot out of range"))?;
        let root_node = slot(root);
        if !matches!(root_node.label, NodeLabel::Element(_)) {
            return Err(SnapshotError::at(root, "root is not an element"));
        }
        if root_node.parent.is_some() {
            return Err(SnapshotError::at(root, "root has a parent"));
        }
        if root_node.detached {
            return Err(SnapshotError::at(root, "root is detached"));
        }

        // Per-slot invariants: reference ranges, label/value coherence,
        // leaf-ness of attribute and text nodes.
        for (i, node) in snapshot.nodes.iter().enumerate() {
            let id = NodeId(i as u32);
            let is_element = matches!(node.label, NodeLabel::Element(_));
            if node.value.is_some() == is_element {
                return Err(SnapshotError::at(
                    id,
                    "value present iff the node is an attribute or text node",
                ));
            }
            if !is_element && (!node.children.is_empty() || !node.attrs.is_empty()) {
                return Err(SnapshotError::at(id, "non-element node with children"));
            }
            if id != root && node.parent.is_none() {
                return Err(SnapshotError::at(id, "non-root node without a parent"));
            }
            if let Some(p) = node.parent {
                if in_range(p).is_none() {
                    return Err(SnapshotError::at(id, "parent out of range"));
                }
            }
            for &c in node
                .children
                .iter()
                .chain(node.attrs.iter().map(|(_, c)| c))
            {
                if in_range(c).is_none() {
                    return Err(SnapshotError::at(id, "child reference out of range"));
                }
            }
        }

        // Live-structure invariants: children/attrs of live nodes are live,
        // parent-consistent, correctly labelled, and referenced exactly
        // once; every live node is reachable from the root.  Together these
        // rule out cycles and shared subtrees, which edit replay (and
        // `remove_subtree`'s stack walk in particular) relies on.
        let live = snapshot.nodes.iter().filter(|s| !s.detached).count();
        let mut referenced = vec![false; n];
        let mut visited = 0usize;
        let mut stack = vec![root];
        referenced[root.index()] = true;
        while let Some(id) = stack.pop() {
            visited += 1;
            let node = slot(id);
            for &c in &node.children {
                let child = slot(c);
                if child.detached {
                    return Err(SnapshotError::at(id, "live node lists a detached child"));
                }
                if child.parent != Some(id) {
                    return Err(SnapshotError::at(c, "child does not name its parent"));
                }
                if matches!(child.label, NodeLabel::Attribute(_)) {
                    return Err(SnapshotError::at(id, "attribute node in the child list"));
                }
                if std::mem::replace(&mut referenced[c.index()], true) {
                    return Err(SnapshotError::at(c, "node referenced twice"));
                }
                stack.push(c);
            }
            for &(attr, a) in &node.attrs {
                let attr_node = slot(a);
                if attr_node.detached {
                    return Err(SnapshotError::at(
                        id,
                        "live node lists a detached attribute",
                    ));
                }
                if attr_node.parent != Some(id) {
                    return Err(SnapshotError::at(a, "attribute does not name its parent"));
                }
                if attr_node.label != NodeLabel::Attribute(attr) {
                    return Err(SnapshotError::at(a, "attribute label mismatch"));
                }
                if std::mem::replace(&mut referenced[a.index()], true) {
                    return Err(SnapshotError::at(a, "node referenced twice"));
                }
                // Attribute nodes are leaves (checked above), nothing to push.
                visited += 1;
            }
        }
        if visited != live {
            return Err(SnapshotError::global(format!(
                "{live} live nodes but {visited} reachable from the root"
            )));
        }

        // All invariants hold: rebuild the arena slot-for-slot.
        let mut pool = ValuePool::new();
        let nodes = snapshot
            .nodes
            .iter()
            .map(|s| Node {
                label: s.label,
                parent: s.parent,
                value: s.value.as_deref().map(|v| pool.intern(v)),
                children: s.children.clone(),
                attrs: s.attrs.clone(),
                detached: s.detached,
            })
            .collect();
        Ok(XmlTree {
            nodes,
            root,
            pool,
            live,
        })
    }

    /// Renders a node path like `teachers/teacher[2]` for diagnostics.
    pub fn path_of(&self, dtd: &Dtd, node: NodeId) -> String {
        let mut segments = Vec::new();
        let mut current = Some(node);
        while let Some(n) = current {
            let seg = match self.label(n) {
                NodeLabel::Element(e) => {
                    let name = dtd.type_name(e).to_string();
                    match self.parent(n) {
                        Some(p) => {
                            let index = self
                                .children(p)
                                .iter()
                                .filter(|&&c| self.element_type(c) == Some(e))
                                .position(|&c| c == n)
                                .unwrap_or(0);
                            format!("{name}[{}]", index + 1)
                        }
                        None => name,
                    }
                }
                NodeLabel::Attribute(a) => format!("@{}", dtd.attr_name(a)),
                NodeLabel::Text => "#text".to_string(),
            };
            segments.push(seg);
            current = self.parent(n);
        }
        segments.reverse();
        segments.join("/")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xic_dtd::example_d1;

    /// Builds the Figure 1 tree of the paper: one teachers root, two
    /// teachers ("Joe" appears twice), each teaching two subjects.
    fn figure1_tree(dtd: &Dtd) -> XmlTree {
        let teachers = dtd.type_by_name("teachers").unwrap();
        let teacher = dtd.type_by_name("teacher").unwrap();
        let teach = dtd.type_by_name("teach").unwrap();
        let research = dtd.type_by_name("research").unwrap();
        let subject = dtd.type_by_name("subject").unwrap();
        let name = dtd.attr_by_name("name").unwrap();
        let taught_by = dtd.attr_by_name("taught_by").unwrap();

        let mut t = XmlTree::new(teachers);
        for _ in 0..2 {
            let te = t.add_element(t.root(), teacher);
            t.set_attr(te, name, "Joe");
            let th = t.add_element(te, teach);
            for subj_name in ["XML", "DB"] {
                let s = t.add_element(th, subject);
                t.set_attr(s, taught_by, "Joe");
                t.add_text(s, subj_name);
            }
            let r = t.add_element(te, research);
            t.add_text(r, "Web DB");
        }
        t
    }

    #[test]
    fn construction_and_navigation() {
        let dtd = example_d1();
        let t = figure1_tree(&dtd);
        let teacher = dtd.type_by_name("teacher").unwrap();
        let subject = dtd.type_by_name("subject").unwrap();
        assert_eq!(t.ext_count(teacher), 2);
        assert_eq!(t.ext_count(subject), 4);
        assert_eq!(t.children(t.root()).len(), 2);
        let first_teacher = t.children(t.root())[0];
        assert_eq!(t.parent(first_teacher), Some(t.root()));
        assert_eq!(t.element_type(first_teacher), Some(teacher));
    }

    #[test]
    fn attribute_access() {
        let dtd = example_d1();
        let t = figure1_tree(&dtd);
        let teacher = dtd.type_by_name("teacher").unwrap();
        let name = dtd.attr_by_name("name").unwrap();
        let first = t.ext(teacher).next().unwrap();
        assert_eq!(t.attr_value(first, name), Some("Joe"));
        assert_eq!(t.attr_values(first, &[name]), Some(vec!["Joe".to_string()]));
        // ext(teacher.name) collapses duplicates: both teachers are "Joe".
        assert_eq!(t.ext_attr(teacher, name).len(), 1);
    }

    #[test]
    fn missing_attribute_is_none() {
        let dtd = example_d1();
        let teachers = dtd.type_by_name("teachers").unwrap();
        let name = dtd.attr_by_name("name").unwrap();
        let t = XmlTree::new(teachers);
        assert_eq!(t.attr_value(t.root(), name), None);
        assert_eq!(t.attr_values(t.root(), &[name]), None);
    }

    #[test]
    fn set_attr_overwrites() {
        let dtd = example_d1();
        let teacher = dtd.type_by_name("teacher").unwrap();
        let name = dtd.attr_by_name("name").unwrap();
        let mut t = XmlTree::new(teacher);
        let a1 = t.set_attr(t.root(), name, "Joe");
        let a2 = t.set_attr(t.root(), name, "Sue");
        assert_eq!(a1, a2);
        assert_eq!(t.attr_value(t.root(), name), Some("Sue"));
        assert_eq!(t.attributes(t.root()).len(), 1);
    }

    #[test]
    fn text_content() {
        let dtd = example_d1();
        let research = dtd.type_by_name("research").unwrap();
        let mut t = XmlTree::new(research);
        t.add_text(t.root(), "Web ");
        t.add_text(t.root(), "DB");
        assert_eq!(t.text_of(t.root()), "Web DB");
    }

    #[test]
    fn values_are_interned_once() {
        let dtd = example_d1();
        let t = figure1_tree(&dtd);
        let teacher = dtd.type_by_name("teacher").unwrap();
        let subject = dtd.type_by_name("subject").unwrap();
        let name = dtd.attr_by_name("name").unwrap();
        let taught_by = dtd.attr_by_name("taught_by").unwrap();
        // "Joe" appears on two teachers and four subjects but is one symbol.
        let teachers: Vec<NodeId> = t.ext(teacher).collect();
        let joe = t.attr_value_id(teachers[0], name).unwrap();
        assert_eq!(t.attr_value_id(teachers[1], name), Some(joe));
        for s in t.ext(subject) {
            assert_eq!(t.attr_value_id(s, taught_by), Some(joe));
        }
        assert_eq!(t.resolve(joe), "Joe");
        assert_eq!(t.pool().get("Joe"), Some(joe));
        // Distinct values: Joe, XML, DB, Web DB.
        assert_eq!(t.pool().len(), 4);
        // Tuple probing through the scratch-buffer API.
        let mut scratch = Vec::new();
        assert!(t.attr_value_ids(teachers[0], &[name], &mut scratch));
        assert_eq!(scratch, vec![joe]);
        assert!(!t.attr_value_ids(t.root(), &[name], &mut scratch));
    }

    #[test]
    fn remove_subtree_detaches_and_keeps_tombstones_readable() {
        let dtd = example_d1();
        let mut t = figure1_tree(&dtd);
        let teacher = dtd.type_by_name("teacher").unwrap();
        let subject = dtd.type_by_name("subject").unwrap();
        let name = dtd.attr_by_name("name").unwrap();
        let before = t.num_nodes();
        let victim = t.ext(teacher).next().unwrap();
        let removed = t.remove_subtree(victim).unwrap();
        // One teacher, one teach, two subjects, one research element removed.
        assert_eq!(removed.len(), 5);
        assert!(removed.contains(&(victim, teacher)));
        assert_eq!(t.ext_count(teacher), 1);
        assert_eq!(t.ext_count(subject), 2);
        // 5 elements + 3 text nodes + 3 attribute nodes are gone.
        assert_eq!(t.num_nodes(), before - 11);
        // The histogram agrees with the extensions.
        assert_eq!(t.type_histogram()[&teacher], 1);
        assert_eq!(t.type_histogram()[&subject], 2);
        // The tombstone keeps its label and values readable…
        assert!(t.is_detached(victim));
        assert_eq!(t.attr_value(victim, name), Some("Joe"));
        // …but is invisible to extensions, and cannot be removed twice.
        assert!(t.ext(teacher).all(|n| n != victim));
        assert!(t.remove_subtree(victim).is_none());
        // The root can never be removed.
        assert!(t.remove_subtree(t.root()).is_none());
    }

    #[test]
    fn snapshot_round_trips_slot_for_slot() {
        let dtd = example_d1();
        let mut t = figure1_tree(&dtd);
        let teacher = dtd.type_by_name("teacher").unwrap();
        let name = dtd.attr_by_name("name").unwrap();
        // Tombstones and post-edit state must survive the round trip too.
        let victim = t.ext(teacher).next().unwrap();
        t.remove_subtree(victim).unwrap();
        let survivor = t.ext(teacher).next().unwrap();
        t.set_attr(survivor, name, "Sue");

        let snap = t.snapshot();
        assert_eq!(snap.num_slots(), 23);
        assert_eq!(snap.live_nodes(), t.num_nodes());
        let rebuilt = XmlTree::from_snapshot(&snap).unwrap();
        // The rebuilt arena is indistinguishable: same snapshot again.
        assert_eq!(rebuilt.snapshot(), snap);
        assert_eq!(rebuilt.num_nodes(), t.num_nodes());
        assert_eq!(rebuilt.root(), t.root());
        assert!(rebuilt.is_detached(victim));
        assert_eq!(rebuilt.attr_value(victim, name), Some("Joe"));
        // Fresh allocations continue from the same slot, so edit replay
        // stays id-exact.
        let mut a = t.clone();
        let mut b = rebuilt;
        assert_eq!(
            a.add_element(a.root(), teacher),
            b.add_element(b.root(), teacher)
        );
    }

    #[test]
    fn hostile_snapshots_are_rejected_structurally() {
        let dtd = example_d1();
        let t = figure1_tree(&dtd);
        let good = t.snapshot();

        // Empty arena.
        let empty = TreeSnapshot {
            nodes: vec![],
            root: NodeId(0),
        };
        assert!(XmlTree::from_snapshot(&empty).is_err());

        // Out-of-range child reference.
        let mut bad = good.clone();
        bad.nodes[0].children.push(NodeId(9999));
        assert!(XmlTree::from_snapshot(&bad).is_err());

        // A cycle: two nodes referencing each other cannot be reachable
        // and parent-consistent at once.
        let mut bad = good.clone();
        let a = bad.nodes[0].children[0];
        bad.nodes[a.index()].children.push(NodeId(0));
        assert!(XmlTree::from_snapshot(&bad).is_err());

        // Value on an element / missing value on text.
        let mut bad = good.clone();
        bad.nodes[0].value = Some("x".into());
        assert!(XmlTree::from_snapshot(&bad).is_err());

        // Detached root.
        let mut bad = good.clone();
        bad.nodes[0].detached = true;
        assert!(XmlTree::from_snapshot(&bad).is_err());

        // A live node referenced twice (shared subtree).
        let mut bad = good;
        let shared = bad.nodes[0].children[0];
        bad.nodes[0].children.push(shared);
        assert!(XmlTree::from_snapshot(&bad).is_err());
    }

    #[test]
    fn histogram_and_paths() {
        let dtd = example_d1();
        let t = figure1_tree(&dtd);
        let hist = t.type_histogram();
        let subject = dtd.type_by_name("subject").unwrap();
        assert_eq!(hist[&subject], 4);
        let second_subject = t.ext(subject).nth(1).unwrap();
        let path = t.path_of(&dtd, second_subject);
        assert!(
            path.starts_with("teachers/teacher[1]/teach[1]/subject[2]"),
            "{path}"
        );
    }
}
