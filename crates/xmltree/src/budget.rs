//! Parse-time resource budgets.
//!
//! A [`ParseBudget`] bounds what [`crate::parser::parse_document_budgeted`]
//! will accept before it has spent the work: input bytes are checked up
//! front, node count and nesting depth are checked as the tree grows, so a
//! hostile document is rejected at the first violation with a structured
//! [`BudgetExceeded`] — never a panic, never an exhausted heap.  The
//! engine's `Limits` type (crate `xic-engine`) builds one of these from its
//! document-facing fields; standalone parser users can construct one
//! directly.  `ParseBudget::default()` is unlimited.

use std::fmt;

use crate::error::XmlError;

/// Upper bounds applied while parsing a document.  `None` means unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParseBudget {
    /// Maximum input length in bytes, checked before parsing starts.
    pub max_bytes: Option<usize>,
    /// Maximum number of tree nodes (elements, attributes and text nodes),
    /// checked as nodes are created.
    pub max_nodes: Option<usize>,
    /// Maximum element nesting depth (the root element is depth 1),
    /// checked as elements open.
    pub max_depth: Option<usize>,
}

impl ParseBudget {
    /// The no-op budget: every field unlimited.
    pub const UNLIMITED: ParseBudget = ParseBudget {
        max_bytes: None,
        max_nodes: None,
        max_depth: None,
    };
}

/// Which [`ParseBudget`] field a rejected document violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseLimit {
    /// [`ParseBudget::max_bytes`].
    Bytes,
    /// [`ParseBudget::max_nodes`].
    Nodes,
    /// [`ParseBudget::max_depth`].
    Depth,
}

impl ParseLimit {
    /// The stable, machine-readable name of the violated field — the same
    /// spelling the engine's limits table and the CLI flags use.
    pub fn name(self) -> &'static str {
        match self {
            ParseLimit::Bytes => "max_doc_bytes",
            ParseLimit::Nodes => "max_doc_nodes",
            ParseLimit::Depth => "max_depth",
        }
    }
}

impl fmt::Display for ParseLimit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A document was rejected because it exceeded a [`ParseBudget`] bound.
///
/// Carries the violated limit by name, the configured bound and the
/// observed value at the moment of rejection (for nodes and depth the
/// first value past the bound — parsing stops there; the document may be
/// arbitrarily larger).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// The violated budget field.
    pub limit: ParseLimit,
    /// The configured bound.
    pub limit_value: usize,
    /// The observed value that tripped the bound.
    pub observed: usize,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "document exceeds {} = {} (observed {})",
            self.limit.name(),
            self.limit_value,
            self.observed
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// Why a budgeted parse failed: a malformed document or a blown budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The document is malformed or uses names outside the DTD.
    Xml(XmlError),
    /// The document is (so far) well-formed but exceeds the budget.
    Budget(BudgetExceeded),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Xml(e) => e.fmt(f),
            ParseError::Budget(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<XmlError> for ParseError {
    fn from(err: XmlError) -> Self {
        ParseError::Xml(err)
    }
}

impl From<BudgetExceeded> for ParseError {
    fn from(err: BudgetExceeded) -> Self {
        ParseError::Budget(err)
    }
}
