//! Typed point edits over [`XmlTree`] — the write surface of the Session API.
//!
//! A long-lived validation session cannot let callers mutate a tree through
//! raw `&mut XmlTree` methods: every index built over the document would be
//! silently invalidated.  Instead, mutations are expressed as [`EditOp`]
//! values and applied through [`XmlTree::apply_edit`], which validates the
//! operation and returns an [`EditEffect`] — a *delta record* carrying
//! exactly the before/after facts an incremental index needs (the displaced
//! attribute value, the removed element list, …).  Sessions collect the
//! effects of every applied edit in an [`EditJournal`].
//!
//! Edits are point edits in the sense of the paper's checking problem: they
//! change `att`/`ele`/`val` at one node (or remove one subtree), never the
//! interpretation of the constraints, so re-checking `T ⊨ Σ` after an edit
//! only has to look at the slots the edit touched.

use std::fmt;

use xic_dtd::{AttrId, ElemId};

use crate::pool::ValueId;
use crate::tree::{NodeId, XmlTree};

/// One point edit of an XML tree.
///
/// Values are carried as strings (the surface type of `val`); interning
/// happens on application, against the tree's own pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditOp {
    /// Set (or add) attribute `attr` of element `element` to `value`.
    SetAttr {
        /// The element whose attribute changes.
        element: NodeId,
        /// The attribute.
        attr: AttrId,
        /// The new string value.
        value: String,
    },
    /// Append a new element of type `ty` under `parent`.
    AddElement {
        /// The parent element.
        parent: NodeId,
        /// The element type of the new child.
        ty: ElemId,
    },
    /// Append a new text child under `parent`.
    AddText {
        /// The parent element.
        parent: NodeId,
        /// The text value.
        value: String,
    },
    /// Remove the whole subtree rooted at `element` (which must not be the
    /// document root).
    RemoveSubtree {
        /// The root of the subtree to remove.
        element: NodeId,
    },
}

/// The recorded consequence of one applied [`EditOp`]: everything an
/// incremental index needs to update itself without re-reading the document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditEffect {
    /// An attribute value was set; `old` is the displaced interned value
    /// (`None` when the attribute is new on this element).
    AttrSet {
        /// The element whose attribute changed.
        element: NodeId,
        /// The element's type.
        ty: ElemId,
        /// The attribute.
        attr: AttrId,
        /// The previous interned value, if the attribute existed.
        old: Option<ValueId>,
        /// The new interned value.
        new: ValueId,
    },
    /// A fresh element was appended (it starts with no attributes).
    ElementAdded {
        /// The new element.
        element: NodeId,
        /// Its element type.
        ty: ElemId,
        /// Its parent.
        parent: NodeId,
    },
    /// A text node was appended (invisible to attribute-based constraints).
    TextAdded {
        /// The new text node.
        node: NodeId,
        /// Its parent element.
        parent: NodeId,
    },
    /// A subtree was removed; `elements` lists every removed element with
    /// its type, in ascending id order.  The tombstoned nodes keep their
    /// attribute values readable for retraction.
    SubtreeRemoved {
        /// The root of the removed subtree.
        root: NodeId,
        /// Every removed element node, with its type.
        elements: Vec<(NodeId, ElemId)>,
    },
}

/// Why an [`EditOp`] was rejected (the tree is unchanged).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditError {
    /// The named node does not exist in the tree.
    UnknownNode(NodeId),
    /// The named node exists but is not an element.
    NotAnElement(NodeId),
    /// The named node was already removed by an earlier edit.
    Detached(NodeId),
    /// The document root cannot be removed.
    RemoveRoot,
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::UnknownNode(n) => write!(f, "node #{} does not exist", n.index()),
            EditError::NotAnElement(n) => write!(f, "node #{} is not an element", n.index()),
            EditError::Detached(n) => write!(f, "node #{} was already removed", n.index()),
            EditError::RemoveRoot => write!(f, "the document root cannot be removed"),
        }
    }
}

impl std::error::Error for EditError {}

/// The ordered log of edits applied to one document: each entry pairs the
/// submitted [`EditOp`] with the [`EditEffect`] its application produced.
///
/// The journal is the complete edit history since the document was opened,
/// minus any prefix explicitly [`EditJournal::compact`]ed away *after it
/// became durable elsewhere* (written to a delta log, or folded into a
/// persisted base snapshot).  Storing the *ops* (not just the effects)
/// makes the journal replayable: applying [`EditJournal::ops`] in order to
/// a copy of the original tree reproduces the edited tree node-for-node
/// (the arena allocates ids deterministically), which is what close/re-open
/// recovery, crash recovery from a persisted log, and shipping a delta log
/// to another replica (cf. distributed XML design) all rest on.
#[derive(Debug, Clone, Default)]
pub struct EditJournal {
    entries: Vec<(EditOp, EditEffect)>,
    /// Edits recorded before `entries[0]` that were compacted away: they
    /// are durable in a log or folded into a base snapshot, so the global
    /// index of `entries[i]` is `folded + i`.
    folded: u64,
}

impl EditJournal {
    /// An empty journal.
    pub fn new() -> EditJournal {
        EditJournal::default()
    }

    /// A journal whose oldest `folded` edits are already durable elsewhere
    /// (folded into a recovered base snapshot or replayed from a log):
    /// entries recorded from here on carry global indices `folded`,
    /// `folded + 1`, ….  This is how crash recovery re-opens a document
    /// without re-materialising its pre-snapshot history.
    pub fn with_folded(folded: u64) -> EditJournal {
        EditJournal {
            entries: Vec::new(),
            folded,
        }
    }

    /// Appends one applied edit with the effect it produced.
    pub fn record(&mut self, op: EditOp, effect: EditEffect) {
        self.entries.push((op, effect));
    }

    /// Drops every retained entry whose global index is below
    /// `durable_total` — i.e. the edits already persisted to a delta log or
    /// folded into a durable base snapshot — and returns how many were
    /// dropped.  Long-lived sessions call this (via `Session::compact`)
    /// after persisting so the in-memory journal holds only the
    /// not-yet-durable suffix instead of growing without bound; recovery
    /// still round-trips node-for-node because the log retains the full
    /// history.
    pub fn compact(&mut self, durable_total: u64) -> usize {
        let droppable = durable_total.saturating_sub(self.folded);
        let drop = (droppable.min(self.entries.len() as u64)) as usize;
        self.entries.drain(..drop);
        self.folded += drop as u64;
        drop
    }

    /// Edits dropped by [`EditJournal::compact`] (they precede
    /// [`EditJournal::entries`] in the global numbering).
    pub fn folded(&self) -> u64 {
        self.folded
    }

    /// Total edits ever recorded: the compacted prefix plus the retained
    /// entries.
    pub fn total_recorded(&self) -> u64 {
        self.folded + self.entries.len() as u64
    }

    /// Number of retained (not compacted) edits.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the journal retains no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The retained `(op, effect)` entries, oldest first (entry `i` has
    /// global index [`EditJournal::folded`]` + i`).
    pub fn entries(&self) -> &[(EditOp, EditEffect)] {
        &self.entries
    }

    /// The recorded ops, oldest first — the replayable half of the log.
    pub fn ops(&self) -> impl Iterator<Item = &EditOp> {
        self.entries.iter().map(|(op, _)| op)
    }

    /// The recorded effects, oldest first.
    pub fn effects(&self) -> impl Iterator<Item = &EditEffect> {
        self.entries.iter().map(|(_, effect)| effect)
    }

    /// Iterates over the recorded entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &(EditOp, EditEffect)> {
        self.entries.iter()
    }
}

impl XmlTree {
    /// Requires `node` to be a live element, classifying the failure.
    fn expect_live_element(&self, node: NodeId) -> Result<ElemId, EditError> {
        if !self.contains(node) {
            return Err(EditError::UnknownNode(node));
        }
        if self.is_detached(node) {
            return Err(EditError::Detached(node));
        }
        self.element_type(node).ok_or(EditError::NotAnElement(node))
    }

    /// Validates and applies one [`EditOp`], returning the [`EditEffect`]
    /// describing what changed.  On error the tree is untouched.
    ///
    /// This is the only mutation entry point the Session API uses: the
    /// effect captures the displaced state (old attribute value, removed
    /// element list), so index maintenance never has to diff the tree.
    pub fn apply_edit(&mut self, op: &EditOp) -> Result<EditEffect, EditError> {
        match op {
            EditOp::SetAttr {
                element,
                attr,
                value,
            } => {
                let ty = self.expect_live_element(*element)?;
                let old = self.attr_value_id(*element, *attr);
                self.set_attr(*element, *attr, value);
                let new = self
                    .attr_value_id(*element, *attr)
                    .expect("attribute was just set");
                Ok(EditEffect::AttrSet {
                    element: *element,
                    ty,
                    attr: *attr,
                    old,
                    new,
                })
            }
            EditOp::AddElement { parent, ty } => {
                self.expect_live_element(*parent)?;
                let element = self.add_element(*parent, *ty);
                Ok(EditEffect::ElementAdded {
                    element,
                    ty: *ty,
                    parent: *parent,
                })
            }
            EditOp::AddText { parent, value } => {
                self.expect_live_element(*parent)?;
                let node = self.add_text(*parent, value);
                Ok(EditEffect::TextAdded {
                    node,
                    parent: *parent,
                })
            }
            EditOp::RemoveSubtree { element } => {
                self.expect_live_element(*element)?;
                if *element == self.root() {
                    return Err(EditError::RemoveRoot);
                }
                let elements = self
                    .remove_subtree(*element)
                    .expect("validated live non-root element");
                Ok(EditEffect::SubtreeRemoved {
                    root: *element,
                    elements,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xic_dtd::example_d1;

    #[test]
    fn effects_capture_displaced_state() {
        let dtd = example_d1();
        let teachers = dtd.type_by_name("teachers").unwrap();
        let teacher = dtd.type_by_name("teacher").unwrap();
        let name = dtd.attr_by_name("name").unwrap();
        let mut t = XmlTree::new(teachers);
        let mut journal = EditJournal::new();

        let add_op = EditOp::AddElement {
            parent: t.root(),
            ty: teacher,
        };
        let added = t.apply_edit(&add_op).unwrap();
        let EditEffect::ElementAdded { element, .. } = added else {
            panic!("expected ElementAdded, got {added:?}");
        };
        journal.record(add_op, added.clone());

        let first = t
            .apply_edit(&EditOp::SetAttr {
                element,
                attr: name,
                value: "Joe".into(),
            })
            .unwrap();
        assert!(
            matches!(first, EditEffect::AttrSet { old: None, .. }),
            "{first:?}"
        );
        let second = t
            .apply_edit(&EditOp::SetAttr {
                element,
                attr: name,
                value: "Sue".into(),
            })
            .unwrap();
        let EditEffect::AttrSet {
            old: Some(old),
            new,
            ..
        } = second
        else {
            panic!("expected displaced value, got {second:?}");
        };
        assert_eq!(t.resolve(old), "Joe");
        assert_eq!(t.resolve(new), "Sue");

        let remove_op = EditOp::RemoveSubtree { element };
        let removed = t.apply_edit(&remove_op).unwrap();
        assert!(
            matches!(&removed, EditEffect::SubtreeRemoved { elements, .. }
                if elements == &vec![(element, teacher)])
        );
        journal.record(remove_op, removed);
        assert_eq!(journal.len(), 2);
        assert_eq!(journal.ops().count(), 2);
        assert_eq!(journal.effects().count(), 2);
        assert!(matches!(
            journal.entries()[0],
            (EditOp::AddElement { .. }, EditEffect::ElementAdded { .. })
        ));
    }

    #[test]
    fn compaction_drops_only_the_durable_prefix() {
        let dtd = example_d1();
        let teachers = dtd.type_by_name("teachers").unwrap();
        let teacher = dtd.type_by_name("teacher").unwrap();
        let mut t = XmlTree::new(teachers);
        let mut journal = EditJournal::new();
        for _ in 0..4 {
            let op = EditOp::AddElement {
                parent: t.root(),
                ty: teacher,
            };
            let effect = t.apply_edit(&op).unwrap();
            journal.record(op, effect);
        }
        assert_eq!(journal.total_recorded(), 4);

        // Only the durable prefix can go; the rest stays addressable.
        assert_eq!(journal.compact(2), 2);
        assert_eq!(journal.len(), 2);
        assert_eq!(journal.folded(), 2);
        assert_eq!(journal.total_recorded(), 4);
        // Compacting below what is already folded is a no-op.
        assert_eq!(journal.compact(1), 0);
        // A durable watermark beyond the recorded history drains everything
        // recorded, and no more.
        assert_eq!(journal.compact(100), 2);
        assert_eq!(journal.folded(), 4);
        assert!(journal.is_empty());
        assert_eq!(journal.total_recorded(), 4);

        // Recovery-style journals start with a folded base.
        let resumed = EditJournal::with_folded(7);
        assert_eq!(resumed.folded(), 7);
        assert_eq!(resumed.total_recorded(), 7);
        assert!(resumed.is_empty());
    }

    #[test]
    fn invalid_ops_are_rejected_and_change_nothing() {
        let dtd = example_d1();
        let teachers = dtd.type_by_name("teachers").unwrap();
        let teacher = dtd.type_by_name("teacher").unwrap();
        let mut t = XmlTree::new(teachers);
        let child = t.add_element(t.root(), teacher);
        let text = t.add_text(child, "hello");
        let nodes_before = t.num_nodes();

        assert_eq!(
            t.apply_edit(&EditOp::RemoveSubtree { element: t.root() }),
            Err(EditError::RemoveRoot)
        );
        assert_eq!(
            t.apply_edit(&EditOp::AddElement {
                parent: text,
                ty: teacher
            }),
            Err(EditError::NotAnElement(text))
        );
        assert_eq!(
            t.apply_edit(&EditOp::AddElement {
                parent: NodeId(9999),
                ty: teacher
            }),
            Err(EditError::UnknownNode(NodeId(9999)))
        );
        t.apply_edit(&EditOp::RemoveSubtree { element: child })
            .unwrap();
        assert_eq!(
            t.apply_edit(&EditOp::AddElement {
                parent: child,
                ty: teacher
            }),
            Err(EditError::Detached(child))
        );
        assert_eq!(t.num_nodes(), nodes_before - 2);
    }
}
