//! Recombining per-shard projected commit streams into one monolithic
//! verdict — the merge half of multi-process sharded validation.
//!
//! A coordinator fans a [`crate::CorpusSession`] workload out to shard
//! workers: each worker runs a session scoped with
//! [`crate::CorpusSession::scope_to_shards`], so its [`DocChange`] frames
//! carry only the Σ violations of its own shards (plus the
//! shard-independent structural errors and faults every worker recomputes).
//! [`ReportMerger`] is the inverse operation: it holds one violation slice
//! per shard and the structural view of a designated *authority* worker
//! (one that receives every edit batch, so its `T ⊨ D` errors are always
//! current), and recombines them into reports and [`BatchDelta`]s equal to
//! what one unscoped monolithic session would have produced:
//!
//! * Σ violations are unioned by shard partition and re-interleaved into
//!   global Σ order through [`ShardPlan::order_of_rendered`] (verdict
//!   extraction emits at most one violation per constraint, in Σ order, so
//!   a stable sort on that key is exact);
//! * structural errors and faults arrive from *every* worker that saw the
//!   batch (broadcasts most of all), and are deduplicated by taking the
//!   authority's copy once — never counted per shard;
//! * per-document clean/violating state, corpus totals, transitions and
//!   [`crate::DeltaSummary`] tallies are recomputed from the merged
//!   reports, so the merged stream satisfies every
//!   [`crate::CorpusReplica::apply_delta`] invariant and replays through a
//!   stock replica.
//!
//! `tests/coord_agreement.rs` holds the merged output witness-identical to
//! a monolithic [`crate::CorpusSession`] oracle across the `xic-gen`
//! workload families.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use xic_constraints::{ShardPlan, Violation};

use crate::batch::{BatchReport, DocFault, DocReport};
use crate::corpus::{BatchDelta, ClosedDoc, DocChange};
use crate::session::DocHandle;

/// One document's merge state: the authority's structural view plus one Σ
/// violation slice per shard, and the last merged report the stream
/// announced.
#[derive(Debug)]
struct MergeDoc {
    label: String,
    /// Structural `T ⊨ D` errors, from the authority worker's last change.
    validation_errors: Vec<String>,
    /// Contained per-document fault, from the authority worker.
    fault: Option<DocFault>,
    /// Σ violations keyed by the shard that owns their constraint.
    slices: BTreeMap<u32, Vec<Violation>>,
    /// Clean state as of the last merged commit (`None` before it).
    committed_clean: Option<bool>,
    /// The last merged report announced for this document.
    report: Option<DocReport>,
}

/// Merges per-shard [`DocChange`] frames back into monolithic reports and
/// deltas (see the module docs for the exact semantics).
///
/// Drive it like the session it mirrors: [`ReportMerger::open`] /
/// [`ReportMerger::close`] when documents open and close,
/// [`ReportMerger::absorb`] for every change a worker's commit returned,
/// then [`ReportMerger::commit`] to mint the merged delta.
#[derive(Debug)]
pub struct ReportMerger {
    plan: Arc<ShardPlan>,
    /// Open documents in handle (= open) order.
    docs: BTreeMap<u64, MergeDoc>,
    /// Open documents whose merged committed state is clean.
    clean_docs: usize,
    /// Documents closed since the last merged commit, in close order.
    closed: Vec<ClosedDoc>,
    /// Handles some worker reported a change for since the last commit.
    touched: BTreeSet<u64>,
    /// Merged commit counter (the first merged delta is `seq` 1).
    seq: u64,
}

impl ReportMerger {
    /// An empty merger over the spec's shard plan.
    pub fn new(plan: Arc<ShardPlan>) -> ReportMerger {
        ReportMerger {
            plan,
            docs: BTreeMap::new(),
            clean_docs: 0,
            closed: Vec::new(),
            touched: BTreeSet::new(),
            seq: 0,
        }
    }

    /// Registers a newly opened document.  Handles must arrive in open
    /// order (they are the coordinator's, minted monotonically).
    pub fn open(&mut self, handle: DocHandle, label: &str) {
        let previous = self.docs.insert(
            handle.raw(),
            MergeDoc {
                label: label.to_owned(),
                validation_errors: Vec::new(),
                fault: None,
                slices: BTreeMap::new(),
                committed_clean: None,
                report: None,
            },
        );
        assert!(previous.is_none(), "merge: {handle} opened twice");
    }

    /// Registers a close; it is announced by the next merged delta.
    pub fn close(&mut self, handle: DocHandle) {
        let doc = self
            .docs
            .remove(&handle.raw())
            .unwrap_or_else(|| panic!("merge: close of unknown {handle}"));
        if doc.committed_clean == Some(true) {
            self.clean_docs -= 1;
        }
        self.touched.remove(&handle.raw());
        self.closed.push(ClosedDoc {
            handle,
            label: doc.label,
        });
    }

    /// Folds one worker's [`DocChange`] in: the change's violations replace
    /// this worker's slices (`worker_shards` — the scope the worker runs
    /// under; its projected report is complete for that scope, so shards it
    /// reports nothing for are now clean).  When the change comes from the
    /// authority worker, its structural errors and fault replace the merged
    /// structural view; every other worker's copy of the same broadcast is
    /// dropped here — the dedup that keeps structural errors counted once.
    pub fn absorb(&mut self, worker_shards: &[u32], authority: bool, change: &DocChange) {
        let doc = self
            .docs
            .get_mut(&change.handle.raw())
            .unwrap_or_else(|| panic!("merge: change for unknown {}", change.handle));
        for &shard in worker_shards {
            doc.slices.remove(&shard);
        }
        for violation in &change.report.violations {
            let shard = self
                .plan
                .shard_of_rendered(violation.constraint())
                .unwrap_or_else(|| {
                    panic!(
                        "merge: violation of unknown constraint `{}`",
                        violation.constraint()
                    )
                });
            assert!(
                worker_shards.contains(&shard),
                "merge: worker scoped to {worker_shards:?} reported a shard-{shard} violation"
            );
            doc.slices.entry(shard).or_default().push(violation.clone());
        }
        if authority {
            doc.validation_errors = change.report.validation_errors.clone();
            doc.fault = change.report.fault.clone();
        }
        self.touched.insert(change.handle.raw());
    }

    /// Mints the merged delta for one commit round, after every
    /// participating worker's delta was [`ReportMerger::absorb`]ed.
    ///
    /// `rechecked_docs` is the coordinator's dirty-set size (the documents
    /// the round re-checked — same accounting as the monolithic session);
    /// `dirty_shards` maps a handle to the shards its edits dirtied since
    /// the last commit, the tag a non-broadcast change carries.  Opens,
    /// structural-error or fault churn are broadcast-tagged, exactly like
    /// [`crate::CorpusSession::commit`].
    pub fn commit(
        &mut self,
        rechecked_docs: usize,
        dirty_shards: &BTreeMap<u64, Vec<u32>>,
    ) -> BatchDelta {
        let plan = Arc::clone(&self.plan);
        let touched = std::mem::take(&mut self.touched);
        let closed = std::mem::take(&mut self.closed);
        let mut changes: Vec<DocChange> = Vec::new();
        // Open-order positions after the round's closes, monolith-style.
        let positions: BTreeMap<u64, usize> = self
            .docs
            .keys()
            .enumerate()
            .map(|(position, &raw)| (raw, position))
            .collect();
        for &raw in &touched {
            let doc = self
                .docs
                .get_mut(&raw)
                .expect("touched handles are open: close() untouches");
            let mut violations: Vec<Violation> = doc.slices.values().flatten().cloned().collect();
            // Stable: equal keys (duplicate renders share a shard) keep
            // their slice order, which is their Σ order.
            violations.sort_by_key(|v| {
                plan.order_of_rendered(v.constraint())
                    .expect("absorbed violations name known constraints")
            });
            let fresh = DocReport {
                index: positions[&raw],
                label: doc.label.clone(),
                parse_error: None,
                validation_errors: doc.validation_errors.clone(),
                violations,
                fault: doc.fault.clone(),
            };
            let was_clean = doc.committed_clean;
            let now_clean = fresh.is_clean();
            let (changed, structural_churn) = match &doc.report {
                None => (true, true),
                Some(previous) => (
                    previous.validation_errors != fresh.validation_errors
                        || previous.violations != fresh.violations
                        || previous.fault != fresh.fault,
                    previous.validation_errors != fresh.validation_errors
                        || previous.fault != fresh.fault,
                ),
            };
            if !changed {
                continue;
            }
            match (was_clean, now_clean) {
                (Some(true), false) => self.clean_docs -= 1,
                (Some(false), true) | (None, true) => self.clean_docs += 1,
                _ => {}
            }
            doc.committed_clean = Some(now_clean);
            doc.report = Some(fresh.clone());
            let broadcast = was_clean.is_none() || structural_churn;
            changes.push(DocChange {
                handle: DocHandle::new(raw),
                was_clean,
                report: fresh,
                shards: if broadcast {
                    plan.all_shards().collect()
                } else {
                    let mut shards = dirty_shards.get(&raw).cloned().unwrap_or_default();
                    shards.sort_unstable();
                    shards.dedup();
                    shards
                },
            });
        }
        changes.sort_by_key(|c| c.handle);
        self.seq += 1;
        let mut delta_shards: BTreeSet<u32> = changes
            .iter()
            .flat_map(|c| c.shards.iter().copied())
            .collect();
        if !closed.is_empty() {
            delta_shards.extend(self.plan.all_shards());
        }
        BatchDelta {
            seq: self.seq,
            changes,
            closed,
            rechecked_docs,
            total: self.docs.len(),
            clean: self.clean_docs,
            shards: delta_shards.into_iter().collect(),
        }
    }

    /// The merged corpus report — ordered and shaped exactly like the
    /// monolithic [`crate::CorpusSession::report`].
    ///
    /// # Panics
    /// Panics if changes were absorbed (or documents opened) without a
    /// [`ReportMerger::commit`] to announce them, mirroring the session.
    pub fn report(&self) -> BatchReport {
        assert!(
            self.touched.is_empty(),
            "merged report requires a commit after every absorbed change"
        );
        let reports = self
            .docs
            .values()
            .enumerate()
            .map(|(position, doc)| {
                let mut report = doc
                    .report
                    .clone()
                    .expect("committed documents always carry a merged report");
                report.index = position;
                report
            })
            .collect();
        BatchReport::from_reports(reports)
    }

    /// The last merged sequence number (0 before the first commit).
    pub fn last_seq(&self) -> u64 {
        self.seq
    }

    /// Open documents.
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }

    /// The merged clean state of one open document as of the last commit.
    pub fn committed_clean(&self, handle: DocHandle) -> Option<bool> {
        self.docs.get(&handle.raw()).and_then(|d| d.committed_clean)
    }
}
