//! # xic-engine — compile-once / check-many front end for the reproduction
//!
//! The decision procedures of Fan & Libkin are defined over a *fixed*
//! specification `(D, Σ)`, but real workloads check many documents and many
//! implication queries against few specifications.  This crate is the
//! production entry point that exploits that shape:
//!
//! * [`CompiledSpec`] — parses and validates a `(DTD, Σ)` pair **once**,
//!   precomputing the [`xic_dtd::SimpleDtd`] rewriting, the per-element
//!   Glushkov automata, the constraint-class classification, the
//!   satisfaction [`xic_constraints::IndexPlan`], and (for the decidable
//!   unary classes) the cardinality system Ψ(D,Σ) — all behind a cheap
//!   content-hash [`SpecId`];
//! * [`VerdictCache`] — a thread-safe (RwLock + LRU, std-only) memo of
//!   consistency and implication verdicts keyed by `(spec, query)` hashes,
//!   with hit/miss statistics for benchmarks;
//! * [`BatchEngine`] — a `std::thread` worker pool that validates N
//!   documents against one compiled spec in parallel and aggregates
//!   per-document reports deterministically (ordered by input index, so a
//!   multi-threaded run renders byte-identically to a sequential one);
//! * [`Session`] — long-lived document sessions: open a document once,
//!   mutate it through typed [`xic_xml::EditOp`]s, and get a fresh verdict
//!   after every edit batch at O(edit) cost — the incremental indexes
//!   ([`xic_constraints::IncrementalIndex`]) are maintained under each
//!   edit instead of rebuilt, with witnesses identical to a full rebuild;
//!   the slot/watcher/touch-map layout they populate is derived once per
//!   spec ([`xic_constraints::IncrementalLayout`], stored on the
//!   [`CompiledSpec`]), not once per document;
//! * [`CorpusSession`] — the corpus-scale session: many open documents
//!   sharing one spec and one value pool, per-document dirty tracking,
//!   commits that re-check only edited documents, and a [`BatchDelta`]
//!   diff stream (clean ↔ violating flips with structured witnesses) for
//!   subscribers;
//! * [`journal`] — durable edit journals: a versioned binary delta-log
//!   format with CRC'd, torn-tail-tolerant records; [`Session::persist_to`]
//!   / [`Session::recover_from`] crash recovery, [`CorpusReplica`] replicas
//!   reconstructing corpus verdicts from [`BatchDelta`]s alone, and the
//!   `xic journal` CLI surface on top;
//! * [`Engine`] — the façade combining a cache with the checkers, exposing
//!   memoized [`Engine::consistency`] and [`Engine::implication`];
//! * [`metrics`] — the observability surface: every layer above records
//!   counters, gauges and latency histograms into a
//!   [`xic_telemetry::MetricsRegistry`] (the process-global one by default;
//!   any registry via the `with_registry` constructors), and
//!   [`EngineMetrics`] freezes a registry into the snapshot behind the
//!   CLI's `--metrics` flag and `xic stats`.
//!
//! ```
//! use xic_engine::{BatchDoc, BatchEngine, CompiledSpec, Engine};
//!
//! let spec = CompiledSpec::from_sources(
//!     "<!ELEMENT school (teacher*)>\n\
//!      <!ELEMENT teacher EMPTY>\n\
//!      <!ATTLIST teacher name CDATA #REQUIRED>",
//!     Some("school"),
//!     "teacher.name -> teacher",
//! )
//! .unwrap();
//!
//! let engine = Engine::new();
//! let verdict = engine.consistency(&spec);
//! assert_eq!(verdict.decision(), Some(true));
//! // Second call is a cache hit — no ILP solve, no witness synthesis.
//! let again = engine.consistency(&spec);
//! assert_eq!(again, verdict);
//! assert_eq!(engine.cache().stats().hits, 1);
//!
//! let docs = vec![BatchDoc::new(
//!     "doc-0",
//!     "<school><teacher name=\"Joe\"/><teacher name=\"Ann\"/></school>",
//! )];
//! let report = BatchEngine::new(2).validate_batch(&spec, &docs);
//! assert!(report.reports()[0].is_clean());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod cache;
pub mod corpus;
pub mod hash;
pub mod journal;
pub mod limits;
pub mod merge;
pub mod metrics;
pub mod session;
pub mod spec;
pub mod wire;

pub use batch::{BatchDoc, BatchEngine, BatchReport, DocFault, DocReport};
pub use cache::{CacheKey, CacheStats, QueryHash, Verdict, VerdictCache};
pub use corpus::{
    project_doc_report, project_report, BatchDelta, ClosedDoc, CorpusSession, DeltaSummary,
    DocChange, Transition,
};
pub use hash::{fnv1a, fnv1a_parts, fnv1a_parts_wide};
pub use journal::{
    append_delta_log, inspect_log, read_delta_log, read_session_log, write_delta_log,
    CorpusReplica, DeltaLog, JournalError, LogKind, LogSummary, PersistReceipt, RecordSummary,
    SessionLog,
};
pub use limits::{LimitKind, Limits, RejectedOp, ResourceError};
pub use merge::ReportMerger;
pub use metrics::{register_baseline, EngineMetrics};
pub use session::{DocHandle, Recovery, Session, SessionError, SessionVerdict};
pub use spec::{CompileError, CompiledSpec, ParseSpecIdError, SpecId};
pub use wire::{Request, Response, WireError, WireFault};
pub use xic_constraints::ShardPlan;

use std::sync::Arc;

use xic_constraints::Constraint;
use xic_telemetry::MetricsRegistry;

/// The façade tying a [`VerdictCache`] to the decision procedures: every
/// check is memoized under the spec's content hash, so repeat checks of the
/// same specification cost one cache lookup.
#[derive(Debug, Default)]
pub struct Engine {
    cache: VerdictCache,
}

impl Engine {
    /// An engine with the default cache capacity.
    pub fn new() -> Engine {
        Engine::default()
    }

    /// An engine whose cache holds at most `capacity` verdicts.
    pub fn with_cache_capacity(capacity: usize) -> Engine {
        Engine {
            cache: VerdictCache::with_capacity(capacity),
        }
    }

    /// An engine whose cache records into `registry` (e.g.
    /// [`EngineMetrics::global_registry`], so `xic stats` and `--metrics`
    /// see cache traffic).  The default constructors use a private registry
    /// instead, keeping each engine's statistics isolated.
    pub fn with_registry(capacity: usize, registry: Arc<MetricsRegistry>) -> Engine {
        Engine {
            cache: VerdictCache::with_registry(capacity, registry),
        }
    }

    /// The underlying cache (for statistics and explicit invalidation).
    pub fn cache(&self) -> &VerdictCache {
        &self.cache
    }

    /// Memoized consistency of the compiled specification.
    pub fn consistency(&self, spec: &CompiledSpec) -> Verdict {
        let key = CacheKey::consistency(spec.id());
        self.cache
            .get_or_compute(key, || Verdict::from_consistency(&spec.check_consistency()))
    }

    /// Memoized implication `(D, Σ) ⊢ φ`.
    pub fn implication(&self, spec: &CompiledSpec, phi: &Constraint) -> Verdict {
        // Validate before hashing: rendering a constraint built for another
        // DTD would index out of bounds, and the uncached path only guards
        // inside the checker.
        if let Err(err) = phi.validate(spec.dtd()) {
            return Verdict::error(err.to_string());
        }
        let key = CacheKey::implication(spec.id(), QueryHash::of_constraint(spec.dtd(), phi));
        self.cache
            .get_or_compute(key, || match spec.check_implication(phi) {
                Ok(outcome) => Verdict::from_implication(&outcome),
                Err(err) => Verdict::error(err.to_string()),
            })
    }
}
