//! Resource governance: budgets, backpressure and structured rejection.
//!
//! A [`Limits`] value is the contract between the engine and a caller that
//! cannot afford unbounded work: every admission point — parsing
//! ([`crate::CompiledSpec::parse_document_budgeted`]), session edits
//! ([`crate::Session::apply`]), corpus admission and commit
//! ([`crate::CorpusSession`]) — checks its bounds **before** doing the work
//! and answers an over-budget request with a structured [`ResourceError`],
//! never a panic and never a partial application.  The error carries the
//! violated limit by name, both sides of the comparison, and a
//! [`RejectedOp`] echo of the operations that were turned away, so a caller
//! can shed load, split the batch, or retry after a commit.
//!
//! The default ([`Limits::UNLIMITED`]) checks nothing and costs a handful
//! of `Option` tests per admission — see the `resilience_overhead` bench,
//! which holds that tax (with every failpoint disabled) to ≤ 3% of corpus
//! commit latency.

use std::fmt;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use xic_telemetry::Counter;
use xic_xml::budget::{BudgetExceeded, ParseBudget, ParseLimit};
use xic_xml::{EditOp, NodeId, XmlTree};

/// Upper bounds on what the engine will accept.  `None` means unlimited.
///
/// The document-facing fields (`max_doc_bytes`, `max_doc_nodes`,
/// `max_depth`) are enforced by the parser (via [`Limits::parse_budget`])
/// and again on edits that grow a document; the queue-facing fields bound
/// a [`crate::CorpusSession`]'s admission; `deadline` soft-bounds a commit
/// or batch — work already done is kept, work not yet started is rejected
/// (commits resume where they stopped on the next call).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Limits {
    /// Maximum document source length in bytes, checked before parsing.
    pub max_doc_bytes: Option<usize>,
    /// Maximum nodes (elements, attributes, text) per document, checked at
    /// parse and on node-creating edits.
    pub max_doc_nodes: Option<usize>,
    /// Maximum element nesting depth (root = 1), checked at parse and on
    /// child-creating edits.
    pub max_depth: Option<usize>,
    /// Maximum uncommitted edit ops queued in a [`crate::CorpusSession`]
    /// (across all dirty documents); also bounds a single
    /// [`crate::Session::apply`] batch.
    pub max_queued_ops: Option<usize>,
    /// Maximum dirty (edited-but-uncommitted) documents in a
    /// [`crate::CorpusSession`]; opening or editing past it is rejected
    /// until a commit drains the set.
    pub max_dirty_docs: Option<usize>,
    /// Soft deadline for one commit or batch run.  Work is never cut off
    /// mid-document; the first document that would *start* past the
    /// deadline is where processing stops.
    pub deadline: Option<Duration>,
}

impl Limits {
    /// The no-op contract: every field unlimited.
    pub const UNLIMITED: Limits = Limits {
        max_doc_bytes: None,
        max_doc_nodes: None,
        max_depth: None,
        max_queued_ops: None,
        max_dirty_docs: None,
        deadline: None,
    };

    /// Whether every field is unlimited (the default).
    pub fn is_unlimited(&self) -> bool {
        *self == Limits::UNLIMITED
    }

    /// The parser-facing slice of these limits.
    pub fn parse_budget(&self) -> ParseBudget {
        ParseBudget {
            max_bytes: self.max_doc_bytes,
            max_nodes: self.max_doc_nodes,
            max_depth: self.max_depth,
        }
    }
}

/// Which [`Limits`] field a rejected request violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LimitKind {
    /// [`Limits::max_doc_bytes`].
    DocBytes,
    /// [`Limits::max_doc_nodes`].
    DocNodes,
    /// [`Limits::max_depth`].
    NestingDepth,
    /// [`Limits::max_queued_ops`].
    QueuedOps,
    /// [`Limits::max_dirty_docs`].
    DirtyDocs,
    /// [`Limits::deadline`].
    Deadline,
}

impl LimitKind {
    /// Stable machine-readable name, shared with the CLI flags and the
    /// README limits table.
    pub fn name(self) -> &'static str {
        match self {
            LimitKind::DocBytes => "max_doc_bytes",
            LimitKind::DocNodes => "max_doc_nodes",
            LimitKind::NestingDepth => "max_depth",
            LimitKind::QueuedOps => "max_queued_ops",
            LimitKind::DirtyDocs => "max_dirty_docs",
            LimitKind::Deadline => "deadline_ms",
        }
    }
}

impl fmt::Display for LimitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl From<ParseLimit> for LimitKind {
    fn from(limit: ParseLimit) -> LimitKind {
        match limit {
            ParseLimit::Bytes => LimitKind::DocBytes,
            ParseLimit::Nodes => LimitKind::DocNodes,
            ParseLimit::Depth => LimitKind::NestingDepth,
        }
    }
}

/// One edit operation turned away by an over-budget admission, echoed back
/// so the caller can retry it after shedding load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RejectedOp {
    /// Position of the op in the submitted batch.
    pub index: usize,
    /// The op itself, unapplied.
    pub op: EditOp,
}

/// A request was rejected because it would exceed a [`Limits`] bound.
///
/// Rejection is all-or-nothing: when an edit batch trips a limit, **no op
/// of the batch has been applied** (unlike [`xic_xml::EditError`], which
/// reports a failure after applying the preceding prefix) — the batch comes
/// back whole in `rejected` and the document is untouched, so "reject and
/// retry later" is always safe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceError {
    /// The violated limit.
    pub limit: LimitKind,
    /// The configured bound (milliseconds for [`LimitKind::Deadline`]).
    pub limit_value: u64,
    /// The observed value that tripped the bound.
    pub observed: u64,
    /// Human-readable site of the rejection (document label, "commit", …).
    pub context: String,
    /// The ops that were turned away, unapplied (empty for non-edit
    /// rejections such as parse budgets and deadlines).
    pub rejected: Vec<RejectedOp>,
}

impl ResourceError {
    /// Builds a rejection and records it in the global
    /// `resilience.rejections` counters (aggregate + per-limit).
    pub(crate) fn new(
        limit: LimitKind,
        limit_value: u64,
        observed: u64,
        context: impl Into<String>,
    ) -> ResourceError {
        note_rejection(limit);
        ResourceError {
            limit,
            limit_value,
            observed,
            context: context.into(),
            rejected: Vec::new(),
        }
    }

    /// Attaches the echoed, unapplied ops.
    pub(crate) fn with_rejected(mut self, rejected: Vec<RejectedOp>) -> ResourceError {
        self.rejected = rejected;
        self
    }

    /// Converts a parser budget rejection, keeping the limit name.
    pub(crate) fn from_budget(b: BudgetExceeded, context: impl Into<String>) -> ResourceError {
        ResourceError::new(
            b.limit.into(),
            b.limit_value as u64,
            b.observed as u64,
            context,
        )
    }
}

impl fmt::Display for ResourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "resource limit exceeded: {} = {}, observed {} ({})",
            self.limit.name(),
            self.limit_value,
            self.observed,
            self.context
        )?;
        if !self.rejected.is_empty() {
            write!(f, "; {} op(s) rejected unapplied", self.rejected.len())?;
        }
        Ok(())
    }
}

impl std::error::Error for ResourceError {}

/// Process-wide aggregate rejection counter, resolved once.
fn rejections_counter() -> &'static Arc<Counter> {
    static COUNTER: OnceLock<Arc<Counter>> = OnceLock::new();
    COUNTER.get_or_init(|| xic_telemetry::global().counter("resilience.rejections"))
}

/// Records a rejection: aggregate + per-limit counters.  Rejections are the
/// cold path, so the per-limit name lookup takes the registry lock.
fn note_rejection(limit: LimitKind) {
    rejections_counter().inc();
    xic_telemetry::global()
        .counter(&format!("resilience.rejections.{}", limit.name()))
        .inc();
}

/// Element nesting depth of `node` (root = 1), by walking the parent chain.
pub(crate) fn depth_of(tree: &XmlTree, node: NodeId) -> usize {
    let mut depth = 1;
    let mut cursor = node;
    while let Some(parent) = tree.parent(cursor) {
        depth += 1;
        cursor = parent;
    }
    depth
}

/// Echoes a whole batch back as [`RejectedOp`]s.
pub(crate) fn echo_ops(ops: &[EditOp]) -> Vec<RejectedOp> {
    ops.iter()
        .enumerate()
        .map(|(index, op)| RejectedOp {
            index,
            op: op.clone(),
        })
        .collect()
}

/// Pre-admission check for one edit batch against one document: queued-op,
/// node and depth limits, evaluated **before** any op is applied so a
/// rejection leaves the document untouched.
///
/// Node accounting is evaluated against the current tree: `AddElement` and
/// `AddText` count one node each, `SetAttr` counts one when it would create
/// the attribute (updates are free), `RemoveSubtree` counts zero (removal
/// only shrinks).  Depth is checked per child-creating op against its
/// target parent's current depth.
pub(crate) fn admit_ops(
    limits: &Limits,
    tree: &XmlTree,
    queued: usize,
    ops: &[EditOp],
    context: &str,
) -> Result<(), ResourceError> {
    if limits.is_unlimited() {
        return Ok(());
    }
    if let Some(max) = limits.max_queued_ops {
        let total = queued + ops.len();
        if total > max {
            return Err(ResourceError::new(
                LimitKind::QueuedOps,
                max as u64,
                total as u64,
                context,
            )
            .with_rejected(echo_ops(ops)));
        }
    }
    if let Some(max) = limits.max_doc_nodes {
        let mut projected = tree.num_nodes();
        for op in ops {
            projected += match op {
                EditOp::AddElement { .. } | EditOp::AddText { .. } => 1,
                EditOp::SetAttr { element, attr, .. } => usize::from(
                    tree.contains(*element) && tree.attr_value(*element, *attr).is_none(),
                ),
                EditOp::RemoveSubtree { .. } => 0,
            };
        }
        if projected > max {
            return Err(ResourceError::new(
                LimitKind::DocNodes,
                max as u64,
                projected as u64,
                context,
            )
            .with_rejected(echo_ops(ops)));
        }
    }
    if let Some(max) = limits.max_depth {
        for op in ops {
            let parent = match op {
                EditOp::AddElement { parent, .. } | EditOp::AddText { parent, .. } => *parent,
                _ => continue,
            };
            // Unknown parents are left for apply_edit's EditError to report.
            if !tree.contains(parent) || tree.is_detached(parent) {
                continue;
            }
            let child_depth = depth_of(tree, parent) + 1;
            if child_depth > max {
                return Err(ResourceError::new(
                    LimitKind::NestingDepth,
                    max as u64,
                    child_depth as u64,
                    context,
                )
                .with_rejected(echo_ops(ops)));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_is_default_and_checks_nothing() {
        assert_eq!(Limits::default(), Limits::UNLIMITED);
        assert!(Limits::default().is_unlimited());
        let budget = Limits::UNLIMITED.parse_budget();
        assert_eq!(budget, ParseBudget::UNLIMITED);
    }

    #[test]
    fn limit_kinds_have_stable_names() {
        assert_eq!(LimitKind::DocNodes.name(), "max_doc_nodes");
        assert_eq!(LimitKind::from(ParseLimit::Depth).name(), "max_depth");
        assert_eq!(LimitKind::Deadline.name(), "deadline_ms");
    }

    #[test]
    fn display_names_the_violated_limit() {
        let err = ResourceError::new(LimitKind::QueuedOps, 8, 12, "doc-3");
        let text = err.to_string();
        assert!(text.contains("max_queued_ops"), "{text}");
        assert!(text.contains("12"), "{text}");
        assert!(text.contains("doc-3"), "{text}");
    }
}
