//! Compiled specifications: parse and analyze `(D, Σ)` once, check many.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use xic_constraints::{
    parse_constraint_set, ConstraintClass, ConstraintSet, DocIndex, IncrementalLayout, IndexPlan,
    ShardPlan, Violation,
};
use xic_core::{
    CardinalitySystem, CheckerConfig, ConsistencyChecker, ConsistencyOutcome, ImplicationChecker,
    ImplicationOutcome, SpecError,
};
use xic_dtd::{analyze, parse_dtd, Dtd, DtdAnalysis, ElemId, Glushkov, SimpleDtd};
use xic_xml::{
    compile_automata, parse_document, parse_document_pooled, Validator, ValuePool, XmlError,
    XmlTree,
};

use crate::hash::fnv1a_parts_wide;

/// Stable content-hash identity of a compiled specification.
///
/// Derived from the canonical renderings of the DTD and the constraint set
/// plus the checker configuration, so two compilations of the same source —
/// even with different whitespace or constraint formatting — share an id,
/// while any semantic change to either component (or to the solver/witness
/// configuration, which can change verdicts) changes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpecId(pub u64, pub u64);

impl fmt::Display for SpecId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec-{:016x}{:016x}", self.0, self.1)
    }
}

/// A [`SpecId`] string that did not parse (see the [`FromStr`] impl).
///
/// [`FromStr`]: std::str::FromStr
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSpecIdError {
    detail: String,
}

impl fmt::Display for ParseSpecIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid spec id: {}", self.detail)
    }
}

impl std::error::Error for ParseSpecIdError {}

impl std::str::FromStr for SpecId {
    type Err = ParseSpecIdError;

    /// Parses the stable hex rendering produced by [`fmt::Display`]
    /// (`spec-<32 hex digits>`; the bare 32-digit form is accepted too), so
    /// an id printed by any report, log header or `--format json` output
    /// round-trips through `xic serve` hello negotiation and `--spec-id`.
    fn from_str(s: &str) -> Result<SpecId, ParseSpecIdError> {
        let hex = s.strip_prefix("spec-").unwrap_or(s);
        if hex.len() != 32 {
            return Err(ParseSpecIdError {
                detail: format!(
                    "expected `spec-` plus 32 hex digits, got {} digits in `{s}`",
                    hex.len()
                ),
            });
        }
        let parse_half = |half: &str| {
            u64::from_str_radix(half, 16).map_err(|_| ParseSpecIdError {
                detail: format!("`{half}` is not hexadecimal"),
            })
        };
        Ok(SpecId(parse_half(&hex[..16])?, parse_half(&hex[16..])?))
    }
}

/// Errors raised while compiling a specification from sources.
#[derive(Debug)]
pub enum CompileError {
    /// The DTD source did not parse.
    Dtd(String),
    /// The constraint source did not parse or did not validate over the DTD.
    Constraints(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Dtd(msg) => write!(f, "DTD error: {msg}"),
            CompileError::Constraints(msg) => write!(f, "constraint error: {msg}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// A `(DTD, Σ)` pair compiled once for repeated checking.
///
/// Compilation precomputes everything the paper's procedures would otherwise
/// rebuild per call:
///
/// * the [`SimpleDtd`] rewriting of Section 4.1,
/// * one Glushkov automaton per element type (document validation),
/// * the linear-time DTD analysis (satisfiability, occurrence facts),
/// * the constraint-class classification (procedure dispatch),
/// * the satisfaction [`IndexPlan`] (which indexes `T ⊨ Σ` will consult),
/// * the incremental-index [`IncrementalLayout`] (slot/watcher/touch-map
///   structure shared by every session document opened against this spec),
/// * the cardinality system Ψ(D,Σ) when Σ is unary (Theorem 4.1 / 5.1).
#[derive(Debug)]
pub struct CompiledSpec {
    id: SpecId,
    dtd: Dtd,
    sigma: ConstraintSet,
    simple: SimpleDtd,
    analysis: DtdAnalysis,
    automata: HashMap<ElemId, Glushkov>,
    class: Option<ConstraintClass>,
    plan: IndexPlan,
    incremental: Arc<IncrementalLayout>,
    shards: Arc<ShardPlan>,
    system: Option<CardinalitySystem>,
    config: CheckerConfig,
}

impl CompiledSpec {
    /// Compiles an already-built pair with the default checker
    /// configuration.  Fails if Σ does not validate over the DTD.
    pub fn compile(dtd: Dtd, sigma: ConstraintSet) -> Result<CompiledSpec, CompileError> {
        CompiledSpec::compile_with(dtd, sigma, CheckerConfig::default())
    }

    /// Compiles with an explicit checker configuration (solver budgets,
    /// witness synthesis, system options).
    pub fn compile_with(
        dtd: Dtd,
        sigma: ConstraintSet,
        config: CheckerConfig,
    ) -> Result<CompiledSpec, CompileError> {
        let telemetry = xic_telemetry::global();
        let compile_span = telemetry.span("compile");
        sigma
            .validate(&dtd)
            .map_err(|e| CompileError::Constraints(e.to_string()))?;
        // The id covers the checker configuration too: two compilations of
        // the same (D, Σ) under different solver budgets or witness settings
        // can reach different verdicts, so they must not share cache entries.
        let (lo, hi) =
            fnv1a_parts_wide(&[&dtd.render(), &sigma.render(&dtd), &format!("{config:?}")]);
        let id = SpecId(lo, hi);
        // Each compile phase runs in its own span: per-phase latency
        // histograms (`span.compile.*`) plus a nested trace timeline.
        let simple = {
            let _phase = telemetry.span("compile.simplify");
            SimpleDtd::from_dtd(&dtd)
        };
        let analysis = {
            let _phase = telemetry.span("compile.analyze");
            analyze(&dtd)
        };
        let automata = {
            let _phase = telemetry.span("compile.glushkov");
            compile_automata(&dtd)
        };
        let class = sigma.smallest_class();
        let plan = {
            let _phase = telemetry.span("compile.index_plan");
            IndexPlan::for_set(&sigma)
        };
        let incremental = {
            let _phase = telemetry.span("compile.incremental_layout");
            Arc::new(IncrementalLayout::new(&dtd, &sigma))
        };
        let shards = {
            let _phase = telemetry.span("compile.shard_plan");
            let plan = Arc::new(ShardPlan::of_layout(&incremental));
            telemetry
                .gauge("shard.plan_shards")
                .set(plan.num_shards() as i64);
            plan
        };
        // Ψ(D,Σ) exists exactly for the unary classes the ILP procedures
        // decide (the keys-only and general classes are dispatched
        // elsewhere), and for those classes a build failure is a spec error —
        // swallowing it here would silently demote the spec to the
        // sound-but-incomplete general procedure that `xic check` rejects.
        let system = if !sigma.is_empty()
            && !sigma.in_class(ConstraintClass::KeysOnly)
            && sigma.in_class(ConstraintClass::UnaryKeyNegInclusionNeg)
        {
            let _phase = telemetry.span("compile.system");
            Some(
                CardinalitySystem::build(&dtd, &sigma, &config.system)
                    .map_err(|e| CompileError::Constraints(e.to_string()))?,
            )
        } else {
            None
        };
        telemetry.counter("compile.specs").inc();
        drop(compile_span);
        Ok(CompiledSpec {
            id,
            dtd,
            sigma,
            simple,
            analysis,
            automata,
            class,
            plan,
            incremental,
            shards,
            system,
            config,
        })
    }

    /// Parses and compiles from textual sources: a DTD (optionally with an
    /// explicit root element) and a constraint set in the surface syntax of
    /// [`xic_constraints::parser`].
    pub fn from_sources(
        dtd_src: &str,
        root: Option<&str>,
        sigma_src: &str,
    ) -> Result<CompiledSpec, CompileError> {
        let dtd = parse_dtd(dtd_src, root).map_err(|e| CompileError::Dtd(e.to_string()))?;
        let sigma = parse_constraint_set(sigma_src, &dtd)
            .map_err(|e| CompileError::Constraints(e.to_string()))?;
        CompiledSpec::compile(dtd, sigma)
    }

    /// The content-hash identity.
    pub fn id(&self) -> SpecId {
        self.id
    }

    /// The DTD `D`.
    pub fn dtd(&self) -> &Dtd {
        &self.dtd
    }

    /// The constraint set Σ.
    pub fn sigma(&self) -> &ConstraintSet {
        &self.sigma
    }

    /// The precomputed simple-DTD rewriting (exposed for inspection and for
    /// downstream consumers such as spec sharding; the consistency path uses
    /// the copy embedded in the cardinality system).
    pub fn simple(&self) -> &SimpleDtd {
        &self.simple
    }

    /// The precomputed linear-time DTD analysis (satisfiability and
    /// occurrence facts, exposed for inspection without re-running
    /// [`xic_dtd::analyze`]).
    pub fn analysis(&self) -> &DtdAnalysis {
        &self.analysis
    }

    /// The smallest paper class admitting Σ (`None` for the general class).
    pub fn class(&self) -> Option<ConstraintClass> {
        self.class
    }

    /// The satisfaction index plan for Σ.
    pub fn plan(&self) -> &IndexPlan {
        &self.plan
    }

    /// The incremental-index layout for Σ — the `(D, Σ)`-only slot, watcher
    /// and touch-map structure every session document shares.  Derived once
    /// at compile time; [`crate::Session::open`] and
    /// [`crate::CorpusSession`] only clone the `Arc`.
    pub fn incremental_layout(&self) -> &Arc<IncrementalLayout> {
        &self.incremental
    }

    /// The touch-graph shard plan for Σ: connected components of the
    /// layout's `(type, attribute)` touch maps, numbered canonically.
    /// Derived once at compile time beside [`CompiledSpec::plan`]; commit
    /// fan-out, delta tagging and shard-filtered replicas all read it.
    pub fn shard_plan(&self) -> &Arc<ShardPlan> {
        &self.shards
    }

    /// The precomputed cardinality system Ψ(D,Σ), when Σ is unary.
    pub fn system(&self) -> Option<&CardinalitySystem> {
        self.system.as_ref()
    }

    /// The checker configuration the spec was compiled with.
    pub fn config(&self) -> &CheckerConfig {
        &self.config
    }

    /// The precompiled Glushkov automaton of one element type.
    pub fn automaton(&self, ty: ElemId) -> &Glushkov {
        &self.automata[&ty]
    }

    /// A document validator over the precompiled automata (cheap to create,
    /// one per worker thread).
    pub fn validator(&self) -> Validator<'_> {
        Validator::from_automata(&self.dtd, &self.automata)
    }

    /// Parses a document against this spec's DTD.
    pub fn parse_document(&self, source: &str) -> Result<XmlTree, XmlError> {
        parse_document(source, &self.dtd)
    }

    /// Parses a document interning its values into an existing pool; on
    /// failure the pool is handed back so batch loops keep their warm
    /// interner (see [`crate::BatchEngine`]).
    pub fn parse_document_pooled(
        &self,
        source: &str,
        pool: ValuePool,
    ) -> Result<XmlTree, (XmlError, ValuePool)> {
        parse_document_pooled(source, &self.dtd, pool)
    }

    /// Parses a document under a [`xic_xml::ParseBudget`] (see
    /// [`crate::Limits::parse_budget`]): oversized, overdeep or overlong
    /// input is rejected with a structured budget error before the work is
    /// spent.  On failure the pool is handed back like
    /// [`CompiledSpec::parse_document_pooled`].
    pub fn parse_document_budgeted(
        &self,
        source: &str,
        pool: ValuePool,
        budget: &xic_xml::ParseBudget,
    ) -> Result<XmlTree, (xic_xml::ParseError, ValuePool)> {
        xic_xml::parse_document_budgeted(source, &self.dtd, pool, budget)
    }

    /// Builds the document's satisfaction indexes ([`DocIndex`]) in one pass
    /// over the tree, driven by the precomputed plan.
    pub fn index_document<'t>(&'t self, tree: &'t XmlTree) -> DocIndex<'t> {
        DocIndex::build(&self.dtd, tree, &self.plan)
    }

    /// One-shot `T ⊨ Σ`: a thin wrapper over a throwaway session check
    /// ([`crate::Session::check_once`]), which takes the [`DocIndex`] build
    /// (a never-edited document needs none of the incremental bookkeeping)
    /// and reports exactly the witnesses the session path would.  To check
    /// several constraint subsets against one document, build the index
    /// once with [`CompiledSpec::index_document`].
    pub fn check_document(&self, tree: &XmlTree) -> Vec<Violation> {
        crate::Session::check_once(self, tree)
    }

    /// Consistency of the compiled specification, dispatching to the
    /// procedure for its class and reusing every precomputed artifact.
    /// Uncached — [`crate::Engine::consistency`] is the memoized entry point.
    pub fn check_consistency(&self) -> ConsistencyOutcome {
        let checker = ConsistencyChecker::with_config(self.config.clone());
        if self.sigma.is_empty() || self.sigma.in_class(ConstraintClass::KeysOnly) {
            return checker.check_keys_only(&self.dtd, &self.sigma);
        }
        if let Some(system) = &self.system {
            if self
                .sigma
                .in_class(ConstraintClass::UnaryKeyNegInclusionNeg)
            {
                return checker.check_unary_with_system(&self.dtd, &self.sigma, system);
            }
        }
        checker.check_general(&self.dtd, &self.sigma)
    }

    /// Implication `(D, Σ) ⊢ φ`.  Uncached — see
    /// [`crate::Engine::implication`].
    pub fn check_implication(
        &self,
        phi: &xic_constraints::Constraint,
    ) -> Result<ImplicationOutcome, SpecError> {
        ImplicationChecker::with_config(self.config.clone()).implies(&self.dtd, &self.sigma, phi)
    }
}
