//! Content hashing for spec and query identities.
//!
//! FNV-1a (64-bit) over canonical renderings: fast, dependency-free and
//! stable across processes — unlike `std::collections`' `DefaultHasher`,
//! whose output is explicitly not guaranteed between runs.  These hashes
//! identify cache entries, so cross-process stability is what makes a warm
//! cache meaningful for long-running services.

const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01b3;
/// Offset basis for the second, independent 64-bit stream (an arbitrary
/// odd constant far from the FNV basis); two streams give spec identities
/// 128 bits of accidental-collision resistance.  None of this is
/// cryptographic — adversarially chosen colliding specs are out of scope.
const OFFSET2: u64 = 0x9e37_79b9_7f4a_7c15;

#[inline]
fn step(hash: u64, byte: u8) -> u64 {
    (hash ^ u64::from(byte)).wrapping_mul(PRIME)
}

/// 64-bit FNV-1a of a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    bytes.iter().fold(OFFSET, |h, &b| step(h, b))
}

fn fold_parts(offset: u64, parts: &[&str]) -> u64 {
    parts.iter().fold(offset, |h, part| {
        // 0xFF never occurs in UTF-8, so it cleanly separates segments.
        step(part.bytes().fold(h, step), 0xFF)
    })
}

/// FNV-1a over several segments with an unambiguous separator, so that
/// `("ab", "c")` and `("a", "bc")` hash differently.
pub fn fnv1a_parts(parts: &[&str]) -> u64 {
    fold_parts(OFFSET, parts)
}

/// A 128-bit identity: the [`fnv1a_parts`] stream paired with a second
/// stream from an independent offset basis.
pub fn fnv1a_parts_wide(parts: &[&str]) -> (u64, u64) {
    (fold_parts(OFFSET, parts), fold_parts(OFFSET2, parts))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn wide_streams_are_independent() {
        let (a, b) = fnv1a_parts_wide(&["x", "y"]);
        assert_eq!(a, fnv1a_parts(&["x", "y"]));
        assert_ne!(a, b);
    }

    #[test]
    fn parts_are_unambiguous() {
        assert_ne!(fnv1a_parts(&["ab", "c"]), fnv1a_parts(&["a", "bc"]));
        assert_ne!(fnv1a_parts(&["ab"]), fnv1a_parts(&["ab", ""]));
        assert_eq!(fnv1a_parts(&["x", "y"]), fnv1a_parts(&["x", "y"]));
    }
}
