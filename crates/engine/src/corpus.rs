//! Corpus-scale sessions: many open documents, one spec, one value pool,
//! O(edited documents) re-verdicts.
//!
//! [`crate::Session`] made re-validating one *document* O(edit); a corpus
//! still paid O(corpus) per change, because the only batch surface was
//! [`crate::BatchEngine::validate_batch`] — a cold parse + validate + index
//! of every document, every time.  A [`CorpusSession`] closes that gap:
//!
//! * **one spec, many documents** — every open document shares the
//!   [`CompiledSpec`]'s precompiled automata and its spec-level
//!   [`xic_constraints::IncrementalLayout`] (opening a document derives no
//!   layout, it clones an `Arc`);
//! * **one value pool** — the corpus keeps a master
//!   [`xic_xml::ValuePool`]; documents parsed through the session inherit
//!   it by [`xic_xml::ValuePool::fork`] (shared allocations, shared prefix
//!   ids) and documents opened from pre-built trees are
//!   [`xic_xml::ValuePool::absorb`]ed, so a value repeated across the
//!   corpus is allocated once;
//! * **per-document dirty tracking** — edits route through
//!   [`CorpusSession::apply`] per [`DocHandle`] and mark only that document
//!   dirty; [`CorpusSession::commit`] re-checks *exactly the dirty
//!   documents* (structural `T ⊨ D` re-validation plus the incremental
//!   `T ⊨ Σ` verdict) and serves every clean document's report from cache.
//!   The commit itself is O(dirty documents) too: corpus-wide counters are
//!   maintained incrementally, and open-order positions are only
//!   renumbered after a close;
//! * **delta stream** — each commit returns a [`BatchDelta`]: the documents
//!   whose *report changed* — newly opened, flipped clean ↔ violating, or
//!   still violating with a different violation/error set — each with its
//!   full fresh [`crate::DocReport`] (structured [`Violation`] witnesses
//!   included), plus the documents closed since the last commit, under a
//!   monotone sequence number.  Subscribers that apply the delta stream to
//!   a replica of the last [`CorpusSession::report`] reconstruct the
//!   current report exactly — `tests/corpus_agreement.rs` proves both
//!   halves against cold [`crate::BatchEngine`] rebuilds.
//!
//! The `corpus_edit` bench (`BENCH_corpus.json`) records the headline
//! number: a single-document edit re-verdict is ≥ 20× faster than a full
//! `BatchEngine` revalidation of the corpus.

use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

use xic_constraints::{IncrementalIndex, ShardPlan, Violation};
use xic_telemetry::{Counter, Gauge, Histogram, MetricsRegistry};
use xic_xml::budget::ParseError;
use xic_xml::{EditJournal, EditOp, ValuePool, XmlTree};

use crate::batch::{BatchReport, DocFault, DocReport};
use crate::journal::JournalError;
use crate::limits::{self, LimitKind, Limits, ResourceError};
use crate::session::{apply_ops, DocHandle, SessionError};
use crate::spec::CompiledSpec;

/// One document's entry in a [`BatchDelta`]: its state transition and the
/// full fresh report (structured [`Violation`] witnesses included).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocChange {
    /// The document's handle — the stable identity to key a replica on
    /// (labels need not be unique).
    pub handle: DocHandle,
    /// Its clean state at the previous commit — `None` for documents opened
    /// since then.
    pub was_clean: Option<bool>,
    /// The fresh report (label, structural errors, Σ violations).
    pub report: DocReport,
    /// The shards (per the spec's [`ShardPlan`]) whose projected view of
    /// this document can differ from the previous commit: the shards of the
    /// constraints the triggering edits dirtied.  Opens, structural-error
    /// or fault churn, and panic-rebuilt rechecks are *broadcast* — tagged
    /// with every shard — because their effect is shard-independent.
    /// Sorted ascending.
    pub shards: Vec<u32>,
}

impl DocChange {
    /// Whether the document is clean after this change.
    pub fn now_clean(&self) -> bool {
        self.report.is_clean()
    }

    /// The clean-state transition this change reports.
    pub fn transition(&self) -> Transition {
        match (self.was_clean, self.now_clean()) {
            (None, true) => Transition::OpenedClean,
            (None, false) => Transition::OpenedViolating,
            (Some(true), false) => Transition::ToViolating,
            (Some(false), true) => Transition::ToClean,
            (Some(true), true) => Transition::StillClean,
            (Some(false), false) => Transition::StillViolating,
        }
    }
}

/// The clean-state transition of one [`DocChange`] — the classification the
/// CLI's delta stream, `xic journal inspect` and the metrics layer all
/// share (each used to hand-roll its own).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// Opened since the last commit, clean.
    OpenedClean,
    /// Opened since the last commit, violating.
    OpenedViolating,
    /// Was clean, now violating.
    ToViolating,
    /// Was violating, now clean.
    ToClean,
    /// Clean before and after (cannot appear in a committed delta: a clean
    /// report has nothing to observably change).
    StillClean,
    /// Violating before and after, but the violation/error set changed.
    StillViolating,
}

impl Transition {
    /// Whether the document flipped between clean and violating.
    pub fn is_flip(self) -> bool {
        matches!(self, Transition::ToViolating | Transition::ToClean)
    }

    /// The human-readable label the CLI delta stream prints.
    pub fn label(self) -> &'static str {
        match self {
            Transition::OpenedClean => "opened clean",
            Transition::OpenedViolating => "opened violating",
            Transition::ToViolating => "clean -> violating",
            Transition::ToClean => "violating -> clean",
            Transition::StillClean => "still clean",
            Transition::StillViolating => "still violating (changed)",
        }
    }
}

/// A document closed since the previous commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClosedDoc {
    /// The closed document's (now dead) handle — the stable identity, since
    /// labels need not be unique.
    pub handle: DocHandle,
    /// Its label.
    pub label: String,
}

/// The diff a [`CorpusSession::commit`] emits: what changed since the
/// previous commit, plus corpus-level counters.  The sequence of deltas is
/// the subscription stream — applying them in `seq` order to a copy of an
/// earlier [`CorpusSession::report`] reproduces the current one (replace
/// the report of every change, drop every closed handle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchDelta {
    /// Monotone commit number (the first commit of a session is `1`).
    pub seq: u64,
    /// Documents whose report changed — opened, flipped clean ↔ violating,
    /// or re-checked to a different violation/error set — in open order.
    pub changes: Vec<DocChange>,
    /// Documents closed since the previous commit, in close order.
    pub closed: Vec<ClosedDoc>,
    /// How many documents this commit actually re-checked (the dirty set).
    pub rechecked_docs: usize,
    /// Open documents after the commit.
    pub total: usize,
    /// Clean documents after the commit.
    pub clean: usize,
    /// The union of the changes' shard tags, plus every shard when any
    /// document closed (a close is shard-independent).  A subscriber
    /// filtered to shard `k` needs this delta exactly when `k` appears
    /// here.  Sorted ascending; empty for an empty delta.
    pub shards: Vec<u32>,
}

impl BatchDelta {
    /// Whether nothing observable changed (no report changes, opens or
    /// closes).
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty() && self.closed.is_empty()
    }

    /// Whether a subscriber filtered to `shard` needs this delta.
    pub fn touches_shard(&self, shard: u32) -> bool {
        self.shards.contains(&shard)
    }

    /// The shard-`k` projection of this delta: changes tagged with `shard`,
    /// each report's Σ violations restricted to `shard`'s constraints
    /// (structural errors and faults are shard-independent and kept whole),
    /// closes kept whole.  `None` when the delta does not touch `shard` —
    /// a filtered subscriber simply never receives it.  Applying every
    /// projected delta of a stream to a shard-filtered
    /// [`crate::CorpusReplica`] reconstructs the shard projection of the
    /// session's report exactly.
    pub fn project(&self, plan: &ShardPlan, shard: u32) -> Option<BatchDelta> {
        if !self.touches_shard(shard) {
            return None;
        }
        let changes = self
            .changes
            .iter()
            .filter(|c| c.shards.contains(&shard))
            .map(|c| DocChange {
                handle: c.handle,
                was_clean: c.was_clean,
                report: project_doc_report(&c.report, plan, shard),
                shards: vec![shard],
            })
            .collect();
        Some(BatchDelta {
            seq: self.seq,
            changes,
            closed: self.closed.clone(),
            rechecked_docs: self.rechecked_docs,
            total: self.total,
            clean: self.clean,
            shards: vec![shard],
        })
    }

    /// Tallies the delta's changes by [`Transition`] — the one aggregation
    /// the metrics layer, `xic journal inspect` and the CLI delta stream
    /// share.
    pub fn summary(&self) -> DeltaSummary {
        let mut summary = DeltaSummary {
            docs_changed: self.changes.len(),
            closed: self.closed.len(),
            rechecked: self.rechecked_docs,
            ..DeltaSummary::default()
        };
        for change in &self.changes {
            match change.transition() {
                Transition::OpenedClean | Transition::OpenedViolating => summary.opened += 1,
                Transition::ToViolating => summary.to_violating += 1,
                Transition::ToClean => summary.to_clean += 1,
                Transition::StillClean | Transition::StillViolating => summary.churned += 1,
            }
            summary.violations_now += change.report.violations.len();
        }
        summary
    }
}

/// The shard-`k` projection of one document report: Σ violations restricted
/// to `shard`'s constraints (looked up through the rendered constraint each
/// [`Violation`] carries); everything shard-independent — label, position,
/// structural errors, faults — kept whole.
pub fn project_doc_report(report: &DocReport, plan: &ShardPlan, shard: u32) -> DocReport {
    DocReport {
        index: report.index,
        label: report.label.clone(),
        parse_error: report.parse_error.clone(),
        validation_errors: report.validation_errors.clone(),
        violations: report
            .violations
            .iter()
            .filter(|v| plan.shard_of_rendered(v.constraint()) == Some(shard))
            .cloned()
            .collect(),
        fault: report.fault.clone(),
    }
}

/// The shard-`k` projection of a full corpus report: every document kept
/// (document membership is shard-independent), each report projected by
/// [`project_doc_report`].  The oracle side of the shard-filtered-replica
/// agreement tests.
pub fn project_report(report: &BatchReport, plan: &ShardPlan, shard: u32) -> BatchReport {
    BatchReport::from_reports(
        report
            .reports()
            .iter()
            .map(|r| project_doc_report(r, plan, shard))
            .collect(),
    )
}

/// Per-delta tallies from [`BatchDelta::summary`].
///
/// Everything here is derived from the delta alone, so a replica holding
/// only the stream computes the same numbers.  Exact violations
/// added/removed counts (which need the *previous* report of a
/// still-violating document) are emitted by [`CorpusSession::commit`] as the
/// `corpus.violations_added` / `corpus.violations_removed` counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeltaSummary {
    /// Documents whose report changed.
    pub docs_changed: usize,
    /// Changed documents that were opened since the previous commit.
    pub opened: usize,
    /// Documents that flipped clean → violating.
    pub to_violating: usize,
    /// Documents that flipped violating → clean.
    pub to_clean: usize,
    /// Documents that changed without flipping (traded one violation or
    /// error set for another).
    pub churned: usize,
    /// Documents closed since the previous commit.
    pub closed: usize,
    /// Documents the commit re-checked (the dirty set).
    pub rechecked: usize,
    /// Σ violations outstanding across the changed documents' fresh
    /// reports.
    pub violations_now: usize,
}

impl DeltaSummary {
    /// Total clean ↔ violating flips.
    pub fn flips(&self) -> usize {
        self.to_violating + self.to_clean
    }
}

/// Registry-backed corpus instruments, resolved once per session.  The
/// `corpus.dirty_docs` and `corpus.queued_ops` gauges are the backpressure
/// surface: a service wrapping [`CorpusSession`] bounds admission with one
/// comparison against an already-exported metric.
#[derive(Debug)]
struct CorpusInstruments {
    registry: Arc<MetricsRegistry>,
    edits: Arc<Counter>,
    commits: Arc<Counter>,
    violations_added: Arc<Counter>,
    violations_removed: Arc<Counter>,
    apply_ns: Arc<Histogram>,
    commit_ns: Arc<Histogram>,
    recheck_ns: Arc<Histogram>,
    delta_changes: Arc<Histogram>,
    dirty_docs: Arc<Gauge>,
    queued_ops: Arc<Gauge>,
    open_docs: Arc<Gauge>,
    /// Dirty constraints actually recomputed by commits (in scope).
    shard_rechecked: Arc<Counter>,
    /// Dirty constraints dropped by a shard scope instead of recomputed.
    shard_skipped: Arc<Counter>,
    /// Shard tags emitted on committed deltas (fan-out width).
    shard_deltas: Arc<Counter>,
    /// Distinct shards touched per commit.
    shard_touched: Arc<Histogram>,
}

impl CorpusInstruments {
    fn on(registry: Arc<MetricsRegistry>) -> CorpusInstruments {
        CorpusInstruments {
            edits: registry.counter("corpus.edits"),
            commits: registry.counter("corpus.commits"),
            violations_added: registry.counter("corpus.violations_added"),
            violations_removed: registry.counter("corpus.violations_removed"),
            apply_ns: registry.histogram("corpus.apply_ns"),
            commit_ns: registry.histogram("corpus.commit_ns"),
            recheck_ns: registry.histogram("corpus.recheck_ns"),
            delta_changes: registry.histogram("corpus.delta_changes"),
            dirty_docs: registry.gauge("corpus.dirty_docs"),
            queued_ops: registry.gauge("corpus.queued_ops"),
            open_docs: registry.gauge("corpus.open_docs"),
            shard_rechecked: registry.counter("shard.rechecked"),
            shard_skipped: registry.counter("shard.skipped"),
            shard_deltas: registry.counter("shard.deltas"),
            shard_touched: registry.histogram("shard.touched"),
            registry,
        }
    }
}

#[derive(Debug)]
struct CorpusDoc {
    label: String,
    tree: XmlTree,
    index: IncrementalIndex,
    journal: EditJournal,
    /// Position in open order (recomputed only after a close).
    position: usize,
    /// Report as of the last commit; `None` before the first commit that
    /// sees this document.
    report: Option<DocReport>,
    /// Clean state at the last commit; `None` until then.
    committed_clean: Option<bool>,
}

/// A corpus-level validation session: many open documents validated against
/// one [`CompiledSpec`], sharing one value pool and one incremental layout,
/// with per-document dirty tracking and [`BatchDelta`] diff commits.
///
/// ```
/// use xic_engine::{CompiledSpec, CorpusSession};
/// use xic_xml::EditOp;
///
/// let spec = CompiledSpec::from_sources(
///     "<!ELEMENT school (teacher*)>\n\
///      <!ELEMENT teacher EMPTY>\n\
///      <!ATTLIST teacher name CDATA #REQUIRED>",
///     Some("school"),
///     "teacher.name -> teacher",
/// )
/// .unwrap();
///
/// let mut corpus = CorpusSession::new(&spec);
/// let a = corpus
///     .open_source("a.xml", "<school><teacher name=\"Joe\"/></school>")
///     .unwrap();
/// let b = corpus
///     .open_source("b.xml", "<school><teacher name=\"Ann\"/></school>")
///     .unwrap();
/// let delta = corpus.commit();
/// assert_eq!((delta.total, delta.clean), (2, 2));
///
/// // One edit dirties one document; the next commit re-checks only it.
/// let ann = corpus.tree(b).unwrap().elements().nth(1).unwrap();
/// let name = spec.dtd().attr_by_name("name").unwrap();
/// corpus
///     .apply(b, &[EditOp::SetAttr { element: ann, attr: name, value: "Joe".into() }])
///     .unwrap();
/// let delta = corpus.commit();
/// assert_eq!(delta.rechecked_docs, 1);
/// assert!(delta.is_empty(), "b is still clean on its own — no change to report");
/// # let _ = a;
/// ```
#[derive(Debug)]
pub struct CorpusSession<'s> {
    spec: &'s CompiledSpec,
    /// Open documents in handle (= open) order.
    docs: BTreeMap<u64, CorpusDoc>,
    /// The corpus interner: forked into every parse, re-forked back after,
    /// so the whole corpus shares value allocations and prefix ids.
    pool: ValuePool,
    /// Handles dirtied (opened or edited) since the last commit, in order.
    dirty: Vec<u64>,
    /// Documents closed since the last commit, in close order.
    closed: Vec<ClosedDoc>,
    /// Number of open documents whose *committed* state is clean.
    clean_docs: usize,
    /// Whether a close invalidated the cached open-order positions.
    positions_stale: bool,
    next_handle: u64,
    commits: u64,
    /// Committed deltas retained for [`CorpusSession::export_deltas`]
    /// (contiguous; `history[0].seq == history_base`).
    history: Vec<BatchDelta>,
    /// Sequence number of the oldest retained delta (1 until
    /// [`CorpusSession::prune_deltas`] drops a prefix).
    history_base: u64,
    instr: CorpusInstruments,
    limits: Limits,
    /// Edits admitted since the last commit (the queue a
    /// [`Limits::max_queued_ops`] bound compares against).
    queued_ops: usize,
    /// Progress a deadline-aborted [`CorpusSession::try_commit`] already
    /// made: re-checked changes waiting for the commit that will announce
    /// them (work done is never redone, and never half-announced).
    staged_changes: Vec<DocChange>,
    /// Documents re-checked by aborted commit attempts since the last
    /// announced delta.
    staged_rechecked: usize,
    /// When set, commits recompute only the constraints of the scoped
    /// shards and reports carry the shard projection (see
    /// [`CorpusSession::scope_to_shards`]).
    shard_scope: Option<ShardScope>,
}

/// A fixed shard scope: per-constraint keep mask derived from the spec's
/// [`ShardPlan`] once at [`CorpusSession::scope_to_shards`] time.
#[derive(Debug)]
struct ShardScope {
    keep: Vec<bool>,
}

impl<'s> CorpusSession<'s> {
    /// An empty corpus over the given compiled specification, recording its
    /// metrics (`corpus.*` instruments, including the `corpus.dirty_docs`
    /// and `corpus.queued_ops` backpressure gauges) on the process-global
    /// registry.
    pub fn new(spec: &'s CompiledSpec) -> CorpusSession<'s> {
        CorpusSession::with_registry(spec, Arc::clone(xic_telemetry::global()))
    }

    /// A corpus recording its metrics on an explicit registry (per-tenant
    /// isolation, or a private registry in tests).
    pub fn with_registry(
        spec: &'s CompiledSpec,
        registry: Arc<MetricsRegistry>,
    ) -> CorpusSession<'s> {
        CorpusSession {
            spec,
            docs: BTreeMap::new(),
            pool: ValuePool::new(),
            dirty: Vec::new(),
            closed: Vec::new(),
            clean_docs: 0,
            positions_stale: false,
            next_handle: 0,
            commits: 0,
            history: Vec::new(),
            history_base: 1,
            instr: CorpusInstruments::on(registry),
            limits: Limits::UNLIMITED,
            queued_ops: 0,
            staged_changes: Vec::new(),
            staged_rechecked: 0,
            shard_scope: None,
        }
    }

    /// A corpus that enforces [`Limits`] at admission: oversized sources
    /// and trees are refused at open, edit batches that would blow a bound
    /// are rejected whole by [`CorpusSession::apply`], and
    /// [`CorpusSession::try_commit`] honors the soft deadline.
    pub fn with_limits(spec: &'s CompiledSpec, limits: Limits) -> CorpusSession<'s> {
        let mut corpus = CorpusSession::new(spec);
        corpus.limits = limits;
        corpus
    }

    /// A corpus with both an explicit registry and admission limits — the
    /// validation service's per-tenant constructor ([`Limits`] govern
    /// admission, the registry isolates the tenant's instruments).
    pub fn with_registry_and_limits(
        spec: &'s CompiledSpec,
        limits: Limits,
        registry: Arc<MetricsRegistry>,
    ) -> CorpusSession<'s> {
        let mut corpus = CorpusSession::with_registry(spec, registry);
        corpus.limits = limits;
        corpus
    }

    /// Restricts this session to a subset of the spec's shards: commits
    /// recompute only the dirty constraints of the scoped shards (the
    /// observable saving in `incremental.constraints_rechecked` and
    /// `shard.rechecked`) and out-of-scope constraints never surface in
    /// reports or deltas — the session's [`CorpusSession::report`] is the
    /// shard projection of an unscoped session's, exactly.  This is the
    /// per-shard worker of a fanned-out commit: run one scoped session per
    /// shard group and each re-evaluates only the shards its touch-set
    /// intersects.
    ///
    /// # Panics
    /// Panics if any document was already opened (out-of-scope verdicts
    /// cached before the scope was set would go stale silently) or a shard
    /// id is out of range for the spec's [`ShardPlan`].
    pub fn scope_to_shards(&mut self, shards: &[u32]) {
        assert!(
            self.docs.is_empty() && self.commits == 0 && self.closed.is_empty(),
            "scope_to_shards must run before any document opens"
        );
        let plan = self.spec.shard_plan();
        let mut in_scope = vec![false; plan.num_shards()];
        for &s in shards {
            assert!(
                (s as usize) < plan.num_shards(),
                "shard {s} out of range: the plan has {} shards",
                plan.num_shards()
            );
            in_scope[s as usize] = true;
        }
        let keep = (0..plan.num_checks())
            .map(|i| in_scope[plan.shard_of_check(i) as usize])
            .collect();
        self.shard_scope = Some(ShardScope { keep });
    }

    /// The resource bounds this corpus enforces.
    pub fn limits(&self) -> &Limits {
        &self.limits
    }

    /// The registry this corpus's instruments record into.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.instr.registry
    }

    /// The specification the corpus validates against.
    pub fn spec(&self) -> &CompiledSpec {
        self.spec
    }

    /// Number of open documents.
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }

    /// The corpus-level value pool (the master interner documents fork).
    pub fn pool(&self) -> &ValuePool {
        &self.pool
    }

    /// Open handles in open order.
    pub fn handles(&self) -> impl Iterator<Item = DocHandle> + '_ {
        self.docs.keys().map(|&raw| DocHandle::new(raw))
    }

    /// Parses XML source against the spec's DTD and opens it under `label`.
    /// The parse inherits the corpus pool by [`ValuePool::fork`]; the grown
    /// pool is re-forked back, so every value the document introduced is
    /// already interned for the next open or edit.
    ///
    /// Under [`Limits`], admission is checked before the parse spends
    /// anything (a full dirty set rejects immediately) and the parse itself
    /// is budgeted — byte, node and depth bounds reject as
    /// [`SessionError::Resource`].
    pub fn open_source(
        &mut self,
        label: impl Into<String>,
        source: &str,
    ) -> Result<DocHandle, SessionError> {
        let label = label.into();
        self.check_admission(&label)
            .map_err(SessionError::Resource)?;
        let budget = self.limits.parse_budget();
        let tree = match self
            .spec
            .parse_document_budgeted(source, self.pool.fork(), &budget)
        {
            Ok(tree) => tree,
            Err((ParseError::Xml(err), _)) => return Err(SessionError::Parse(err)),
            Err((ParseError::Budget(b), _)) => {
                return Err(SessionError::Resource(ResourceError::from_budget(
                    b,
                    format!("open `{label}`"),
                )))
            }
        };
        self.pool = tree.pool().fork();
        Ok(self.admit(label, tree))
    }

    /// Opens a pre-built tree under `label`.  Its values are absorbed into
    /// the corpus pool (allocations shared, ids untouched) so future opens
    /// and edits stay warm.  Under [`Limits`] the tree is bounded the same
    /// way a parsed source is: admission and node count are checked before
    /// anything is shared or indexed.
    pub fn open(
        &mut self,
        label: impl Into<String>,
        tree: XmlTree,
    ) -> Result<DocHandle, SessionError> {
        let label = label.into();
        self.check_admission(&label)
            .map_err(SessionError::Resource)?;
        if let Some(max) = self.limits.max_doc_nodes {
            if tree.num_nodes() > max {
                return Err(SessionError::Resource(ResourceError::new(
                    LimitKind::DocNodes,
                    max as u64,
                    tree.num_nodes() as u64,
                    format!("open `{label}`"),
                )));
            }
        }
        self.pool.absorb(tree.pool());
        Ok(self.admit(label, tree))
    }

    /// Admission guard shared by the open paths: a bounded dirty set sheds
    /// load *before* the parse or index build spends anything.
    fn check_admission(&self, label: &str) -> Result<(), ResourceError> {
        if let Some(max) = self.limits.max_dirty_docs {
            let projected = self.dirty.len() + 1;
            if projected > max {
                return Err(ResourceError::new(
                    LimitKind::DirtyDocs,
                    max as u64,
                    projected as u64,
                    format!("open `{label}`: commit to drain the dirty set"),
                ));
            }
        }
        Ok(())
    }

    fn admit(&mut self, label: String, tree: XmlTree) -> DocHandle {
        let layout = std::sync::Arc::clone(self.spec.incremental_layout());
        let index = IncrementalIndex::with_layout(layout, &tree);
        let handle = DocHandle::new(self.next_handle);
        self.next_handle += 1;
        // Handles grow monotonically, so the newcomer is last in open order.
        let position = self.docs.len();
        self.docs.insert(
            handle.raw(),
            CorpusDoc {
                label,
                tree,
                index,
                journal: EditJournal::new(),
                position,
                report: None,
                committed_clean: None,
            },
        );
        self.dirty.push(handle.raw());
        self.instr.dirty_docs.set(self.dirty.len() as i64);
        self.instr.open_docs.set(self.docs.len() as i64);
        handle
    }

    /// Read-only access to an open document's tree.
    pub fn tree(&self, handle: DocHandle) -> Result<&XmlTree, SessionError> {
        self.docs
            .get(&handle.raw())
            .map(|d| &d.tree)
            .ok_or(SessionError::UnknownHandle(handle))
    }

    /// An open document's label.
    pub fn label(&self, handle: DocHandle) -> Result<&str, SessionError> {
        self.docs
            .get(&handle.raw())
            .map(|d| d.label.as_str())
            .ok_or(SessionError::UnknownHandle(handle))
    }

    /// The handle of the open document labelled `label`, if any (first
    /// match in open order; labels need not be unique — handles are the
    /// stable identity).
    pub fn handle_by_label(&self, label: &str) -> Option<DocHandle> {
        self.docs
            .iter()
            .find(|(_, d)| d.label == label)
            .map(|(&raw, _)| DocHandle::new(raw))
    }

    /// The document's complete edit history since it was opened.
    pub fn journal(&self, handle: DocHandle) -> Result<&EditJournal, SessionError> {
        self.docs
            .get(&handle.raw())
            .map(|d| &d.journal)
            .ok_or(SessionError::UnknownHandle(handle))
    }

    /// Applies a batch of edits to one document; the document joins the
    /// dirty set and is re-checked at the next [`CorpusSession::commit`].
    /// Rejected ops leave the earlier ops of the batch applied (the error
    /// reports how many) with indexes still exact.
    ///
    /// [`Limits`] rejections ([`SessionError::Resource`]) are different:
    /// they are checked **before** any op is applied, so the batch comes
    /// back whole in the error's echo and the document is untouched —
    /// commit to drain the queue, then retry.
    pub fn apply(&mut self, handle: DocHandle, ops: &[EditOp]) -> Result<(), SessionError> {
        let limits = self.limits;
        let queued = self.queued_ops;
        let doc = self
            .docs
            .get_mut(&handle.raw())
            .ok_or(SessionError::UnknownHandle(handle))?;
        let newly_dirty = !self.dirty.contains(&handle.raw());
        if newly_dirty {
            if let Some(max) = limits.max_dirty_docs {
                let projected = self.dirty.len() + 1;
                if projected > max {
                    return Err(SessionError::Resource(
                        ResourceError::new(
                            LimitKind::DirtyDocs,
                            max as u64,
                            projected as u64,
                            format!("{handle} (`{}`): commit to drain the dirty set", doc.label),
                        )
                        .with_rejected(limits::echo_ops(ops)),
                    ));
                }
            }
        }
        limits::admit_ops(
            &limits,
            &doc.tree,
            queued,
            ops,
            &format!("{handle} (`{}`)", doc.label),
        )
        .map_err(SessionError::Resource)?;
        if newly_dirty {
            self.dirty.push(handle.raw());
            self.instr.dirty_docs.set(self.dirty.len() as i64);
        }
        // Timed per batch, not per op: one clock pair amortized over the
        // whole edit slice keeps instrumentation inside the overhead budget.
        let timer = self.instr.registry.start_timer();
        let outcome = apply_ops(&mut doc.tree, &mut doc.index, &mut doc.journal, ops);
        let applied = match &outcome {
            Ok(()) => ops.len() as u64,
            Err(SessionError::Edit { index, .. }) => *index as u64,
            Err(_) => unreachable!("apply_ops only raises Edit errors"),
        };
        self.instr.edits.add(applied);
        self.queued_ops += applied as usize;
        self.instr.queued_ops.add(applied as i64);
        if let Some(t) = timer {
            self.instr.apply_ns.record_elapsed(t);
        }
        outcome
    }

    /// Closes a document, handing its (edited) tree back.  The close is
    /// reported in the next commit's [`BatchDelta::closed`].
    pub fn close(&mut self, handle: DocHandle) -> Result<XmlTree, SessionError> {
        let doc = self
            .docs
            .remove(&handle.raw())
            .ok_or(SessionError::UnknownHandle(handle))?;
        self.dirty.retain(|&raw| raw != handle.raw());
        if doc.committed_clean == Some(true) {
            self.clean_docs -= 1;
        }
        self.positions_stale = true;
        self.closed.push(ClosedDoc {
            handle,
            label: doc.label,
        });
        self.instr.dirty_docs.set(self.dirty.len() as i64);
        self.instr.open_docs.set(self.docs.len() as i64);
        Ok(doc.tree)
    }

    /// Re-checks exactly the dirty documents (structural `T ⊨ D` plus the
    /// incrementally maintained `T ⊨ Σ`) and returns the diff against the
    /// previous commit.  Clean documents cost nothing — their reports are
    /// cached from the commit that produced them, the corpus-wide counters
    /// are maintained incrementally, and open-order positions are
    /// renumbered only when a close shifted them.
    ///
    /// Ignores [`Limits::deadline`] — a plain `commit` always runs the
    /// dirty set to completion.  Use [`CorpusSession::try_commit`] for the
    /// deadline-honoring variant.
    pub fn commit(&mut self) -> BatchDelta {
        self.commit_inner(None)
            .expect("an unbounded commit cannot be rejected")
    }

    /// Like [`CorpusSession::commit`], but honoring [`Limits::deadline`]:
    /// if re-checking would run past the soft deadline, the commit stops
    /// *between* documents (work is never cut off mid-document) and returns
    /// a [`ResourceError`] naming how far it got.  Progress is staged, not
    /// lost — re-checked documents stay done, un-checked ones stay dirty,
    /// and no delta is announced (the sequence number does not advance), so
    /// the next `try_commit` resumes where this one stopped and announces
    /// one combined delta.
    pub fn try_commit(&mut self) -> Result<BatchDelta, ResourceError> {
        let deadline = self.limits.deadline.map(|budget| (Instant::now(), budget));
        self.commit_inner(deadline)
    }

    fn commit_inner(
        &mut self,
        deadline: Option<(Instant, std::time::Duration)>,
    ) -> Result<BatchDelta, ResourceError> {
        let commit_timer = self.instr.registry.start_timer();
        let dirty = std::mem::take(&mut self.dirty);
        let closed = std::mem::take(&mut self.closed);

        if self.positions_stale {
            for (position, doc) in self.docs.values_mut().enumerate() {
                doc.position = position;
            }
            self.positions_stale = false;
        }

        let validator = self.spec.validator();
        // Resume from progress a deadline-aborted attempt staged.
        let mut changes = std::mem::take(&mut self.staged_changes);
        let mut rechecked_docs = std::mem::take(&mut self.staged_rechecked);
        let mut violations_added = 0u64;
        let mut violations_removed = 0u64;
        for (i, &raw) in dirty.iter().enumerate() {
            if let Some((started, budget)) = deadline {
                // `>=` so a zero deadline deterministically stops at once.
                let elapsed = started.elapsed();
                if elapsed >= budget {
                    // Stop between documents: stage the finished rechecks,
                    // restore the unprocessed dirty tail and the closes,
                    // announce nothing.
                    self.staged_changes = changes;
                    self.staged_rechecked = rechecked_docs;
                    self.dirty = dirty[i..].to_vec();
                    self.closed = closed;
                    self.instr.dirty_docs.set(self.dirty.len() as i64);
                    self.instr.violations_added.add(violations_added);
                    self.instr.violations_removed.add(violations_removed);
                    if let Some(t) = commit_timer {
                        self.instr.commit_ns.record_elapsed(t);
                    }
                    return Err(ResourceError::new(
                        LimitKind::Deadline,
                        budget.as_millis() as u64,
                        elapsed.as_millis() as u64,
                        format!(
                            "commit: {i} of {} dirty documents re-checked this attempt; {} remain",
                            dirty.len(),
                            dirty.len() - i
                        ),
                    ));
                }
            }
            rechecked_docs += 1;
            let Some(doc) = self.docs.get_mut(&raw) else {
                // Dirtied, then closed before the commit (close() retains
                // the dirty list, but guard against future reorderings).
                continue;
            };
            // Which shards the pending edits can affect — snapshotted
            // *before* the recheck drains the constraint dirty set.
            let plan = self.spec.shard_plan();
            let dirty_checks = doc.index.pending();
            let mut dirty_shards: Vec<u32> = doc
                .index
                .dirty_checks()
                .iter()
                .map(|&i| plan.shard_of_check(i))
                .collect();
            dirty_shards.sort_unstable();
            dirty_shards.dedup();
            let recheck_timer = self.instr.registry.start_timer();
            let (validation_errors, violations, fault, rebuilt) =
                Self::recheck_contained(self.spec, &validator, doc, self.shard_scope.as_ref());
            if let Some(t) = recheck_timer {
                self.instr.recheck_ns.record_elapsed(t);
            }
            // Scoped commits recompute only in-scope dirty constraints; the
            // rest were dropped, not rechecked.
            let kept = doc.index.rechecked();
            self.instr.shard_rechecked.add(kept as u64);
            self.instr
                .shard_skipped
                .add(dirty_checks.saturating_sub(kept) as u64);
            // Exact per-commit violation churn: the previous report is
            // still at hand here, which a bare BatchDelta never has.
            let previous_violations = doc.report.as_ref().map_or(0, |r| r.violations.len());
            violations_added += violations.len().saturating_sub(previous_violations) as u64;
            violations_removed += previous_violations.saturating_sub(violations.len()) as u64;
            let fresh = DocReport {
                index: doc.position,
                label: doc.label.clone(),
                parse_error: None,
                validation_errors,
                violations,
                fault,
            };
            let was_clean = doc.committed_clean;
            let now_clean = fresh.is_clean();
            match (was_clean, now_clean) {
                (Some(true), false) => self.clean_docs -= 1,
                (Some(false), true) | (None, true) => self.clean_docs += 1,
                _ => {}
            }
            // Any observable difference enters the stream — not just
            // clean ↔ violating flips: a document that trades one violation
            // for another must reach subscribers too, or their replicas
            // drift from `report()`.
            let changed = match &doc.report {
                None => true,
                Some(previous) => {
                    previous.validation_errors != fresh.validation_errors
                        || previous.violations != fresh.violations
                        || previous.fault != fresh.fault
                }
            };
            // Shard tag: opens, structural/fault churn and panic-rebuilt
            // rechecks are shard-independent, so they broadcast; a pure
            // Σ-violation change can only have happened in a dirty shard
            // (clean shards served their cached verdicts).
            let broadcast = was_clean.is_none()
                || rebuilt
                || match &doc.report {
                    None => true,
                    Some(previous) => {
                        previous.validation_errors != fresh.validation_errors
                            || previous.fault != fresh.fault
                    }
                };
            doc.committed_clean = Some(now_clean);
            doc.report = Some(fresh.clone());
            if changed {
                changes.push(DocChange {
                    handle: DocHandle::new(raw),
                    was_clean,
                    report: fresh,
                    shards: if broadcast {
                        plan.all_shards().collect()
                    } else {
                        dirty_shards
                    },
                });
            }
        }
        // The dirty list is in dirtying order (staged changes from an
        // aborted attempt may precede newer handles); the stream contract
        // is open order.
        changes.sort_by_key(|c| c.handle);

        self.commits += 1;
        // Delta tag: the union of the change tags, widened to every shard
        // when a close rides along (closes are shard-independent and every
        // filtered subscriber must drop the document).
        let mut delta_shards: BTreeSet<u32> = changes
            .iter()
            .flat_map(|c| c.shards.iter().copied())
            .collect();
        if !closed.is_empty() {
            delta_shards.extend(self.spec.shard_plan().all_shards());
        }
        let delta = BatchDelta {
            seq: self.commits,
            changes,
            closed,
            rechecked_docs,
            total: self.docs.len(),
            clean: self.clean_docs,
            shards: delta_shards.into_iter().collect(),
        };
        self.instr.shard_deltas.add(delta.shards.len() as u64);
        self.instr.shard_touched.record(delta.shards.len() as u64);
        self.history.push(delta.clone());
        self.instr.commits.inc();
        self.instr.violations_added.add(violations_added);
        self.instr.violations_removed.add(violations_removed);
        self.instr.delta_changes.record(delta.changes.len() as u64);
        // The commit drained the dirty set and its queued edits.
        self.queued_ops = 0;
        self.instr.dirty_docs.set(0);
        self.instr.queued_ops.set(0);
        self.instr.open_docs.set(self.docs.len() as i64);
        if let Some(t) = commit_timer {
            self.instr.commit_ns.record_elapsed(t);
        }
        Ok(delta)
    }

    /// One document's re-check, panic-contained.  A panic (the
    /// `corpus.recheck` failpoint, or a genuine bug in constraint
    /// re-evaluation) quarantines nothing corpus-wide: the incremental
    /// index — the stateful, possibly mid-update part — is rebuilt from the
    /// tree and the check retried once; if even the rebuilt index panics,
    /// the document's report carries a [`DocFault::Panic`] instead of a
    /// verdict (never a wrong one) and every other document proceeds.
    /// The trailing `bool` reports whether the index-rebuild path ran: a
    /// rebuilt index recomputed *every* constraint, so the change must be
    /// broadcast to all shards rather than tagged with the edit's dirty set.
    fn recheck_contained(
        spec: &CompiledSpec,
        validator: &xic_xml::Validator<'_>,
        doc: &mut CorpusDoc,
        scope: Option<&ShardScope>,
    ) -> (Vec<String>, Vec<Violation>, Option<DocFault>, bool) {
        fn run(
            validator: &xic_xml::Validator<'_>,
            doc: &mut CorpusDoc,
            scope: Option<&ShardScope>,
        ) -> (Vec<String>, Vec<Violation>) {
            // Inside `run` so the injected fault exercises both attempts:
            // Nth(1) tests the transparent retry, an always-firing
            // probability tests the quarantine path.
            if xic_telemetry::faults::hit("corpus.recheck") {
                panic!("injected fault: corpus.recheck");
            }
            let validation_errors: Vec<String> = validator
                .validate(&doc.tree)
                .iter()
                .map(|e| e.to_string())
                .collect();
            let violations = match scope {
                Some(s) => doc.index.check_all_where(&doc.tree, |i| s.keep[i]),
                None => doc.index.check_all(&doc.tree),
            };
            (validation_errors, violations)
        }
        let first = catch_unwind(AssertUnwindSafe(|| run(validator, doc, scope)));
        match first {
            Ok((errors, violations)) => (errors, violations, None, false),
            Err(payload) => {
                crate::batch::resilience_instruments().0.inc();
                let cause = crate::batch::panic_cause(payload);
                doc.index =
                    IncrementalIndex::with_layout(Arc::clone(spec.incremental_layout()), &doc.tree);
                match catch_unwind(AssertUnwindSafe(|| run(validator, doc, scope))) {
                    Ok((errors, violations)) => (errors, violations, None, true),
                    Err(payload) => {
                        crate::batch::resilience_instruments().0.inc();
                        let retry_cause = crate::batch::panic_cause(payload);
                        (
                            Vec::new(),
                            Vec::new(),
                            Some(DocFault::Panic {
                                cause: format!(
                                    "{cause}; retry after index rebuild also panicked: {retry_cause}"
                                ),
                            }),
                            true,
                        )
                    }
                }
            }
        }
    }

    /// The last committed sequence number (0 before the first commit).
    pub fn last_seq(&self) -> u64 {
        self.commits
    }

    /// Ops applied since the last commit (what the
    /// [`Limits::max_queued_ops`] backpressure bound compares against).
    pub fn queued_ops(&self) -> usize {
        self.queued_ops
    }

    /// The committed deltas with sequence numbers above `after_seq`, in
    /// order — the export surface of replication: ship these to a
    /// [`crate::CorpusReplica`] (or append them to a delta log with
    /// [`crate::journal::append_delta_log`]) and the replica reconstructs
    /// [`CorpusSession::report`] exactly, with no document ever re-shipped.
    /// Fails with [`JournalError::PrunedDeltas`] when the requested window
    /// was already dropped by [`CorpusSession::prune_deltas`].
    pub fn export_deltas(&self, after_seq: u64) -> Result<&[BatchDelta], JournalError> {
        if after_seq + 1 < self.history_base {
            return Err(JournalError::PrunedDeltas {
                first_retained: self.history_base,
            });
        }
        let skip = (after_seq + 1 - self.history_base) as usize;
        Ok(&self.history[skip.min(self.history.len())..])
    }

    /// Drops retained deltas with sequence numbers `<= up_to_seq` (once
    /// every subscriber has durably consumed them), bounding the history a
    /// long-lived corpus keeps in memory.  Returns how many were dropped.
    pub fn prune_deltas(&mut self, up_to_seq: u64) -> usize {
        let droppable = (up_to_seq + 1).saturating_sub(self.history_base) as usize;
        let drop = droppable.min(self.history.len());
        self.history.drain(..drop);
        self.history_base += drop as u64;
        drop
    }

    /// Materializes the full corpus report, ordered like a
    /// [`crate::BatchEngine::validate_batch`] run over the open documents in
    /// open order — and *identical* to one on the current trees
    /// (`tests/corpus_agreement.rs` holds it to that).  O(corpus): use the
    /// [`BatchDelta`] stream for change tracking and this for snapshots.
    ///
    /// # Panics
    /// Panics if a document was opened or edited after the last commit
    /// (commit first — a snapshot of half-applied edits would be stale).
    pub fn report(&self) -> BatchReport {
        assert!(
            self.dirty.is_empty() && self.staged_changes.is_empty(),
            "report() requires a commit after every open/edit (and after a deadline-aborted try_commit)"
        );
        let reports = self
            .docs
            .values()
            .enumerate()
            .map(|(position, doc)| {
                let mut report = doc
                    .report
                    .clone()
                    .expect("committed documents always carry a report");
                report.index = position;
                report
            })
            .collect();
        BatchReport::from_reports(reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{BatchDoc, BatchEngine};
    use xic_xml::{write_document, EditError};

    fn spec() -> CompiledSpec {
        CompiledSpec::from_sources(
            "<!ELEMENT school (teacher*)>\n\
             <!ELEMENT teacher EMPTY>\n\
             <!ATTLIST teacher name CDATA #REQUIRED>",
            Some("school"),
            "teacher.name -> teacher",
        )
        .unwrap()
    }

    #[test]
    fn commits_recheck_only_dirty_docs_and_flips_stream_out() {
        let spec = spec();
        let name = spec.dtd().attr_by_name("name").unwrap();
        let mut corpus = CorpusSession::new(&spec);
        let a = corpus
            .open_source("a.xml", "<school><teacher name=\"Joe\"/></school>")
            .unwrap();
        let b = corpus
            .open_source("b.xml", "<school><teacher name=\"Ann\"/></school>")
            .unwrap();

        // First commit checks both (both newly opened ⇒ both in the delta).
        let delta = corpus.commit();
        assert_eq!(delta.seq, 1);
        assert_eq!(delta.rechecked_docs, 2);
        assert_eq!(delta.changes.len(), 2);
        assert!(delta
            .changes
            .iter()
            .all(|c| c.was_clean.is_none() && c.now_clean()));
        assert_eq!((delta.total, delta.clean), (2, 2));

        // Break b's key: one dirty doc, one flip.
        let ann = corpus.tree(b).unwrap().elements().nth(1).unwrap();
        corpus
            .apply(
                b,
                &[
                    EditOp::AddElement {
                        parent: corpus.tree(b).unwrap().root(),
                        ty: spec.dtd().type_by_name("teacher").unwrap(),
                    },
                    EditOp::SetAttr {
                        element: ann,
                        attr: name,
                        value: "Dup".into(),
                    },
                ],
            )
            .unwrap();
        let added = corpus.tree(b).unwrap().elements().nth(2).unwrap();
        corpus
            .apply(
                b,
                &[EditOp::SetAttr {
                    element: added,
                    attr: name,
                    value: "Dup".into(),
                }],
            )
            .unwrap();
        let delta = corpus.commit();
        assert_eq!(delta.rechecked_docs, 1);
        assert_eq!(delta.changes.len(), 1);
        let change = &delta.changes[0];
        assert_eq!(change.handle, b);
        assert_eq!(change.was_clean, Some(true));
        assert!(!change.now_clean());
        assert!(matches!(
            change.report.violations[0],
            Violation::KeyViolation { .. }
        ));
        assert_eq!((delta.total, delta.clean), (2, 1));

        // Nothing dirty ⇒ empty delta, zero rechecks.
        let delta = corpus.commit();
        assert!(delta.is_empty());
        assert_eq!(delta.rechecked_docs, 0);

        // Close b: handle + label show up once, in the next delta only.
        corpus.close(b).unwrap();
        let delta = corpus.commit();
        assert_eq!(
            delta.closed,
            vec![ClosedDoc {
                handle: b,
                label: "b.xml".to_string()
            }]
        );
        assert_eq!((delta.total, delta.clean), (1, 1));
        assert!(corpus.tree(b).is_err());
        let _ = a;
    }

    /// A violating document that trades one violation for another stays
    /// violating — and still enters the delta stream, because its report
    /// changed.
    #[test]
    fn violation_content_changes_reach_the_stream() {
        let spec = spec();
        let name = spec.dtd().attr_by_name("name").unwrap();
        let mut corpus = CorpusSession::new(&spec);
        let a = corpus
            .open_source(
                "a.xml",
                "<school><teacher name=\"X\"/><teacher name=\"X\"/>\
                 <teacher name=\"Y\"/><teacher name=\"Y\"/></school>",
            )
            .unwrap();
        corpus.commit();

        // Heal the X clash; the Y clash remains: clean state is unchanged
        // (violating → violating) but the witness values moved X → Y.
        let first_x = corpus.tree(a).unwrap().elements().nth(1).unwrap();
        corpus
            .apply(
                a,
                &[EditOp::SetAttr {
                    element: first_x,
                    attr: name,
                    value: "Z".into(),
                }],
            )
            .unwrap();
        let delta = corpus.commit();
        assert_eq!(delta.changes.len(), 1);
        let change = &delta.changes[0];
        assert_eq!(change.was_clean, Some(false));
        assert!(!change.now_clean());
        assert!(matches!(
            &change.report.violations[0],
            Violation::KeyViolation { values, .. } if values == &vec!["Y".to_string()]
        ));
        // The stream now reconstructs report(): same report object.
        assert_eq!(&change.report, &corpus.report().reports()[0]);

        // A no-op rewrite (same value) leaves the report unchanged: the doc
        // is rechecked but nothing enters the stream.
        let first = corpus.tree(a).unwrap().elements().nth(1).unwrap();
        corpus
            .apply(
                a,
                &[EditOp::SetAttr {
                    element: first,
                    attr: name,
                    value: "Z".into(),
                }],
            )
            .unwrap();
        let delta = corpus.commit();
        assert_eq!(delta.rechecked_docs, 1);
        assert!(delta.is_empty());
    }

    #[test]
    fn report_matches_a_cold_batch_engine_run() {
        let spec = spec();
        let name = spec.dtd().attr_by_name("name").unwrap();
        let mut corpus = CorpusSession::new(&spec);
        let docs = [
            ("ok.xml", "<school><teacher name=\"Joe\"/></school>"),
            (
                "dup.xml",
                "<school><teacher name=\"A\"/><teacher name=\"A\"/></school>",
            ),
        ];
        let mut handles = Vec::new();
        for (label, src) in docs {
            handles.push(corpus.open_source(label, src).unwrap());
        }
        corpus.commit();
        let joe = corpus.tree(handles[0]).unwrap().elements().nth(1).unwrap();
        corpus
            .apply(
                handles[0],
                &[EditOp::SetAttr {
                    element: joe,
                    attr: name,
                    value: "Renamed".into(),
                }],
            )
            .unwrap();
        corpus.commit();

        // Serialize the *current* trees and run the cold path.
        let batch_docs: Vec<BatchDoc> = handles
            .iter()
            .map(|&h| {
                BatchDoc::new(
                    corpus.label(h).unwrap(),
                    write_document(corpus.tree(h).unwrap(), spec.dtd()),
                )
            })
            .collect();
        let cold = BatchEngine::new(1).validate_batch(&spec, &batch_docs);
        assert_eq!(corpus.report(), cold);
    }

    #[test]
    fn errors_name_the_handle_and_partial_batches_stay_applied() {
        let spec = spec();
        let teacher = spec.dtd().type_by_name("teacher").unwrap();
        let mut corpus = CorpusSession::new(&spec);
        let a = corpus
            .open_source("a.xml", "<school><teacher name=\"Joe\"/></school>")
            .unwrap();
        let root = corpus.tree(a).unwrap().root();
        let err = corpus
            .apply(
                a,
                &[
                    EditOp::AddElement {
                        parent: root,
                        ty: teacher,
                    },
                    EditOp::RemoveSubtree { element: root },
                ],
            )
            .unwrap_err();
        assert_eq!(
            err,
            SessionError::Edit {
                index: 1,
                error: EditError::RemoveRoot
            }
        );
        // The applied prefix is visible; commit re-checks the partially
        // edited doc exactly.
        assert_eq!(corpus.tree(a).unwrap().ext_count(teacher), 2);
        let delta = corpus.commit();
        assert_eq!(delta.rechecked_docs, 1);

        let dead = corpus.close(a).unwrap();
        assert_eq!(dead.ext_count(teacher), 2);
        assert_eq!(
            corpus.apply(a, &[]),
            Err(SessionError::UnknownHandle(a)),
            "closed handles are rejected"
        );
    }

    #[test]
    fn exported_deltas_feed_a_replica_and_prune_bounds_history() {
        use crate::journal::{CorpusReplica, JournalError};
        let spec = spec();
        let name = spec.dtd().attr_by_name("name").unwrap();
        let mut corpus = CorpusSession::new(&spec);
        let mut replica = CorpusReplica::new(spec.id());
        let a = corpus
            .open_source("a.xml", "<school><teacher name=\"Joe\"/></school>")
            .unwrap();
        let b = corpus
            .open_source("b.xml", "<school><teacher name=\"Ann\"/></school>")
            .unwrap();
        corpus.commit();
        replica
            .apply_deltas(corpus.export_deltas(replica.last_seq()).unwrap())
            .unwrap();
        assert_eq!(replica.report(), corpus.report());

        // Edit + close; the replica follows from deltas alone.
        let joe = corpus.tree(a).unwrap().elements().nth(1).unwrap();
        corpus
            .apply(
                a,
                &[EditOp::SetAttr {
                    element: joe,
                    attr: name,
                    value: "Ann".into(),
                }],
            )
            .unwrap();
        corpus.commit();
        corpus.close(b).unwrap();
        corpus.commit();
        replica
            .apply_deltas(corpus.export_deltas(replica.last_seq()).unwrap())
            .unwrap();
        assert_eq!(replica.last_seq(), 3);
        assert_eq!(replica.report(), corpus.report());
        assert_eq!(replica.num_docs(), 1);

        // Pruning consumed deltas bounds the retained history; asking for
        // the pruned window is a structured error, newer windows still work.
        assert_eq!(corpus.prune_deltas(2), 2);
        assert_eq!(corpus.export_deltas(2).unwrap().len(), 1);
        assert_eq!(
            corpus.export_deltas(0).unwrap_err(),
            JournalError::PrunedDeltas { first_retained: 3 }
        );
        assert_eq!(corpus.prune_deltas(100), 1);
        assert_eq!(corpus.export_deltas(3).unwrap().len(), 0);
    }

    #[test]
    fn dirty_set_bound_sheds_opens_and_edits_until_a_commit() {
        let spec = spec();
        let mut corpus = CorpusSession::with_limits(
            &spec,
            Limits {
                max_dirty_docs: Some(1),
                ..Limits::UNLIMITED
            },
        );
        let a = corpus
            .open_source("a.xml", "<school><teacher name=\"Joe\"/></school>")
            .unwrap();
        // The dirty set is full: a second open is shed before parsing.
        let err = corpus
            .open_source("b.xml", "<school><teacher name=\"Ann\"/></school>")
            .unwrap_err();
        let SessionError::Resource(resource) = err else {
            panic!("expected a resource rejection");
        };
        assert_eq!(resource.limit, LimitKind::DirtyDocs);
        corpus.commit();
        let b = corpus
            .open_source("b.xml", "<school><teacher name=\"Ann\"/></school>")
            .unwrap();
        corpus.commit();

        // Editing dirties: with b dirty, dirtying a is rejected whole.
        let teacher = spec.dtd().type_by_name("teacher").unwrap();
        let add_to = |corpus: &CorpusSession<'_>, h| EditOp::AddElement {
            parent: corpus.tree(h).unwrap().root(),
            ty: teacher,
        };
        corpus.apply(b, &[add_to(&corpus, b)]).unwrap();
        let op = add_to(&corpus, a);
        let err = corpus.apply(a, std::slice::from_ref(&op)).unwrap_err();
        let SessionError::Resource(resource) = err else {
            panic!("expected a resource rejection");
        };
        assert_eq!(resource.limit, LimitKind::DirtyDocs);
        assert_eq!(resource.rejected.len(), 1);
        assert_eq!(resource.rejected[0].op, op);
        // Nothing was applied to a; a re-apply after a commit succeeds.
        assert_eq!(corpus.tree(a).unwrap().ext_count(teacher), 1);
        corpus.commit();
        corpus.apply(a, &[op]).unwrap();
        corpus.commit();
    }

    #[test]
    fn queued_op_bound_rejects_batches_whole_and_drains_at_commit() {
        let spec = spec();
        let teacher = spec.dtd().type_by_name("teacher").unwrap();
        let mut corpus = CorpusSession::with_limits(
            &spec,
            Limits {
                max_queued_ops: Some(2),
                ..Limits::UNLIMITED
            },
        );
        let a = corpus
            .open_source("a.xml", "<school><teacher name=\"Joe\"/></school>")
            .unwrap();
        let root = corpus.tree(a).unwrap().root();
        let op = EditOp::AddElement {
            parent: root,
            ty: teacher,
        };
        let err = corpus.apply(a, &vec![op.clone(); 3]).unwrap_err();
        let SessionError::Resource(resource) = err else {
            panic!("expected a resource rejection");
        };
        assert_eq!(resource.limit, LimitKind::QueuedOps);
        assert_eq!(resource.rejected.len(), 3);
        assert_eq!(corpus.tree(a).unwrap().ext_count(teacher), 1);

        // Two fit; the third is over quota until a commit drains the queue.
        corpus.apply(a, &vec![op.clone(); 2]).unwrap();
        let err = corpus.apply(a, std::slice::from_ref(&op)).unwrap_err();
        assert!(matches!(err, SessionError::Resource(_)));
        corpus.commit();
        corpus.apply(a, &[op]).unwrap();
        corpus.commit();
        assert_eq!(corpus.tree(a).unwrap().ext_count(teacher), 4);
    }

    #[test]
    fn zero_deadline_aborts_try_commit_and_plain_commit_resumes() {
        let spec = spec();
        let mut corpus = CorpusSession::with_limits(
            &spec,
            Limits {
                deadline: Some(std::time::Duration::ZERO),
                ..Limits::UNLIMITED
            },
        );
        corpus
            .open_source("a.xml", "<school><teacher name=\"Joe\"/></school>")
            .unwrap();
        corpus
            .open_source("b.xml", "<school><teacher name=\"Ann\"/></school>")
            .unwrap();
        let err = corpus.try_commit().unwrap_err();
        assert_eq!(err.limit, LimitKind::Deadline);
        assert!(err.context.contains("dirty documents"), "{}", err.context);
        // Nothing was announced: no delta, no sequence advance.
        assert_eq!(corpus.last_seq(), 0);
        // A plain commit ignores the deadline, finishes the staged work and
        // announces one combined delta.
        let delta = corpus.commit();
        assert_eq!(delta.seq, 1);
        assert_eq!(delta.rechecked_docs, 2);
        assert_eq!(delta.changes.len(), 2);
        assert_eq!((delta.total, delta.clean), (2, 2));
        assert_eq!(corpus.report().total(), 2);
    }

    #[test]
    fn corpus_pool_is_shared_across_documents() {
        let spec = spec();
        let mut corpus = CorpusSession::new(&spec);
        let a = corpus
            .open_source("a.xml", "<school><teacher name=\"Shared\"/></school>")
            .unwrap();
        let b = corpus
            .open_source("b.xml", "<school><teacher name=\"Shared\"/></school>")
            .unwrap();
        // Both documents resolve "Shared" out of one allocation, and the
        // common prefix even shares ids.
        let ta = corpus.tree(a).unwrap();
        let tb = corpus.tree(b).unwrap();
        let ia = ta.pool().get("Shared").unwrap();
        let ib = tb.pool().get("Shared").unwrap();
        assert_eq!(ia, ib);
        assert_eq!(ta.resolve(ia).as_ptr(), tb.resolve(ib).as_ptr());
        assert!(corpus.pool().get("Shared").is_some());
    }
}
