//! Durable edit journals: a versioned, self-describing binary delta-log
//! format for session persistence and replication.
//!
//! PR 3/4 made re-validation O(edit) — but every session still died with
//! the process.  This module is the persistence half: it serializes a
//! session's base document plus its [`xic_xml::EditJournal`] (and, for
//! corpora, the [`BatchDelta`] stream itself) as an **append-only log**
//! keyed by the content-hash [`SpecId`] and a per-log sequence number, so
//! that
//!
//! * a crashed session recovers from its log (`Session::persist_to` /
//!   `Session::recover_from`) — a partially written final record is a
//!   **torn tail**, truncated on read rather than reported as an error;
//! * a replica reconstructs a corpus session's verdicts from
//!   [`BatchDelta`]s alone ([`CorpusReplica`]), without the documents ever
//!   being re-shipped or re-parsed — the on-ramp to distributed validation
//!   in the sense of Abiteboul et al., *Distributed XML Design*;
//! * `xic journal record | replay | inspect` exposes the same machinery on
//!   the command line, with the `xic batch --session` script syntax as the
//!   log's human-readable twin.
//!
//! # Format
//!
//! ```text
//! header   := "XICJ" version:u16 kind:u8 reserved:u8 spec-id:u64 u64   (24 bytes, LE)
//! record   := len:u32 seq:u64 tag:u8 payload:[u8; len] crc32:u32
//! ```
//!
//! `seq` starts at 1 and is contiguous; `crc32` (IEEE) covers `seq`, `tag`
//! and the payload.  A session-document log (kind 1) holds one *base*
//! record — a slot-for-slot [`TreeSnapshot`] of the document plus the
//! number of edits already folded into it — followed by one record per
//! [`EditOp`].  A delta-stream log (kind 2) holds one record per
//! [`BatchDelta`].
//!
//! # Failure policy (the contract the crash-injection suite enforces)
//!
//! Reads **never panic and never return wrong data**: every anomaly is
//! either *recovered* (a torn final record — truncation mid-write — is
//! dropped, yielding the last durable prefix) or *rejected* with a
//! structured [`JournalError`] (bad magic, version or spec, a CRC failure
//! before the final record, an out-of-sequence record, an undecodable
//! payload, a snapshot violating tree invariants).
//! `tests/journal_recovery.rs` truncates and corrupts logs at every byte
//! boundary and holds recovery to exactly this contract.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{self, OpenOptions};
use std::io::Write as _;
use std::path::Path;
use std::sync::{Arc, OnceLock};

use xic_constraints::Violation;
use xic_dtd::{AttrId, Dtd, ElemId};
use xic_telemetry::{Counter, Histogram};
use xic_xml::{
    EditError, EditJournal, EditOp, NodeId, NodeLabel, NodeSnapshot, SnapshotError, TreeSnapshot,
    XmlTree,
};

use crate::batch::{BatchReport, DocReport};
use crate::corpus::{BatchDelta, ClosedDoc, DocChange};
use crate::session::DocHandle;
use crate::spec::SpecId;

/// Global-registry journal instruments, resolved once (registry name
/// lookups take a read lock; the persist path should not pay it per call).
struct JournalInstruments {
    bytes_written: Arc<Counter>,
    records_appended: Arc<Counter>,
    records_read: Arc<Counter>,
    torn_repairs: Arc<Counter>,
    crc_failures: Arc<Counter>,
    persist_ns: Arc<Histogram>,
}

fn instruments() -> &'static JournalInstruments {
    static INSTRUMENTS: OnceLock<JournalInstruments> = OnceLock::new();
    INSTRUMENTS.get_or_init(|| {
        let registry = xic_telemetry::global();
        JournalInstruments {
            bytes_written: registry.counter("journal.bytes_written"),
            records_appended: registry.counter("journal.records_appended"),
            records_read: registry.counter("journal.records_read"),
            torn_repairs: registry.counter("journal.torn_repairs"),
            crc_failures: registry.counter("journal.crc_failures"),
            persist_ns: registry.histogram("journal.persist_ns"),
        }
    })
}

/// Counts one durable write into the journal instruments: the appended
/// record count and bytes, plus a torn-tail repair when the write had to
/// truncate one first.
fn note_write(records: usize, bytes: usize, repaired_torn_tail: bool) {
    let instr = instruments();
    instr.records_appended.add(records as u64);
    instr.bytes_written.add(bytes as u64);
    if repaired_torn_tail {
        instr.torn_repairs.inc();
    }
}

/// The four magic bytes every journal file starts with.
pub const MAGIC: [u8; 4] = *b"XICJ";

/// The format version this build reads and writes.  Version 2 added shard
/// tags to delta records (`BatchDelta::shards` and per-change
/// `DocChange::shards`); readers strictly reject other versions, so v1 logs
/// must be re-recorded.
pub const FORMAT_VERSION: u16 = 2;

/// Header length in bytes: magic, version, kind, reserved, spec id.
pub const HEADER_LEN: usize = 4 + 2 + 1 + 1 + 16;

/// Per-record framing overhead: length, sequence number, tag, CRC.
pub(crate) const FRAME_LEN: usize = 4 + 8 + 1 + 4;

const TAG_BASE: u8 = 1;
const TAG_OP: u8 = 2;
pub(crate) const TAG_DELTA: u8 = 3;

/// What a journal file contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogKind {
    /// One session document: a base snapshot followed by edit ops.
    SessionDoc,
    /// A corpus delta stream: one [`BatchDelta`] per record.
    DeltaStream,
}

impl LogKind {
    /// The header byte encoding this kind.
    pub fn code(self) -> u8 {
        match self {
            LogKind::SessionDoc => 1,
            LogKind::DeltaStream => 2,
        }
    }

    /// Decodes a header byte.
    pub fn from_code(code: u8) -> Option<LogKind> {
        match code {
            1 => Some(LogKind::SessionDoc),
            2 => Some(LogKind::DeltaStream),
            _ => None,
        }
    }
}

impl fmt::Display for LogKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogKind::SessionDoc => write!(f, "session-doc"),
            LogKind::DeltaStream => write!(f, "delta-stream"),
        }
    }
}

/// Why a journal operation failed.  Every variant is a *structured
/// rejection*: readers never panic on hostile bytes and never hand back
/// silently wrong data (see the module docs for the recover-or-reject
/// contract).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// The underlying file operation failed.
    Io {
        /// The file involved.
        path: String,
        /// The OS error rendering.
        detail: String,
    },
    /// The file is not a journal (too short for a header, or bad magic).
    NotAJournal {
        /// The file involved.
        path: String,
        /// What was wrong with the header.
        detail: String,
    },
    /// The journal was written by an incompatible format version.
    UnsupportedVersion {
        /// The version found in the header.
        found: u16,
    },
    /// The journal holds a different kind of log than the operation needs.
    WrongKind {
        /// The kind the operation required.
        expected: LogKind,
        /// The kind byte found in the header.
        found: u8,
    },
    /// The journal belongs to a different compiled specification.
    SpecMismatch {
        /// The spec the caller is validating against.
        expected: SpecId,
        /// The spec the log was recorded under.
        found: SpecId,
    },
    /// A non-final record failed its CRC or sequence check: the log is
    /// damaged beyond the torn-tail case and no suffix can be trusted.
    Corrupt {
        /// The sequence number the damaged record should have carried.
        seq: u64,
        /// Byte offset of the damaged record.
        offset: u64,
        /// What failed.
        detail: String,
    },
    /// A CRC-valid record's payload did not decode (wrong tag layout,
    /// truncated fields, invalid UTF-8, trailing bytes).
    Malformed {
        /// The record's sequence number.
        seq: u64,
        /// What failed to decode.
        detail: String,
    },
    /// A session-document log with no base-snapshot record.
    MissingBase,
    /// The base snapshot violated a tree invariant.
    Snapshot(SnapshotError),
    /// The log references element types or attributes the specification's
    /// DTD does not declare.
    ForeignIds {
        /// The record's sequence number.
        seq: u64,
        /// The offending reference.
        detail: String,
    },
    /// Replaying a logged op onto the recovered base was rejected — the
    /// log's history is not a valid edit sequence for its own base.
    Replay {
        /// Global index of the rejected op.
        op_index: u64,
        /// The underlying rejection.
        error: EditError,
    },
    /// The log's recorded history does not match the session's journal
    /// (appending would interleave two different histories).
    Diverged {
        /// What diverged.
        detail: String,
    },
    /// The journal was compacted past what the log holds: the dropped
    /// entries exist nowhere durable, so persisting would lose history.
    Compacted {
        /// Edits compacted away in memory.
        folded: u64,
        /// Edits the log holds.
        durable: u64,
    },
    /// A delta arrived out of sequence (the replica would silently drift).
    DeltaGap {
        /// The sequence number the replica expected next.
        expected: u64,
        /// The sequence number that arrived.
        found: u64,
    },
    /// A delta contradicted the replica's state (wrong `was_clean`, a close
    /// for an unknown document, or counters that do not add up).
    DeltaMismatch {
        /// The delta's sequence number.
        seq: u64,
        /// The contradiction.
        detail: String,
    },
    /// The requested deltas were pruned from the session's retained
    /// history.
    PrunedDeltas {
        /// The oldest sequence number still retained.
        first_retained: u64,
    },
    /// The handle names no open document (closed, or from another session).
    UnknownHandle {
        /// The raw handle number.
        handle: u64,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { path, detail } => write!(f, "{path}: {detail}"),
            JournalError::NotAJournal { path, detail } => {
                write!(f, "{path}: not a journal ({detail})")
            }
            JournalError::UnsupportedVersion { found } => {
                write!(f, "unsupported journal format version {found} (this build reads {FORMAT_VERSION})")
            }
            JournalError::WrongKind { expected, found } => {
                write!(f, "expected a {expected} log, found kind byte {found}")
            }
            JournalError::SpecMismatch { expected, found } => {
                write!(f, "journal belongs to {found}, not {expected}")
            }
            JournalError::Corrupt {
                seq,
                offset,
                detail,
            } => {
                write!(f, "corrupt record #{seq} at byte {offset}: {detail}")
            }
            JournalError::Malformed { seq, detail } => {
                write!(f, "record #{seq} does not decode: {detail}")
            }
            JournalError::MissingBase => {
                write!(f, "session log holds no base-snapshot record")
            }
            JournalError::Snapshot(err) => write!(f, "{err}"),
            JournalError::ForeignIds { seq, detail } => {
                write!(
                    f,
                    "record #{seq} references ids outside the spec's DTD: {detail}"
                )
            }
            JournalError::Replay { op_index, error } => {
                write!(f, "logged op #{op_index} does not replay: {error}")
            }
            JournalError::Diverged { detail } => {
                write!(f, "log and session histories diverge: {detail}")
            }
            JournalError::Compacted { folded, durable } => write!(
                f,
                "journal compacted {folded} edits but the log only holds {durable}: \
                 the difference exists nowhere durable"
            ),
            JournalError::DeltaGap { expected, found } => {
                write!(
                    f,
                    "delta sequence gap: expected commit {expected}, got {found}"
                )
            }
            JournalError::DeltaMismatch { seq, detail } => {
                write!(f, "delta {seq} contradicts the replica: {detail}")
            }
            JournalError::PrunedDeltas { first_retained } => write!(
                f,
                "requested deltas were pruned; the oldest retained commit is {first_retained}"
            ),
            JournalError::UnknownHandle { handle } => {
                write!(f, "unknown document handle doc-{handle}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<SnapshotError> for JournalError {
    fn from(err: SnapshotError) -> JournalError {
        JournalError::Snapshot(err)
    }
}

fn io_err(path: &Path, err: std::io::Error) -> JournalError {
    JournalError::Io {
        path: path.display().to_string(),
        detail: err.to_string(),
    }
}

// ---------------------------------------------------------------------------
// Hardened write path: short writes surfaced, transient errors retried with
// bounded backoff, data synced before a write is reported durable.  The
// `journal.write` / `journal.append` / `journal.sync` failpoints inject
// transient `Interrupted` faults here (see `xic_telemetry::faults`).

/// Process-wide transient-IO retry counter (`resilience.io_retries`),
/// resolved once.
fn io_retries_counter() -> &'static Arc<Counter> {
    static COUNTER: OnceLock<Arc<Counter>> = OnceLock::new();
    COUNTER.get_or_init(|| xic_telemetry::global().counter("resilience.io_retries"))
}

/// Raises an injected transient fault (`ErrorKind::Interrupted`) when the
/// named failpoint is armed; compiled to `Ok(())` without the `faults`
/// feature.
fn fault_io(name: &'static str) -> std::io::Result<()> {
    if xic_telemetry::faults::hit(name) {
        return Err(std::io::Error::new(
            std::io::ErrorKind::Interrupted,
            format!("injected fault: {name}"),
        ));
    }
    Ok(())
}

/// Retries a transient-failure-prone IO step with bounded backoff
/// (1/2/4 ms between the four attempts), counting each retry in
/// `resilience.io_retries`.  Only `Interrupted` is considered transient;
/// everything else surfaces immediately.  The closure must be safe to
/// re-run after a failure (nothing partially applied), which each caller
/// guarantees by retrying *stages*, not whole multi-stage writes.
fn retry_interrupted<T>(mut attempt: impl FnMut() -> std::io::Result<T>) -> std::io::Result<T> {
    const BACKOFF_MS: [u64; 4] = [0, 1, 2, 4];
    for (i, backoff) in BACKOFF_MS.iter().enumerate() {
        if *backoff > 0 {
            std::thread::sleep(std::time::Duration::from_millis(*backoff));
        }
        match attempt() {
            Ok(value) => return Ok(value),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted && i + 1 < BACKOFF_MS.len() => {
                io_retries_counter().inc();
            }
            Err(e) => return Err(e),
        }
    }
    unreachable!("the final attempt either returned its value or its error")
}

/// `write_all` with explicit accounting: a `write` accepting zero bytes
/// mid-buffer surfaces as a `WriteZero` error naming how far the write
/// got (so the caller's `JournalError::Io` says "short write", not
/// nothing), and `Interrupted` is retried in place.
fn write_all_checked(file: &mut fs::File, mut buf: &[u8]) -> std::io::Result<()> {
    let total = buf.len();
    while !buf.is_empty() {
        match file.write(buf) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    format!(
                        "short write: only {} of {total} bytes accepted",
                        total - buf.len()
                    ),
                ))
            }
            Ok(n) => buf = &buf[n..],
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                io_retries_counter().inc();
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// One durable write: the buffer lands fully (short writes surfaced),
/// then `sync_data` pushes it to the platter before the write is reported
/// durable.  `point` is the failpoint name injected before the first byte
/// (`journal.write` for fresh files, `journal.append` for appends); the
/// sync stage carries its own `journal.sync` failpoint.  Each stage
/// retries transient failures independently, so a retry never re-appends
/// bytes that already landed.
fn write_and_sync(file: &mut fs::File, buf: &[u8], point: &'static str) -> std::io::Result<()> {
    retry_interrupted(|| fault_io(point))?;
    write_all_checked(file, buf)?;
    file.flush()?;
    retry_interrupted(|| {
        fault_io("journal.sync")?;
        file.sync_data()
    })
}

/// Durably creates a fresh log file (create, write, sync) through the
/// hardened write path.
fn write_fresh(path: &Path, buf: &[u8]) -> Result<(), JournalError> {
    let mut file = fs::File::create(path).map_err(|e| io_err(path, e))?;
    write_and_sync(&mut file, buf, "journal.write").map_err(|e| io_err(path, e))
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE, reflected) — the per-record integrity check.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE 802.3) over a sequence of byte slices.
pub fn crc32(parts: &[&[u8]]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for part in parts {
        for &b in *part {
            c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Little-endian encoders and decoders for the record payloads.

#[derive(Default)]
pub(crate) struct Enc {
    pub(crate) buf: Vec<u8>,
}

impl Enc {
    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn str(&mut self, v: &str) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }
    fn strs(&mut self, vs: &[String]) {
        self.u32(vs.len() as u32);
        for v in vs {
            self.str(v);
        }
    }
}

pub(crate) struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.buf.len() - self.pos < n {
            return Err(format!("payload exhausted ({n} bytes wanted)"));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
    pub(crate) fn u8(&mut self) -> Result<u8, String> {
        Ok(self.bytes(1)?[0])
    }
    pub(crate) fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }
    pub(crate) fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }
    pub(crate) fn str(&mut self) -> Result<String, String> {
        let n = self.u32()? as usize;
        let bytes = self.bytes(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "invalid UTF-8 in string".to_string())
    }
    fn strs(&mut self) -> Result<Vec<String>, String> {
        let n = self.u32()?;
        let mut out = Vec::new();
        for _ in 0..n {
            out.push(self.str()?);
        }
        Ok(out)
    }
    pub(crate) fn finish(self) -> Result<(), String> {
        if self.pos != self.buf.len() {
            return Err(format!(
                "{} trailing bytes after the payload",
                self.buf.len() - self.pos
            ));
        }
        Ok(())
    }
}

const NO_PARENT: u32 = u32::MAX;

fn enc_snapshot(enc: &mut Enc, snap: &TreeSnapshot) {
    enc.u32(snap.root.0);
    enc.u32(snap.nodes.len() as u32);
    for node in &snap.nodes {
        match node.label {
            NodeLabel::Element(ty) => {
                enc.u8(0);
                enc.u32(ty.0);
            }
            NodeLabel::Attribute(attr) => {
                enc.u8(1);
                enc.u32(attr.0);
            }
            NodeLabel::Text => enc.u8(2),
        }
        enc.u32(node.parent.map_or(NO_PARENT, |p| p.0));
        let mut flags = 0u8;
        if node.detached {
            flags |= 1;
        }
        if node.value.is_some() {
            flags |= 2;
        }
        enc.u8(flags);
        if let Some(value) = &node.value {
            enc.str(value);
        }
        enc.u32(node.children.len() as u32);
        for c in &node.children {
            enc.u32(c.0);
        }
        enc.u32(node.attrs.len() as u32);
        for (attr, n) in &node.attrs {
            enc.u32(attr.0);
            enc.u32(n.0);
        }
    }
}

fn dec_snapshot(dec: &mut Dec<'_>) -> Result<TreeSnapshot, String> {
    let root = NodeId(dec.u32()?);
    let count = dec.u32()?;
    let mut nodes = Vec::new();
    for _ in 0..count {
        let label = match dec.u8()? {
            0 => NodeLabel::Element(ElemId(dec.u32()?)),
            1 => NodeLabel::Attribute(AttrId(dec.u32()?)),
            2 => NodeLabel::Text,
            other => return Err(format!("unknown node-label kind {other}")),
        };
        let parent = match dec.u32()? {
            NO_PARENT => None,
            p => Some(NodeId(p)),
        };
        let flags = dec.u8()?;
        if flags & !3 != 0 {
            return Err(format!("unknown node flags {flags:#x}"));
        }
        let value = if flags & 2 != 0 {
            Some(dec.str()?)
        } else {
            None
        };
        let num_children = dec.u32()?;
        let mut children = Vec::new();
        for _ in 0..num_children {
            children.push(NodeId(dec.u32()?));
        }
        let num_attrs = dec.u32()?;
        let mut attrs = Vec::new();
        for _ in 0..num_attrs {
            let attr = AttrId(dec.u32()?);
            attrs.push((attr, NodeId(dec.u32()?)));
        }
        nodes.push(NodeSnapshot {
            label,
            parent,
            value,
            detached: flags & 1 != 0,
            children,
            attrs,
        });
    }
    Ok(TreeSnapshot { nodes, root })
}

pub(crate) fn enc_op(enc: &mut Enc, op: &EditOp) {
    match op {
        EditOp::SetAttr {
            element,
            attr,
            value,
        } => {
            enc.u8(1);
            enc.u32(element.0);
            enc.u32(attr.0);
            enc.str(value);
        }
        EditOp::AddElement { parent, ty } => {
            enc.u8(2);
            enc.u32(parent.0);
            enc.u32(ty.0);
        }
        EditOp::AddText { parent, value } => {
            enc.u8(3);
            enc.u32(parent.0);
            enc.str(value);
        }
        EditOp::RemoveSubtree { element } => {
            enc.u8(4);
            enc.u32(element.0);
        }
    }
}

pub(crate) fn dec_op(dec: &mut Dec<'_>) -> Result<EditOp, String> {
    Ok(match dec.u8()? {
        1 => EditOp::SetAttr {
            element: NodeId(dec.u32()?),
            attr: AttrId(dec.u32()?),
            value: dec.str()?,
        },
        2 => EditOp::AddElement {
            parent: NodeId(dec.u32()?),
            ty: ElemId(dec.u32()?),
        },
        3 => EditOp::AddText {
            parent: NodeId(dec.u32()?),
            value: dec.str()?,
        },
        4 => EditOp::RemoveSubtree {
            element: NodeId(dec.u32()?),
        },
        other => return Err(format!("unknown edit-op tag {other}")),
    })
}

fn enc_violation(enc: &mut Enc, v: &Violation) {
    match v {
        Violation::KeyViolation {
            constraint,
            witnesses,
            values,
        } => {
            enc.u8(1);
            enc.str(constraint);
            enc.u32(witnesses.0 .0);
            enc.u32(witnesses.1 .0);
            enc.strs(values);
        }
        Violation::InclusionViolation {
            constraint,
            witness,
            values,
        } => {
            enc.u8(2);
            enc.str(constraint);
            enc.u32(witness.0);
            enc.strs(values);
        }
        Violation::MissingAttributes {
            constraint,
            witness,
        } => {
            enc.u8(3);
            enc.str(constraint);
            enc.u32(witness.0);
        }
        Violation::NegationUnsatisfied { constraint } => {
            enc.u8(4);
            enc.str(constraint);
        }
    }
}

fn dec_violation(dec: &mut Dec<'_>) -> Result<Violation, String> {
    Ok(match dec.u8()? {
        1 => Violation::KeyViolation {
            constraint: dec.str()?,
            witnesses: (NodeId(dec.u32()?), NodeId(dec.u32()?)),
            values: dec.strs()?,
        },
        2 => Violation::InclusionViolation {
            constraint: dec.str()?,
            witness: NodeId(dec.u32()?),
            values: dec.strs()?,
        },
        3 => Violation::MissingAttributes {
            constraint: dec.str()?,
            witness: NodeId(dec.u32()?),
        },
        4 => Violation::NegationUnsatisfied {
            constraint: dec.str()?,
        },
        other => return Err(format!("unknown violation tag {other}")),
    })
}

fn enc_doc_report(enc: &mut Enc, r: &DocReport) {
    enc.u64(r.index as u64);
    enc.str(&r.label);
    match &r.parse_error {
        None => enc.u8(0),
        Some(e) => {
            enc.u8(1);
            enc.str(e);
        }
    }
    enc.strs(&r.validation_errors);
    enc.u32(r.violations.len() as u32);
    for v in &r.violations {
        enc_violation(enc, v);
    }
    match &r.fault {
        None => enc.u8(0),
        Some(crate::DocFault::Panic { cause }) => {
            enc.u8(1);
            enc.str(cause);
        }
        Some(crate::DocFault::Resource { cause }) => {
            enc.u8(2);
            enc.str(cause);
        }
    }
}

fn dec_doc_report(dec: &mut Dec<'_>) -> Result<DocReport, String> {
    let index = dec.u64()? as usize;
    let label = dec.str()?;
    let parse_error = match dec.u8()? {
        0 => None,
        1 => Some(dec.str()?),
        other => return Err(format!("unknown parse-error flag {other}")),
    };
    let validation_errors = dec.strs()?;
    let num_violations = dec.u32()?;
    let mut violations = Vec::new();
    for _ in 0..num_violations {
        violations.push(dec_violation(dec)?);
    }
    let fault = match dec.u8()? {
        0 => None,
        1 => Some(crate::DocFault::Panic { cause: dec.str()? }),
        2 => Some(crate::DocFault::Resource { cause: dec.str()? }),
        other => return Err(format!("unknown fault flag {other}")),
    };
    Ok(DocReport {
        index,
        label,
        parse_error,
        validation_errors,
        violations,
        fault,
    })
}

fn enc_shards(enc: &mut Enc, shards: &[u32]) {
    enc.u32(shards.len() as u32);
    for &s in shards {
        enc.u32(s);
    }
}

fn dec_shards(dec: &mut Dec<'_>) -> Result<Vec<u32>, String> {
    let n = dec.u32()?;
    let mut shards = Vec::new();
    for _ in 0..n {
        shards.push(dec.u32()?);
    }
    Ok(shards)
}

pub(crate) fn enc_delta(enc: &mut Enc, delta: &BatchDelta) {
    enc.u64(delta.seq);
    enc.u64(delta.rechecked_docs as u64);
    enc.u64(delta.total as u64);
    enc.u64(delta.clean as u64);
    enc_shards(enc, &delta.shards);
    enc.u32(delta.closed.len() as u32);
    for closed in &delta.closed {
        enc.u64(closed.handle.raw());
        enc.str(&closed.label);
    }
    enc.u32(delta.changes.len() as u32);
    for change in &delta.changes {
        enc.u64(change.handle.raw());
        enc.u8(match change.was_clean {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        });
        enc_shards(enc, &change.shards);
        enc_doc_report(enc, &change.report);
    }
}

pub(crate) fn dec_delta(dec: &mut Dec<'_>) -> Result<BatchDelta, String> {
    let seq = dec.u64()?;
    let rechecked_docs = dec.u64()? as usize;
    let total = dec.u64()? as usize;
    let clean = dec.u64()? as usize;
    let shards = dec_shards(dec)?;
    let num_closed = dec.u32()?;
    let mut closed = Vec::new();
    for _ in 0..num_closed {
        closed.push(ClosedDoc {
            handle: DocHandle::from_raw(dec.u64()?),
            label: dec.str()?,
        });
    }
    let num_changes = dec.u32()?;
    let mut changes = Vec::new();
    for _ in 0..num_changes {
        let handle = DocHandle::from_raw(dec.u64()?);
        let was_clean = match dec.u8()? {
            0 => None,
            1 => Some(false),
            2 => Some(true),
            other => return Err(format!("unknown was-clean flag {other}")),
        };
        let change_shards = dec_shards(dec)?;
        changes.push(DocChange {
            handle,
            was_clean,
            report: dec_doc_report(dec)?,
            shards: change_shards,
        });
    }
    Ok(BatchDelta {
        seq,
        changes,
        closed,
        rechecked_docs,
        total,
        clean,
        shards,
    })
}

// ---------------------------------------------------------------------------
// Raw framing: header + CRC'd records with torn-tail recovery.

/// One CRC-valid record as framed on disk.
#[derive(Debug, Clone)]
struct RawRecord {
    seq: u64,
    tag: u8,
    payload: Vec<u8>,
    offset: u64,
}

#[derive(Debug)]
struct RawLog {
    kind: u8,
    spec: SpecId,
    records: Vec<RawRecord>,
    /// Bytes covered by the header plus the valid records: appends resume
    /// here, dropping any torn tail.
    durable_bytes: u64,
    /// Total bytes in the file (`> durable_bytes` when a tail was torn).
    file_bytes: u64,
    /// Mid-log damage found in lossy mode (strict mode errors instead).
    corrupt: Option<JournalError>,
}

fn write_header(buf: &mut Vec<u8>, kind: LogKind, spec: SpecId) {
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    buf.push(kind.code());
    buf.push(0);
    buf.extend_from_slice(&spec.0.to_le_bytes());
    buf.extend_from_slice(&spec.1.to_le_bytes());
}

pub(crate) fn frame_record(buf: &mut Vec<u8>, seq: u64, tag: u8, payload: &[u8]) {
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let seq_bytes = seq.to_le_bytes();
    buf.extend_from_slice(&seq_bytes);
    buf.push(tag);
    buf.extend_from_slice(payload);
    buf.extend_from_slice(&crc32(&[&seq_bytes, &[tag], payload]).to_le_bytes());
}

/// Parses header and records; `lossy` reports mid-log corruption in the
/// result instead of failing (for `inspect`).
fn read_raw(path: &Path, lossy: bool) -> Result<RawLog, JournalError> {
    let bytes = fs::read(path).map_err(|e| io_err(path, e))?;
    let not_a_journal = |detail: &str| JournalError::NotAJournal {
        path: path.display().to_string(),
        detail: detail.to_string(),
    };
    if bytes.len() < HEADER_LEN {
        return Err(not_a_journal("shorter than the header"));
    }
    if bytes[..4] != MAGIC {
        return Err(not_a_journal("bad magic"));
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(JournalError::UnsupportedVersion { found: version });
    }
    let kind = bytes[6];
    let spec = SpecId(
        u64::from_le_bytes(bytes[8..16].try_into().unwrap()),
        u64::from_le_bytes(bytes[16..24].try_into().unwrap()),
    );

    let mut records = Vec::new();
    let mut pos = HEADER_LEN;
    let mut expected_seq = 1u64;
    let mut corrupt = None;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < FRAME_LEN {
            break; // torn tail: not even a frame
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        if (len as u64) > (remaining - FRAME_LEN) as u64 {
            break; // torn tail: the record extends past EOF
        }
        let seq = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
        let tag = bytes[pos + 12];
        let payload = &bytes[pos + 13..pos + 13 + len];
        let stored = u32::from_le_bytes(
            bytes[pos + 13 + len..pos + FRAME_LEN + len]
                .try_into()
                .unwrap(),
        );
        let computed = crc32(&[&bytes[pos + 4..pos + 12], &[tag], payload]);
        let end = pos + FRAME_LEN + len;
        let damage = if computed != stored {
            instruments().crc_failures.inc();
            Some("CRC mismatch".to_string())
        } else if seq != expected_seq {
            Some(format!("sequence {seq} where {expected_seq} was expected"))
        } else {
            None
        };
        if let Some(detail) = damage {
            if end == bytes.len() && detail == "CRC mismatch" {
                // The final record failed its CRC: indistinguishable from a
                // partially overwritten tail — truncate, don't reject.
                break;
            }
            let err = JournalError::Corrupt {
                seq: expected_seq,
                offset: pos as u64,
                detail,
            };
            if lossy {
                corrupt = Some(err);
                break;
            }
            return Err(err);
        }
        records.push(RawRecord {
            seq,
            tag,
            payload: payload.to_vec(),
            offset: pos as u64,
        });
        pos = end;
        expected_seq += 1;
    }

    Ok(RawLog {
        kind,
        spec,
        records,
        durable_bytes: pos as u64,
        file_bytes: bytes.len() as u64,
        corrupt,
    })
}

fn expect_kind(raw: &RawLog, expected: LogKind) -> Result<(), JournalError> {
    if raw.kind != expected.code() {
        return Err(JournalError::WrongKind {
            expected,
            found: raw.kind,
        });
    }
    Ok(())
}

fn expect_spec(raw: &RawLog, expected: SpecId) -> Result<(), JournalError> {
    if raw.spec != expected {
        return Err(JournalError::SpecMismatch {
            expected,
            found: raw.spec,
        });
    }
    Ok(())
}

fn malformed(seq: u64, detail: String) -> JournalError {
    JournalError::Malformed { seq, detail }
}

// ---------------------------------------------------------------------------
// Typed session-document logs.

/// A decoded session-document log: the base snapshot plus the replayable
/// op suffix.
#[derive(Debug, Clone)]
pub struct SessionLog {
    /// The specification the log was recorded under.
    pub spec: SpecId,
    /// Edits already folded into the base snapshot when it was written
    /// (the global index of `ops[0]` is `base_edits`).
    pub base_edits: u64,
    /// The slot-for-slot base snapshot.
    pub base: TreeSnapshot,
    /// The logged ops, oldest first.
    pub ops: Vec<EditOp>,
    /// Whether a torn tail was dropped while reading.
    pub truncated: bool,
    /// Bytes covered by the durable prefix (header + valid records).
    pub durable_bytes: u64,
}

impl SessionLog {
    /// Total edits the log accounts for: folded into the base plus logged.
    pub fn total_edits(&self) -> u64 {
        self.base_edits + self.ops.len() as u64
    }
}

fn decode_base(record: &RawRecord) -> Result<(u64, TreeSnapshot), JournalError> {
    if record.tag != TAG_BASE {
        return Err(malformed(
            record.seq,
            format!("expected a base-snapshot record, found tag {}", record.tag),
        ));
    }
    let mut dec = Dec::new(&record.payload);
    let base_edits = dec.u64().map_err(|e| malformed(record.seq, e))?;
    let base = dec_snapshot(&mut dec).map_err(|e| malformed(record.seq, e))?;
    dec.finish().map_err(|e| malformed(record.seq, e))?;
    Ok((base_edits, base))
}

fn decode_op(record: &RawRecord) -> Result<EditOp, JournalError> {
    if record.tag != TAG_OP {
        return Err(malformed(
            record.seq,
            format!("expected an edit-op record, found tag {}", record.tag),
        ));
    }
    let mut dec = Dec::new(&record.payload);
    let op = dec_op(&mut dec).map_err(|e| malformed(record.seq, e))?;
    dec.finish().map_err(|e| malformed(record.seq, e))?;
    Ok(op)
}

/// Reads a session-document log, dropping a torn tail and rejecting
/// anything structurally unsound (see the module's recover-or-reject
/// contract).
pub fn read_session_log(
    path: impl AsRef<Path>,
    expected: SpecId,
) -> Result<SessionLog, JournalError> {
    let raw = read_raw(path.as_ref(), false)?;
    expect_kind(&raw, LogKind::SessionDoc)?;
    expect_spec(&raw, expected)?;
    instruments().records_read.add(raw.records.len() as u64);
    let Some(first) = raw.records.first() else {
        return Err(JournalError::MissingBase);
    };
    let (base_edits, base) = decode_base(first)?;
    let mut ops = Vec::with_capacity(raw.records.len() - 1);
    for record in &raw.records[1..] {
        ops.push(decode_op(record)?);
    }
    Ok(SessionLog {
        spec: raw.spec,
        base_edits,
        base,
        ops,
        truncated: raw.durable_bytes < raw.file_bytes,
        durable_bytes: raw.durable_bytes,
    })
}

/// Rejects snapshots and ops that reference element types or attributes
/// the DTD does not declare (a hostile log could otherwise make witness
/// rendering or structural validation index out of bounds).
pub(crate) fn validate_log_against_dtd(log: &SessionLog, dtd: &Dtd) -> Result<(), JournalError> {
    let types = dtd.num_types() as u32;
    let attrs = dtd.num_attrs() as u32;
    let foreign = |detail: String| JournalError::ForeignIds { seq: 1, detail };
    for (i, node) in log.base.nodes.iter().enumerate() {
        match node.label {
            NodeLabel::Element(ty) if ty.0 >= types => {
                return Err(foreign(format!("node #{i} has element type {}", ty.0)))
            }
            NodeLabel::Attribute(attr) if attr.0 >= attrs => {
                return Err(foreign(format!("node #{i} has attribute {}", attr.0)))
            }
            _ => {}
        }
        if let Some((attr, _)) = node.attrs.iter().find(|(a, _)| a.0 >= attrs) {
            return Err(foreign(format!("node #{i} lists attribute {}", attr.0)));
        }
    }
    for (i, op) in log.ops.iter().enumerate() {
        let seq = i as u64 + 2;
        let bad = match op {
            EditOp::SetAttr { attr, .. } if attr.0 >= attrs => {
                Some(format!("attribute {}", attr.0))
            }
            EditOp::AddElement { ty, .. } if ty.0 >= types => {
                Some(format!("element type {}", ty.0))
            }
            _ => None,
        };
        if let Some(detail) = bad {
            return Err(JournalError::ForeignIds { seq, detail });
        }
    }
    Ok(())
}

/// The outcome of a persist: what was written and where the log now ends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistReceipt {
    /// Records appended by this call.
    pub records_written: usize,
    /// Records in the log after the call.
    pub total_records: u64,
    /// Bytes in the log after the call.
    pub durable_bytes: u64,
    /// Whether a torn tail from an earlier crash was truncated first.
    pub repaired_torn_tail: bool,
}

/// Classifies the current contents of `path` for a writer about to
/// create-or-append a log of the given kind and spec.
///
/// `Fresh` means nothing durable exists and the file may be (re)written
/// from scratch: it is missing, empty, a strict prefix of the exact header
/// this writer would emit (a crash tore the very first write), or a
/// complete matching header with **zero** durable records (a crash tore
/// the first record).  Without this, one crash during the first persist
/// would brick the path forever — every later persist would see a
/// non-empty file and fail structurally, contradicting the torn-tail
/// repair contract.  Anything else — another spec's log, another kind,
/// a non-journal file — is an error, never silently clobbered.
enum ExistingLog {
    Fresh { repaired_torn_tail: bool },
    Durable(RawLog),
}

fn classify_existing(
    path: &Path,
    kind: LogKind,
    spec: SpecId,
) -> Result<ExistingLog, JournalError> {
    // A missing file reads as empty: fresh.
    let existing = fs::read(path).unwrap_or_default();
    if existing.len() < HEADER_LEN {
        let mut expected = Vec::new();
        write_header(&mut expected, kind, spec);
        if expected.starts_with(&existing) {
            return Ok(ExistingLog::Fresh {
                repaired_torn_tail: !existing.is_empty(),
            });
        }
        return Err(JournalError::NotAJournal {
            path: path.display().to_string(),
            detail: "shorter than the header".to_string(),
        });
    }
    let raw = read_raw(path, false)?;
    expect_kind(&raw, kind)?;
    expect_spec(&raw, spec)?;
    if raw.records.is_empty() {
        // Our header, but no record ever became durable: the first write
        // tore.  Rewrite from scratch.
        return Ok(ExistingLog::Fresh {
            repaired_torn_tail: raw.file_bytes > HEADER_LEN as u64,
        });
    }
    Ok(ExistingLog::Durable(raw))
}

/// Persists one session document: creates `path` as a fresh log (base =
/// the *current* tree, folding every edit recorded so far) or appends the
/// ops the existing log lacks.  Shared implementation behind
/// `Session::persist_to`.
pub(crate) fn persist_session_doc(
    path: &Path,
    spec: SpecId,
    tree: &XmlTree,
    journal: &EditJournal,
) -> Result<PersistReceipt, JournalError> {
    let timer = xic_telemetry::global().start_timer();
    let receipt = persist_session_doc_uninstrumented(path, spec, tree, journal)?;
    if let Some(start) = timer {
        instruments().persist_ns.record_elapsed(start);
    }
    Ok(receipt)
}

fn persist_session_doc_uninstrumented(
    path: &Path,
    spec: SpecId,
    tree: &XmlTree,
    journal: &EditJournal,
) -> Result<PersistReceipt, JournalError> {
    let raw = match classify_existing(path, LogKind::SessionDoc, spec)? {
        ExistingLog::Fresh { repaired_torn_tail } => {
            let mut buf = Vec::new();
            write_header(&mut buf, LogKind::SessionDoc, spec);
            let mut enc = Enc::default();
            enc.u64(journal.total_recorded());
            if xic_telemetry::faults::hit("journal.snapshot_encode") {
                return Err(JournalError::Io {
                    path: path.display().to_string(),
                    detail: "injected fault: journal.snapshot_encode".to_string(),
                });
            }
            enc_snapshot(&mut enc, &tree.snapshot());
            frame_record(&mut buf, 1, TAG_BASE, &enc.buf);
            write_fresh(path, &buf)?;
            note_write(1, buf.len(), repaired_torn_tail);
            return Ok(PersistReceipt {
                records_written: 1,
                total_records: 1,
                durable_bytes: buf.len() as u64,
                repaired_torn_tail,
            });
        }
        ExistingLog::Durable(raw) => raw,
    };
    let first = raw.records.first().expect("Durable holds ≥ 1 record");
    let (base_edits, _) = decode_base(first)?;
    let disk_ops: Vec<EditOp> = raw.records[1..]
        .iter()
        .map(decode_op)
        .collect::<Result<_, _>>()?;
    let durable_total = base_edits + disk_ops.len() as u64;
    let folded = journal.folded();
    let total = journal.total_recorded();
    if durable_total > total {
        return Err(JournalError::Diverged {
            detail: format!(
                "the log holds {durable_total} edits but the session only recorded {total}"
            ),
        });
    }
    if durable_total < folded {
        return Err(JournalError::Compacted {
            folded,
            durable: durable_total,
        });
    }
    // The overlap both sides hold must agree op-for-op, or the caller is
    // appending one document's edits to another document's log.
    for global in base_edits.max(folded)..durable_total {
        let on_disk = &disk_ops[(global - base_edits) as usize];
        let recorded = &journal.entries()[(global - folded) as usize].0;
        if on_disk != recorded {
            return Err(JournalError::Diverged {
                detail: format!("edit #{global} differs between the log and the session"),
            });
        }
    }

    let new_entries = &journal.entries()[(durable_total - folded) as usize..];
    let repaired = raw.durable_bytes < raw.file_bytes;
    let mut buf = Vec::new();
    let mut seq = raw.records.len() as u64;
    for (op, _) in new_entries {
        seq += 1;
        let mut enc = Enc::default();
        enc_op(&mut enc, op);
        frame_record(&mut buf, seq, TAG_OP, &enc.buf);
    }
    let mut file = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| io_err(path, e))?;
    file.set_len(raw.durable_bytes)
        .map_err(|e| io_err(path, e))?;
    use std::io::Seek as _;
    file.seek(std::io::SeekFrom::End(0))
        .map_err(|e| io_err(path, e))?;
    write_and_sync(&mut file, &buf, "journal.append").map_err(|e| io_err(path, e))?;
    note_write(new_entries.len(), buf.len(), repaired);
    Ok(PersistReceipt {
        records_written: new_entries.len(),
        total_records: seq,
        durable_bytes: raw.durable_bytes + buf.len() as u64,
        repaired_torn_tail: repaired,
    })
}

// ---------------------------------------------------------------------------
// Typed delta-stream logs.

/// A decoded delta-stream log.
#[derive(Debug, Clone)]
pub struct DeltaLog {
    /// The specification the log was recorded under.
    pub spec: SpecId,
    /// The durable deltas, in commit order.
    pub deltas: Vec<BatchDelta>,
    /// Whether a torn tail was dropped while reading.
    pub truncated: bool,
    /// Bytes covered by the durable prefix.
    pub durable_bytes: u64,
}

fn decode_delta(record: &RawRecord) -> Result<BatchDelta, JournalError> {
    if record.tag != TAG_DELTA {
        return Err(malformed(
            record.seq,
            format!("expected a delta record, found tag {}", record.tag),
        ));
    }
    let mut dec = Dec::new(&record.payload);
    let delta = dec_delta(&mut dec).map_err(|e| malformed(record.seq, e))?;
    dec.finish().map_err(|e| malformed(record.seq, e))?;
    Ok(delta)
}

fn check_contiguous(deltas: &[BatchDelta], mut expected: Option<u64>) -> Result<(), JournalError> {
    for delta in deltas {
        if let Some(want) = expected {
            if delta.seq != want {
                return Err(JournalError::DeltaGap {
                    expected: want,
                    found: delta.seq,
                });
            }
        }
        expected = Some(delta.seq + 1);
    }
    Ok(())
}

/// Reads a delta-stream log, dropping a torn tail.
pub fn read_delta_log(path: impl AsRef<Path>, expected: SpecId) -> Result<DeltaLog, JournalError> {
    let raw = read_raw(path.as_ref(), false)?;
    expect_kind(&raw, LogKind::DeltaStream)?;
    expect_spec(&raw, expected)?;
    instruments().records_read.add(raw.records.len() as u64);
    let deltas: Vec<BatchDelta> = raw
        .records
        .iter()
        .map(decode_delta)
        .collect::<Result<_, _>>()?;
    check_contiguous(&deltas, None)?;
    Ok(DeltaLog {
        spec: raw.spec,
        deltas,
        truncated: raw.durable_bytes < raw.file_bytes,
        durable_bytes: raw.durable_bytes,
    })
}

/// Creates (or overwrites) a delta-stream log holding `deltas`.
pub fn write_delta_log(
    path: impl AsRef<Path>,
    spec: SpecId,
    deltas: &[BatchDelta],
) -> Result<PersistReceipt, JournalError> {
    let path = path.as_ref();
    let timer = xic_telemetry::global().start_timer();
    check_contiguous(deltas, None)?;
    let mut buf = Vec::new();
    write_header(&mut buf, LogKind::DeltaStream, spec);
    for (i, delta) in deltas.iter().enumerate() {
        let mut enc = Enc::default();
        enc_delta(&mut enc, delta);
        frame_record(&mut buf, i as u64 + 1, TAG_DELTA, &enc.buf);
    }
    write_fresh(path, &buf)?;
    note_write(deltas.len(), buf.len(), false);
    if let Some(start) = timer {
        instruments().persist_ns.record_elapsed(start);
    }
    Ok(PersistReceipt {
        records_written: deltas.len(),
        total_records: deltas.len() as u64,
        durable_bytes: buf.len() as u64,
        repaired_torn_tail: false,
    })
}

/// Appends to a delta-stream log the suffix of `deltas` it does not hold
/// yet.  Deltas at or below the last durable commit are **verified**
/// against the on-disk records — a re-export that diverges from the
/// recorded history (e.g. a primary that recovered to an older state and
/// re-committed differently) is rejected with [`JournalError::Diverged`],
/// not silently skipped — and the first genuinely new delta must continue
/// the on-disk sequence.  Creates the log if `path` does not exist; a torn
/// tail from an earlier crash is truncated before appending.
pub fn append_delta_log(
    path: impl AsRef<Path>,
    spec: SpecId,
    deltas: &[BatchDelta],
) -> Result<PersistReceipt, JournalError> {
    let path = path.as_ref();
    let raw = match classify_existing(path, LogKind::DeltaStream, spec)? {
        ExistingLog::Fresh { .. } => return write_delta_log(path, spec, deltas),
        ExistingLog::Durable(raw) => raw,
    };
    // The fresh path above times itself inside `write_delta_log`.
    let timer = xic_telemetry::global().start_timer();
    check_contiguous(deltas, None)?;
    let on_disk: Vec<BatchDelta> = raw
        .records
        .iter()
        .map(decode_delta)
        .collect::<Result<_, _>>()?;
    check_contiguous(&on_disk, None)?;
    let first_durable = on_disk.first().expect("Durable holds ≥ 1 record").seq;
    let last_durable = on_disk.last().expect("Durable holds ≥ 1 record").seq;
    // The overlap both sides hold must agree delta-for-delta, or a replica
    // recovering from this log would reconstruct a different history than
    // the one the caller is extending.
    for delta in deltas {
        if delta.seq >= first_durable && delta.seq <= last_durable {
            let durable = &on_disk[(delta.seq - first_durable) as usize];
            if durable != delta {
                return Err(JournalError::Diverged {
                    detail: format!(
                        "commit {} differs between the log and the export",
                        delta.seq
                    ),
                });
            }
        }
    }
    let new: Vec<&BatchDelta> = deltas.iter().filter(|d| d.seq > last_durable).collect();
    if let Some(first_new) = new.first() {
        if first_new.seq != last_durable + 1 {
            return Err(JournalError::DeltaGap {
                expected: last_durable + 1,
                found: first_new.seq,
            });
        }
    }
    let repaired = raw.durable_bytes < raw.file_bytes;
    let mut buf = Vec::new();
    let mut seq = raw.records.len() as u64;
    for delta in &new {
        seq += 1;
        let mut enc = Enc::default();
        enc_delta(&mut enc, delta);
        frame_record(&mut buf, seq, TAG_DELTA, &enc.buf);
    }
    let mut file = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| io_err(path, e))?;
    file.set_len(raw.durable_bytes)
        .map_err(|e| io_err(path, e))?;
    use std::io::Seek as _;
    file.seek(std::io::SeekFrom::End(0))
        .map_err(|e| io_err(path, e))?;
    write_and_sync(&mut file, &buf, "journal.append").map_err(|e| io_err(path, e))?;
    note_write(new.len(), buf.len(), repaired);
    if let Some(start) = timer {
        instruments().persist_ns.record_elapsed(start);
    }
    Ok(PersistReceipt {
        records_written: new.len(),
        total_records: seq,
        durable_bytes: raw.durable_bytes + buf.len() as u64,
        repaired_torn_tail: repaired,
    })
}

// ---------------------------------------------------------------------------
// The replica: verdicts from deltas alone.

/// A validation replica fed nothing but [`BatchDelta`]s.
///
/// The replica holds the last delivered [`DocReport`] per document handle
/// and applies each commit's delta — report replacements and closes — under
/// strict sequence checking, so its [`CorpusReplica::report`] is exactly
/// the originating `CorpusSession::report()` after the same commit
/// (`tests/replica_agreement.rs` asserts the equality after every commit).
/// Documents are never re-shipped and never re-parsed: the delta stream is
/// sufficient, which is what makes the log a replication transport.
#[derive(Debug, Clone)]
pub struct CorpusReplica {
    spec: SpecId,
    last_seq: u64,
    docs: BTreeMap<u64, DocReport>,
    /// Clean documents, maintained incrementally (validation compares it
    /// to every delta's `clean` counter without a corpus-wide recount).
    /// For a shard-filtered replica this counts documents clean *in the
    /// shard projection* (the delta's global counter is not comparable).
    clean_docs: usize,
    /// `Some(k)`: a shard-filtered replica fed only shard-`k` projected
    /// deltas.  Sequence numbers are then checked monotone instead of
    /// contiguous (untagged commits are legitimately never delivered), and
    /// the global `was_clean` / `total` / `clean` probes — unknowable from
    /// a projected stream — are skipped; per-delta structural probes
    /// (duplicate changes, unknown closes) still hold.
    shard: Option<u32>,
}

impl CorpusReplica {
    /// An empty replica for the given specification, expecting the delta
    /// stream from commit 1.
    pub fn new(spec: SpecId) -> CorpusReplica {
        CorpusReplica {
            spec,
            last_seq: 0,
            docs: BTreeMap::new(),
            clean_docs: 0,
            shard: None,
        }
    }

    /// An empty shard-filtered replica: feed it the shard-`k` projections
    /// ([`BatchDelta::project`], or a server sync with a shard filter) of
    /// the deltas that touch shard `k`, in order, and its
    /// [`CorpusReplica::report`] reconstructs the shard-`k` projection of
    /// the session's report exactly — same documents (opens and closes are
    /// broadcast to every shard), each report restricted to the shard's
    /// constraints.
    pub fn new_sharded(spec: SpecId, shard: u32) -> CorpusReplica {
        CorpusReplica {
            shard: Some(shard),
            ..CorpusReplica::new(spec)
        }
    }

    /// The shard this replica is filtered to, if any.
    pub fn shard(&self) -> Option<u32> {
        self.shard
    }

    /// The specification the replica mirrors.
    pub fn spec(&self) -> SpecId {
        self.spec
    }

    /// The last commit applied (0 before the first).
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Number of open documents in the mirrored corpus.
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }

    /// Number of clean documents in the mirrored corpus.
    pub fn clean_count(&self) -> usize {
        self.clean_docs
    }

    /// Applies one commit's delta.  The delta must be the next in sequence
    /// and must be consistent with the replica's state — a stale
    /// `was_clean`, a close for an unknown handle, or counters that do not
    /// add up are rejected ([`JournalError::DeltaGap`] /
    /// [`JournalError::DeltaMismatch`]) before anything is mutated, so a
    /// failed apply leaves the replica unchanged.
    pub fn apply_delta(&mut self, delta: &BatchDelta) -> Result<(), JournalError> {
        let filtered = self.shard.is_some();
        if filtered {
            // A filtered stream skips untagged commits: monotone, not
            // contiguous.
            if delta.seq <= self.last_seq {
                return Err(JournalError::DeltaGap {
                    expected: self.last_seq + 1,
                    found: delta.seq,
                });
            }
        } else if delta.seq != self.last_seq + 1 {
            return Err(JournalError::DeltaGap {
                expected: self.last_seq + 1,
                found: delta.seq,
            });
        }
        let mismatch = |detail: String| JournalError::DeltaMismatch {
            seq: delta.seq,
            detail,
        };
        if let Some(shard) = self.shard {
            if !delta.touches_shard(shard) {
                return Err(mismatch(format!(
                    "delta is not tagged with subscribed shard {shard}"
                )));
            }
        }
        // Validate everything against the current state — and compute the
        // post-delta counters arithmetically from read-only probes — before
        // mutating anything, so a rejection leaves the replica untouched
        // without deep-cloning the whole docs map per delta.
        let mut total = self.docs.len();
        let mut clean = self.clean_docs;
        for (i, change) in delta.changes.iter().enumerate() {
            if delta.changes[..i].iter().any(|c| c.handle == change.handle) {
                return Err(mismatch(format!("{} changed twice", change.handle)));
            }
            let previous = self.docs.get(&change.handle.raw()).map(DocReport::is_clean);
            // `was_clean` reports *global* cleanliness; a shard projection
            // holds only the shard's view, so the probe is unscoped-only.
            if !filtered && change.was_clean != previous {
                return Err(mismatch(format!(
                    "{} arrived with was_clean {:?} but the replica holds {:?}",
                    change.handle, change.was_clean, previous
                )));
            }
            if previous.is_none() {
                total += 1;
            }
            clean = clean - usize::from(previous == Some(true)) + usize::from(change.now_clean());
        }
        for (i, closed) in delta.closed.iter().enumerate() {
            if delta.closed[..i].iter().any(|c| c.handle == closed.handle) {
                return Err(mismatch(format!("{} closed twice", closed.handle)));
            }
            let Some(report) = self.docs.get(&closed.handle.raw()) else {
                return Err(mismatch(format!("close for unknown {}", closed.handle)));
            };
            if delta.changes.iter().any(|c| c.handle == closed.handle) {
                return Err(mismatch(format!(
                    "{} both changed and closed",
                    closed.handle
                )));
            }
            total -= 1;
            clean -= usize::from(report.is_clean());
        }
        // The projected stream's counters are the session's global ones;
        // only an unfiltered replica can hold the delta to them.
        if !filtered && total != delta.total {
            return Err(mismatch(format!(
                "delta says {} open documents, the replica derives {total}",
                delta.total
            )));
        }
        if !filtered && clean != delta.clean {
            return Err(mismatch(format!(
                "delta says {} clean documents, the replica derives {clean}",
                delta.clean
            )));
        }
        // Everything checks out: apply in place, O(changes + closes).
        for change in &delta.changes {
            self.docs.insert(change.handle.raw(), change.report.clone());
        }
        for closed in &delta.closed {
            self.docs.remove(&closed.handle.raw());
        }
        self.clean_docs = clean;
        self.last_seq = delta.seq;
        Ok(())
    }

    /// Applies a run of deltas in order; returns how many were applied.
    /// The first rejection aborts (the replica keeps the prefix).
    pub fn apply_deltas<'a>(
        &mut self,
        deltas: impl IntoIterator<Item = &'a BatchDelta>,
    ) -> Result<usize, JournalError> {
        let mut applied = 0;
        for delta in deltas {
            self.apply_delta(delta)?;
            applied += 1;
        }
        Ok(applied)
    }

    /// The mirrored corpus report: per-document reports in handle (= open)
    /// order with positions renumbered — exactly
    /// `CorpusSession::report()` after the last applied commit.
    pub fn report(&self) -> BatchReport {
        let reports = self
            .docs
            .values()
            .enumerate()
            .map(|(position, report)| {
                let mut report = report.clone();
                report.index = position;
                report
            })
            .collect();
        BatchReport::from_reports(reports)
    }

    /// Rebuilds a replica from a persisted delta-stream log (a torn tail
    /// yields the last durable commit; the second component reports whether
    /// one was dropped).  This is how a replica closes and re-opens without
    /// the primary re-sending anything.
    pub fn recover_from(
        path: impl AsRef<Path>,
        expected: SpecId,
    ) -> Result<(CorpusReplica, bool), JournalError> {
        let log = read_delta_log(path, expected)?;
        let mut replica = CorpusReplica::new(expected);
        replica.apply_deltas(&log.deltas)?;
        Ok((replica, log.truncated))
    }
}

// ---------------------------------------------------------------------------
// Inspection: the self-describing half.

/// One record as rendered by [`inspect_log`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordSummary {
    /// The record's sequence number.
    pub seq: u64,
    /// Byte offset of the record in the file.
    pub offset: u64,
    /// The record type (`base`, `op`, `delta`, or `tag N` for unknown).
    pub kind: String,
    /// Payload size in bytes.
    pub bytes: usize,
    /// A one-line human rendering: ops use the `xic batch --session`
    /// script syntax — the log's human-readable twin.
    pub detail: String,
}

/// What [`inspect_log`] reports about a journal file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogSummary {
    /// The log kind (session document or delta stream).
    pub kind: Option<LogKind>,
    /// The raw kind byte (meaningful when `kind` is `None`).
    pub kind_code: u8,
    /// The specification the log was recorded under.
    pub spec: SpecId,
    /// Per-record summaries of the durable prefix.
    pub records: Vec<RecordSummary>,
    /// Bytes covered by the durable prefix.
    pub durable_bytes: u64,
    /// Bytes past the durable prefix (non-zero exactly for a torn tail).
    pub torn_bytes: u64,
    /// Mid-log damage, rendered (inspection is lossy: the valid prefix is
    /// still summarized).
    pub corrupt: Option<String>,
}

fn render_op(op: &EditOp, dtd: Option<&Dtd>) -> String {
    let attr_name = |attr: AttrId| match dtd {
        Some(dtd) if attr.index() < dtd.num_attrs() => dtd.attr_name(attr).to_string(),
        _ => format!("@{}", attr.0),
    };
    let type_name = |ty: ElemId| match dtd {
        Some(dtd) if ty.index() < dtd.num_types() => dtd.type_name(ty).to_string(),
        _ => format!("#{}", ty.0),
    };
    match op {
        EditOp::SetAttr {
            element,
            attr,
            value,
        } => format!("set {} {} {value}", element.0, attr_name(*attr)),
        EditOp::AddElement { parent, ty } => format!("add {} {}", parent.0, type_name(*ty)),
        EditOp::AddText { parent, value } => format!("text {} {value}", parent.0),
        EditOp::RemoveSubtree { element } => format!("remove {}", element.0),
    }
}

/// Summarizes a journal file without needing the compiled specification:
/// header facts, per-record details (ops rendered in the session-script
/// syntax, resolved through `dtd` when one is supplied), torn-tail and
/// corruption status.  Damage after the header is *reported*, not fatal —
/// the durable prefix is still summarized.
pub fn inspect_log(path: impl AsRef<Path>, dtd: Option<&Dtd>) -> Result<LogSummary, JournalError> {
    let raw = read_raw(path.as_ref(), true)?;
    let records = raw
        .records
        .iter()
        .map(|record| {
            let (kind, detail) = match record.tag {
                TAG_BASE => (
                    "base".to_string(),
                    match decode_base(record) {
                        Ok((base_edits, base)) => format!(
                            "snapshot: {} slots ({} live), folds {base_edits} edits",
                            base.num_slots(),
                            base.live_nodes()
                        ),
                        Err(e) => format!("undecodable: {e}"),
                    },
                ),
                TAG_OP => (
                    "op".to_string(),
                    match decode_op(record) {
                        Ok(op) => render_op(&op, dtd),
                        Err(e) => format!("undecodable: {e}"),
                    },
                ),
                TAG_DELTA => (
                    "delta".to_string(),
                    match decode_delta(record) {
                        Ok(delta) => {
                            let s = delta.summary();
                            format!(
                                "commit {}: {} changes ({} flips), {} closed, {} rechecked, \
                                 {}/{} clean, {} violations",
                                delta.seq,
                                s.docs_changed,
                                s.flips(),
                                s.closed,
                                s.rechecked,
                                delta.clean,
                                delta.total,
                                s.violations_now
                            )
                        }
                        Err(e) => format!("undecodable: {e}"),
                    },
                ),
                other => (format!("tag {other}"), "unknown record type".to_string()),
            };
            RecordSummary {
                seq: record.seq,
                offset: record.offset,
                kind,
                bytes: record.payload.len(),
                detail,
            }
        })
        .collect();
    Ok(LogSummary {
        kind: LogKind::from_code(raw.kind),
        kind_code: raw.kind,
        spec: raw.spec,
        records,
        durable_bytes: raw.durable_bytes,
        torn_bytes: raw.file_bytes - raw.durable_bytes,
        corrupt: raw.corrupt.map(|e| e.to_string()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CompiledSpec;

    fn spec() -> CompiledSpec {
        CompiledSpec::from_sources(
            "<!ELEMENT school (teacher*)>\n\
             <!ELEMENT teacher EMPTY>\n\
             <!ATTLIST teacher name CDATA #REQUIRED>",
            Some("school"),
            "teacher.name -> teacher",
        )
        .unwrap()
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("xic-journal-test-{}-{name}", std::process::id()));
        path
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        assert_eq!(crc32(&[b"123456789"]), 0xCBF4_3926);
        assert_eq!(crc32(&[b"1234", b"56789"]), 0xCBF4_3926);
        assert_eq!(crc32(&[]), 0);
    }

    #[test]
    fn ops_and_snapshots_round_trip_through_the_codec() {
        let spec = spec();
        let tree = spec
            .parse_document("<school><teacher name=\"Jo&amp;e\"/></school>")
            .unwrap();
        let ops = vec![
            EditOp::SetAttr {
                element: NodeId(1),
                attr: AttrId(0),
                value: "weird \u{1F600} value\n".into(),
            },
            EditOp::AddElement {
                parent: NodeId(0),
                ty: ElemId(1),
            },
            EditOp::AddText {
                parent: NodeId(0),
                value: String::new(),
            },
            EditOp::RemoveSubtree { element: NodeId(1) },
        ];
        for op in &ops {
            let mut enc = Enc::default();
            enc_op(&mut enc, op);
            let mut dec = Dec::new(&enc.buf);
            assert_eq!(&dec_op(&mut dec).unwrap(), op);
            dec.finish().unwrap();
        }
        let snap = tree.snapshot();
        let mut enc = Enc::default();
        enc_snapshot(&mut enc, &snap);
        let mut dec = Dec::new(&enc.buf);
        assert_eq!(dec_snapshot(&mut dec).unwrap(), snap);
        dec.finish().unwrap();
    }

    #[test]
    fn deltas_round_trip_through_the_codec() {
        let delta = BatchDelta {
            seq: 3,
            changes: vec![DocChange {
                handle: DocHandle::from_raw(7),
                was_clean: Some(false),
                report: DocReport {
                    index: 2,
                    label: "a \"quoted\" label".into(),
                    parse_error: Some("boom".into()),
                    fault: Some(crate::DocFault::Panic {
                        cause: "contained".into(),
                    }),
                    validation_errors: vec!["bad".into()],
                    violations: vec![
                        Violation::KeyViolation {
                            constraint: "k".into(),
                            witnesses: (NodeId(1), NodeId(5)),
                            values: vec!["x".into(), String::new()],
                        },
                        Violation::InclusionViolation {
                            constraint: "i".into(),
                            witness: NodeId(9),
                            values: vec![],
                        },
                        Violation::MissingAttributes {
                            constraint: "m".into(),
                            witness: NodeId(0),
                        },
                        Violation::NegationUnsatisfied {
                            constraint: "n".into(),
                        },
                    ],
                },
                shards: vec![0, 3],
            }],
            closed: vec![ClosedDoc {
                handle: DocHandle::from_raw(2),
                label: "gone.xml".into(),
            }],
            rechecked_docs: 1,
            total: 4,
            clean: 2,
            shards: vec![0, 1, 2, 3],
        };
        let mut enc = Enc::default();
        enc_delta(&mut enc, &delta);
        let mut dec = Dec::new(&enc.buf);
        assert_eq!(dec_delta(&mut dec).unwrap(), delta);
        dec.finish().unwrap();
    }

    #[test]
    fn torn_tails_are_truncated_and_mid_log_damage_is_rejected() {
        let spec = spec();
        let path = temp_path("torn.xicj");
        let deltas: Vec<BatchDelta> = (1..=3)
            .map(|seq| BatchDelta {
                seq,
                changes: vec![],
                closed: vec![],
                rechecked_docs: 0,
                total: 0,
                clean: 0,
                shards: vec![],
            })
            .collect();
        write_delta_log(&path, spec.id(), &deltas).unwrap();
        let full = std::fs::read(&path).unwrap();

        // Truncating inside the last record recovers the first two deltas.
        std::fs::write(&path, &full[..full.len() - 2]).unwrap();
        let log = read_delta_log(&path, spec.id()).unwrap();
        assert!(log.truncated);
        assert_eq!(log.deltas.len(), 2);

        // Flipping a byte inside the *first* record (bytes follow it) is
        // mid-log damage: rejected, not silently recovered.
        let mut damaged = full.clone();
        damaged[HEADER_LEN + FRAME_LEN - 2] ^= 0xFF;
        std::fs::write(&path, &damaged).unwrap();
        assert!(matches!(
            read_delta_log(&path, spec.id()),
            Err(JournalError::Corrupt { .. })
        ));

        // A wrong spec id is rejected before any record is trusted.
        std::fs::write(&path, &full).unwrap();
        let other = SpecId(1, 2);
        assert!(matches!(
            read_delta_log(&path, other),
            Err(JournalError::SpecMismatch { .. })
        ));

        // Garbage is not a journal.
        std::fs::write(&path, b"definitely not a journal").unwrap();
        assert!(matches!(
            read_delta_log(&path, spec.id()),
            Err(JournalError::NotAJournal { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn a_crash_during_the_first_persist_does_not_brick_the_log() {
        use xic_xml::XmlTree;
        let spec = spec();
        let school = spec.dtd().type_by_name("school").unwrap();
        let tree = XmlTree::new(school);
        let journal = EditJournal::new();
        let path = temp_path("torn-first.xicj");

        // Baseline: what a clean first persist writes.
        fs::remove_file(&path).ok();
        persist_session_doc(&path, spec.id(), &tree, &journal).unwrap();
        let full = fs::read(&path).unwrap();

        // A crash can cut the first write anywhere — mid-header or
        // mid-base-record.  The next persist must rewrite from scratch
        // (nothing was durable), not fail forever.
        for cut in [
            0usize,
            2,
            HEADER_LEN - 1,
            HEADER_LEN,
            HEADER_LEN + 5,
            full.len() - 1,
        ] {
            fs::write(&path, &full[..cut]).unwrap();
            let receipt = persist_session_doc(&path, spec.id(), &tree, &journal)
                .unwrap_or_else(|e| panic!("cut at {cut}: {e}"));
            assert_eq!(receipt.total_records, 1, "cut at {cut}");
            // A bare header (or nothing at all) needed no repair; any
            // other partial write did.
            assert_eq!(
                receipt.repaired_torn_tail,
                cut != 0 && cut != HEADER_LEN,
                "cut at {cut}"
            );
            assert_eq!(fs::read(&path).unwrap(), full, "cut at {cut}");
        }

        // A file that is NOT a torn prefix of our header is someone else's
        // data: never clobbered.
        fs::write(&path, b"README").unwrap();
        assert!(matches!(
            persist_session_doc(&path, spec.id(), &tree, &journal),
            Err(JournalError::NotAJournal { .. })
        ));
        // Same for a complete header of a different spec.
        let mut foreign = Vec::new();
        write_header(&mut foreign, LogKind::SessionDoc, SpecId(1, 2));
        fs::write(&path, &foreign).unwrap();
        assert!(matches!(
            persist_session_doc(&path, spec.id(), &tree, &journal),
            Err(JournalError::SpecMismatch { .. })
        ));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn append_rejects_overlapping_deltas_that_diverge() {
        let spec = spec();
        let path = temp_path("diverge.xicj");
        fs::remove_file(&path).ok();
        let delta = |seq, clean| BatchDelta {
            seq,
            changes: vec![],
            closed: vec![],
            rechecked_docs: 0,
            total: 0,
            clean,
            shards: vec![],
        };
        append_delta_log(&path, spec.id(), &[delta(1, 0), delta(2, 0)]).unwrap();
        // Re-exporting a window whose overlap differs from the recorded
        // history is a divergence, not a silent skip — a replica recovering
        // from this log would otherwise reconstruct the wrong stream.
        let err = append_delta_log(&path, spec.id(), &[delta(2, 7), delta(3, 0)]).unwrap_err();
        assert!(matches!(err, JournalError::Diverged { .. }), "{err:?}");
        // The identical overlap still appends the new suffix.
        let receipt = append_delta_log(&path, spec.id(), &[delta(2, 0), delta(3, 0)]).unwrap();
        assert_eq!(receipt.records_written, 1);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn append_skips_durable_deltas_and_rejects_gaps() {
        let spec = spec();
        let path = temp_path("append.xicj");
        std::fs::remove_file(&path).ok();
        let delta = |seq| BatchDelta {
            seq,
            changes: vec![],
            closed: vec![],
            rechecked_docs: 0,
            total: 0,
            clean: 0,
            shards: vec![],
        };
        append_delta_log(&path, spec.id(), &[delta(1), delta(2)]).unwrap();
        // Re-sending an overlapping window appends only the new suffix.
        let receipt = append_delta_log(&path, spec.id(), &[delta(2), delta(3)]).unwrap();
        assert_eq!(receipt.records_written, 1);
        assert_eq!(receipt.total_records, 3);
        let log = read_delta_log(&path, spec.id()).unwrap();
        assert_eq!(
            log.deltas.iter().map(|d| d.seq).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        // A gap is rejected: the replica downstream would drift.
        assert_eq!(
            append_delta_log(&path, spec.id(), &[delta(5)]).unwrap_err(),
            JournalError::DeltaGap {
                expected: 4,
                found: 5
            }
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replica_enforces_sequence_and_consistency() {
        let spec = spec();
        let mut replica = CorpusReplica::new(spec.id());
        let report = DocReport {
            index: 0,
            label: "a.xml".into(),
            parse_error: None,
            validation_errors: vec![],
            violations: vec![],
            fault: None,
        };
        let open = BatchDelta {
            seq: 1,
            changes: vec![DocChange {
                handle: DocHandle::from_raw(0),
                was_clean: None,
                report: report.clone(),
                shards: vec![0],
            }],
            closed: vec![],
            rechecked_docs: 1,
            total: 1,
            clean: 1,
            shards: vec![0],
        };
        // Out-of-order delivery is a gap.
        let skipped = BatchDelta {
            seq: 2,
            ..open.clone()
        };
        assert_eq!(
            replica.apply_delta(&skipped).unwrap_err(),
            JournalError::DeltaGap {
                expected: 1,
                found: 2
            }
        );
        replica.apply_delta(&open).unwrap();
        assert_eq!(replica.num_docs(), 1);
        assert_eq!(replica.report().reports()[0], report);

        // A stale was_clean contradicts the replica and leaves it unchanged.
        let stale = BatchDelta {
            seq: 2,
            changes: vec![DocChange {
                handle: DocHandle::from_raw(0),
                was_clean: None,
                report,
                shards: vec![0],
            }],
            closed: vec![],
            rechecked_docs: 1,
            total: 1,
            clean: 1,
            shards: vec![0],
        };
        assert!(matches!(
            replica.apply_delta(&stale).unwrap_err(),
            JournalError::DeltaMismatch { seq: 2, .. }
        ));
        assert_eq!(replica.last_seq(), 1);

        // A close removes the document.
        let close = BatchDelta {
            seq: 2,
            changes: vec![],
            closed: vec![ClosedDoc {
                handle: DocHandle::from_raw(0),
                label: "a.xml".into(),
            }],
            rechecked_docs: 0,
            total: 0,
            clean: 0,
            shards: vec![0],
        };
        replica.apply_delta(&close).unwrap();
        assert_eq!(replica.num_docs(), 0);
    }

    #[test]
    fn inspect_is_lossy_and_self_describing() {
        let spec = spec();
        let path = temp_path("inspect.xicj");
        let deltas = vec![BatchDelta {
            seq: 1,
            changes: vec![],
            closed: vec![],
            rechecked_docs: 0,
            total: 0,
            clean: 0,
            shards: vec![],
        }];
        write_delta_log(&path, spec.id(), &deltas).unwrap();
        let summary = inspect_log(&path, None).unwrap();
        assert_eq!(summary.kind, Some(LogKind::DeltaStream));
        assert_eq!(summary.spec, spec.id());
        assert_eq!(summary.records.len(), 1);
        assert_eq!(summary.torn_bytes, 0);
        assert!(summary.corrupt.is_none());
        assert!(summary.records[0].detail.contains("commit 1"));

        // Script-twin rendering of ops, with and without a DTD.
        let op = EditOp::SetAttr {
            element: NodeId(3),
            attr: AttrId(0),
            value: "Joe".into(),
        };
        assert_eq!(render_op(&op, None), "set 3 @0 Joe");
        assert_eq!(render_op(&op, Some(spec.dtd())), "set 3 name Joe");
        std::fs::remove_file(&path).ok();
    }
}
