//! Long-lived validation sessions: the edit-and-recheck front end.
//!
//! The one-shot surface (`CompiledSpec::check_document`) answers `T ⊨ Σ`
//! for a document it will never see again.  Edit-heavy workloads — document
//! repair loops, collaborative editors, write-access-control checking —
//! re-validate the *same* document after every small change, and a rebuild
//! per edit costs O(document) each time.
//!
//! A [`Session`] owns one [`CompiledSpec`] reference and any number of open
//! documents, each addressed by a [`DocHandle`].  Mutation goes exclusively
//! through [`Session::apply`] as typed [`EditOp`]s: the session routes every
//! edit through [`xic_xml::XmlTree::apply_edit`], feeds the resulting
//! [`xic_xml::EditEffect`] to the document's
//! [`xic_constraints::IncrementalIndex`], journals it, and returns a fresh
//! [`SessionVerdict`].  Because the session hands out only `&XmlTree`, raw
//! `&mut` mutation can no longer bypass index maintenance.
//!
//! Verdicts are **witness-identical** to a from-scratch rebuild (asserted
//! by `tests/session_agreement.rs`), at O(edit) maintenance cost instead of
//! O(rebuild) — the `session_edit` bench records the gap.

use std::collections::HashMap;
use std::fmt;

use xic_constraints::{IncrementalIndex, Violation};
use xic_xml::{EditError, EditJournal, EditOp, XmlError, XmlTree};

use crate::spec::CompiledSpec;

/// Identifier of a document opened in a [`Session`] or a
/// [`crate::CorpusSession`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocHandle(u64);

impl DocHandle {
    /// Crate-internal constructor (handles are only minted by sessions).
    pub(crate) fn new(raw: u64) -> DocHandle {
        DocHandle(raw)
    }

    /// The raw handle number (stable for the lifetime of the session).
    pub(crate) fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for DocHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "doc-{}", self.0)
    }
}

/// Why a session operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The handle names no open document (closed, or from another session).
    UnknownHandle(DocHandle),
    /// An edit op was rejected; the `index` ops of the batch preceding it
    /// were applied (the indexes remain exact for the partially edited
    /// document — ask for a verdict to see its state).
    Edit {
        /// Position of the rejected op in the submitted batch (equivalently:
        /// how many earlier ops of the batch were applied).
        index: usize,
        /// The underlying rejection.
        error: EditError,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::UnknownHandle(h) => write!(f, "unknown document handle {h}"),
            SessionError::Edit { index, error } => write!(
                f,
                "edit op #{index} rejected ({error}); the {index} earlier ops of the batch were applied"
            ),
        }
    }
}

impl std::error::Error for SessionError {}

/// The outcome of re-checking one session document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionVerdict {
    violations: Vec<Violation>,
    rechecked: usize,
    edits_applied: u64,
}

impl SessionVerdict {
    /// `T ⊨ Σ`?
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Every violation, in Σ order — identical to what a full
    /// [`xic_constraints::DocIndex`] rebuild would report.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// How many of Σ's constraints this verdict had to recompute (the rest
    /// were served from the per-constraint cache): the observable dirty-set
    /// size.
    pub fn rechecked(&self) -> usize {
        self.rechecked
    }

    /// Total edits applied to the document since it was opened.
    pub fn edits_applied(&self) -> u64 {
        self.edits_applied
    }
}

/// Applies a batch of ops to one `(tree, index, journal)` triple: each op
/// is validated, applied, folded into the incremental indexes and journaled
/// before the next op runs.  On rejection the applied prefix stays (the
/// error's `index` reports its length) and the indexes remain exact.  The
/// one edit loop shared by [`Session`] and [`crate::CorpusSession`].
pub(crate) fn apply_ops(
    tree: &mut XmlTree,
    index: &mut IncrementalIndex,
    journal: &mut EditJournal,
    ops: &[EditOp],
) -> Result<(), SessionError> {
    for (i, op) in ops.iter().enumerate() {
        let effect = tree
            .apply_edit(op)
            .map_err(|error| SessionError::Edit { index: i, error })?;
        index.apply(tree, &effect);
        journal.record(op.clone(), effect);
    }
    Ok(())
}

#[derive(Debug)]
struct SessionDoc {
    tree: XmlTree,
    index: IncrementalIndex,
    journal: EditJournal,
    edits_applied: u64,
}

/// A long-lived validation session over one compiled specification.
///
/// ```
/// use xic_engine::{CompiledSpec, Session};
/// use xic_xml::EditOp;
///
/// let spec = CompiledSpec::from_sources(
///     "<!ELEMENT school (teacher*)>\n\
///      <!ELEMENT teacher EMPTY>\n\
///      <!ATTLIST teacher name CDATA #REQUIRED>",
///     Some("school"),
///     "teacher.name -> teacher",
/// )
/// .unwrap();
///
/// let mut session = Session::new(&spec);
/// let doc = session
///     .open_source("<school><teacher name=\"Joe\"/><teacher name=\"Ann\"/></school>")
///     .unwrap();
/// assert!(session.verdict(doc).unwrap().is_clean());
///
/// // Renaming Ann to Joe breaks the key — only the touched constraint is
/// // re-checked, not the whole document.
/// let ann = session.tree(doc).unwrap().elements().nth(2).unwrap();
/// let verdict = session
///     .apply(
///         doc,
///         &[EditOp::SetAttr { element: ann, attr: spec.dtd().attr_by_name("name").unwrap(), value: "Joe".into() }],
///     )
///     .unwrap();
/// assert!(!verdict.is_clean());
/// ```
#[derive(Debug)]
pub struct Session<'s> {
    spec: &'s CompiledSpec,
    docs: HashMap<u64, SessionDoc>,
    next_handle: u64,
}

impl<'s> Session<'s> {
    /// A session over the given compiled specification.
    pub fn new(spec: &'s CompiledSpec) -> Session<'s> {
        Session {
            spec,
            docs: HashMap::new(),
            next_handle: 0,
        }
    }

    /// The specification the session validates against.
    pub fn spec(&self) -> &CompiledSpec {
        self.spec
    }

    /// Number of open documents.
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }

    /// Opens a document, taking ownership of the tree (mutation from here
    /// on goes through [`Session::apply`] only).  Populates the incremental
    /// indexes in one pass over the tree; the slot/watcher/touch-map layout
    /// is **not** derived here — it lives on the [`CompiledSpec`]
    /// ([`CompiledSpec::incremental_layout`], computed once per spec), so
    /// opening costs one `Arc` clone plus the document pass.
    pub fn open(&mut self, tree: XmlTree) -> DocHandle {
        let layout = std::sync::Arc::clone(self.spec.incremental_layout());
        let index = IncrementalIndex::with_layout(layout, &tree);
        let handle = DocHandle(self.next_handle);
        self.next_handle += 1;
        self.docs.insert(
            handle.0,
            SessionDoc {
                tree,
                index,
                journal: EditJournal::new(),
                edits_applied: 0,
            },
        );
        handle
    }

    /// Parses XML source against the spec's DTD and opens the document.
    pub fn open_source(&mut self, source: &str) -> Result<DocHandle, XmlError> {
        let tree = self.spec.parse_document(source)?;
        Ok(self.open(tree))
    }

    /// Read-only access to an open document's tree.
    pub fn tree(&self, handle: DocHandle) -> Result<&XmlTree, SessionError> {
        self.docs
            .get(&handle.0)
            .map(|d| &d.tree)
            .ok_or(SessionError::UnknownHandle(handle))
    }

    /// The document's complete edit history since it was opened.
    pub fn journal(&self, handle: DocHandle) -> Result<&EditJournal, SessionError> {
        self.docs
            .get(&handle.0)
            .map(|d| &d.journal)
            .ok_or(SessionError::UnknownHandle(handle))
    }

    /// Applies a batch of edits to one document and returns the fresh
    /// verdict.  Each op is validated, applied to the tree, folded into the
    /// incremental indexes and journaled before the next op runs; if an op
    /// is rejected, the earlier ops of the batch stay applied (the error
    /// reports how many) and the indexes remain exact.
    pub fn apply(
        &mut self,
        handle: DocHandle,
        ops: &[EditOp],
    ) -> Result<SessionVerdict, SessionError> {
        let doc = self
            .docs
            .get_mut(&handle.0)
            .ok_or(SessionError::UnknownHandle(handle))?;
        let outcome = apply_ops(&mut doc.tree, &mut doc.index, &mut doc.journal, ops);
        match outcome {
            Ok(()) => doc.edits_applied += ops.len() as u64,
            Err(SessionError::Edit { index, .. }) => doc.edits_applied += index as u64,
            Err(_) => unreachable!("apply_ops only raises Edit errors"),
        }
        outcome?;
        Ok(Self::verdict_of(doc))
    }

    /// The current verdict of one document (recomputing only constraints
    /// left dirty by edits since the last verdict).
    pub fn verdict(&mut self, handle: DocHandle) -> Result<SessionVerdict, SessionError> {
        let doc = self
            .docs
            .get_mut(&handle.0)
            .ok_or(SessionError::UnknownHandle(handle))?;
        Ok(Self::verdict_of(doc))
    }

    fn verdict_of(doc: &mut SessionDoc) -> SessionVerdict {
        let violations = doc.index.check_all(&doc.tree);
        SessionVerdict {
            violations,
            rechecked: doc.index.rechecked(),
            edits_applied: doc.edits_applied,
        }
    }

    /// Closes a document, handing its (edited) tree back to the caller.
    pub fn close(&mut self, handle: DocHandle) -> Result<XmlTree, SessionError> {
        self.docs
            .remove(&handle.0)
            .map(|d| d.tree)
            .ok_or(SessionError::UnknownHandle(handle))
    }

    /// One-shot `T ⊨ Σ` for a throwaway document: since no edit can ever
    /// arrive, the incremental bookkeeping (carrier sets, watcher lists,
    /// journals) would be built and thrown away — so this takes the plain
    /// [`xic_constraints::DocIndex`] build instead.  Verdicts and witnesses
    /// are identical to the session path (`tests/session_agreement.rs`
    /// asserts the equality on random documents and edit histories).  This
    /// is what `CompiledSpec::check_document` wraps.
    pub fn check_once(spec: &CompiledSpec, tree: &XmlTree) -> Vec<Violation> {
        spec.index_document(tree).check_all(spec.sigma())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xic_constraints::{DocIndex, IndexPlan};

    fn spec() -> CompiledSpec {
        CompiledSpec::from_sources(
            "<!ELEMENT school (teacher*)>\n\
             <!ELEMENT teacher EMPTY>\n\
             <!ATTLIST teacher name CDATA #REQUIRED>",
            Some("school"),
            "teacher.name -> teacher",
        )
        .unwrap()
    }

    #[test]
    fn edits_flow_through_and_verdicts_match_rebuild() {
        let spec = spec();
        let teacher = spec.dtd().type_by_name("teacher").unwrap();
        let name = spec.dtd().attr_by_name("name").unwrap();
        let mut session = Session::new(&spec);
        let doc = session
            .open_source("<school><teacher name=\"Joe\"/></school>")
            .unwrap();
        assert!(session.verdict(doc).unwrap().is_clean());

        let root = session.tree(doc).unwrap().root();
        let verdict = session
            .apply(
                doc,
                &[EditOp::AddElement {
                    parent: root,
                    ty: teacher,
                }],
            )
            .unwrap();
        // The new teacher has no name yet: keys skip attribute-less
        // elements, so the document is still clean.
        assert!(verdict.is_clean());
        let added = session.tree(doc).unwrap().ext(teacher).nth(1).unwrap();
        let verdict = session
            .apply(
                doc,
                &[EditOp::SetAttr {
                    element: added,
                    attr: name,
                    value: "Joe".into(),
                }],
            )
            .unwrap();
        assert!(!verdict.is_clean());
        assert_eq!(verdict.edits_applied(), 2);

        // Witness identity with a from-scratch rebuild.
        let tree = session.tree(doc).unwrap();
        let plan = IndexPlan::for_set(spec.sigma());
        let rebuilt = DocIndex::build(spec.dtd(), tree, &plan).check_all(spec.sigma());
        assert_eq!(verdict.violations(), rebuilt.as_slice());

        // Closing hands the edited tree back; the handle dies.
        let tree = session.close(doc).unwrap();
        assert_eq!(tree.ext_count(teacher), 2);
        assert_eq!(session.verdict(doc), Err(SessionError::UnknownHandle(doc)));
    }

    #[test]
    fn rejected_ops_report_the_applied_prefix() {
        let spec = spec();
        let teacher = spec.dtd().type_by_name("teacher").unwrap();
        let mut session = Session::new(&spec);
        let doc = session
            .open_source("<school><teacher name=\"Joe\"/></school>")
            .unwrap();
        let root = session.tree(doc).unwrap().root();
        let err = session
            .apply(
                doc,
                &[
                    EditOp::AddElement {
                        parent: root,
                        ty: teacher,
                    },
                    EditOp::RemoveSubtree { element: root },
                ],
            )
            .unwrap_err();
        assert_eq!(
            err,
            SessionError::Edit {
                index: 1,
                error: xic_xml::EditError::RemoveRoot
            }
        );
        // The applied prefix is visible and the indexes stayed exact.
        assert_eq!(session.tree(doc).unwrap().ext_count(teacher), 2);
        assert!(session.verdict(doc).unwrap().is_clean());
    }

    #[test]
    fn check_once_agrees_with_docindex() {
        let spec = spec();
        let tree = spec
            .parse_document("<school><teacher name=\"A\"/><teacher name=\"A\"/></school>")
            .unwrap();
        let plan = IndexPlan::for_set(spec.sigma());
        let rebuilt = DocIndex::build(spec.dtd(), &tree, &plan).check_all(spec.sigma());
        assert_eq!(Session::check_once(&spec, &tree), rebuilt);
        assert_eq!(spec.check_document(&tree), rebuilt);
    }
}
