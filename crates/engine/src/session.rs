//! Long-lived validation sessions: the edit-and-recheck front end.
//!
//! The one-shot surface (`CompiledSpec::check_document`) answers `T ⊨ Σ`
//! for a document it will never see again.  Edit-heavy workloads — document
//! repair loops, collaborative editors, write-access-control checking —
//! re-validate the *same* document after every small change, and a rebuild
//! per edit costs O(document) each time.
//!
//! A [`Session`] owns one [`CompiledSpec`] reference and any number of open
//! documents, each addressed by a [`DocHandle`].  Mutation goes exclusively
//! through [`Session::apply`] as typed [`EditOp`]s: the session routes every
//! edit through [`xic_xml::XmlTree::apply_edit`], feeds the resulting
//! [`xic_xml::EditEffect`] to the document's
//! [`xic_constraints::IncrementalIndex`], journals it, and returns a fresh
//! [`SessionVerdict`].  Because the session hands out only `&XmlTree`, raw
//! `&mut` mutation can no longer bypass index maintenance.
//!
//! Verdicts are **witness-identical** to a from-scratch rebuild (asserted
//! by `tests/session_agreement.rs`), at O(edit) maintenance cost instead of
//! O(rebuild) — the `session_edit` bench records the gap.

use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::Arc;

use xic_constraints::{IncrementalIndex, Violation};
use xic_telemetry::{Counter, Histogram, MetricsRegistry};
use xic_xml::budget::ParseError;
use xic_xml::snapshot::TreeSnapshot;
use xic_xml::{EditError, EditJournal, EditOp, ValuePool, XmlError, XmlTree};

use crate::journal::{self, JournalError, PersistReceipt};
use crate::limits::{self, Limits, ResourceError};
use crate::spec::CompiledSpec;

/// Registry-backed per-edit instruments, resolved once per session (name
/// lookups take a read lock; [`Session::apply`] should not).
#[derive(Debug)]
pub(crate) struct SessionInstruments {
    pub(crate) registry: Arc<MetricsRegistry>,
    edits: Arc<Counter>,
    apply_ns: Arc<Histogram>,
    check_ns: Arc<Histogram>,
}

impl SessionInstruments {
    pub(crate) fn on(registry: Arc<MetricsRegistry>) -> SessionInstruments {
        SessionInstruments {
            edits: registry.counter("session.edits"),
            apply_ns: registry.histogram("session.apply_ns"),
            check_ns: registry.histogram("session.check_ns"),
            registry,
        }
    }
}

/// Identifier of a document opened in a [`Session`] or a
/// [`crate::CorpusSession`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocHandle(u64);

impl DocHandle {
    /// Crate-internal constructor (live handles are only minted by
    /// sessions).
    pub(crate) fn new(raw: u64) -> DocHandle {
        DocHandle(raw)
    }

    /// Reconstructs a handle from its raw number.  Sessions mint live
    /// handles themselves; this exists for the replication layer — a
    /// [`crate::CorpusReplica`] fed a persisted delta log must key its
    /// replica documents by the *originating* session's handles.
    pub fn from_raw(raw: u64) -> DocHandle {
        DocHandle(raw)
    }

    /// The raw handle number (stable for the lifetime of the session, and
    /// the identity [`crate::BatchDelta`] records persist).
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for DocHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "doc-{}", self.0)
    }
}

/// Why a session operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The handle names no open document (closed, or from another session).
    UnknownHandle(DocHandle),
    /// An edit op was rejected; the `index` ops of the batch preceding it
    /// were applied (the indexes remain exact for the partially edited
    /// document — ask for a verdict to see its state).
    Edit {
        /// Position of the rejected op in the submitted batch (equivalently:
        /// how many earlier ops of the batch were applied).
        index: usize,
        /// The underlying rejection.
        error: EditError,
    },
    /// A document source could not be parsed (`open_source`).
    Parse(XmlError),
    /// A [`Limits`] bound turned the request away.  Unlike
    /// [`SessionError::Edit`], rejection is all-or-nothing: **no op was
    /// applied** — the batch comes back whole in the error's `rejected`
    /// echo, so the caller can shed load and retry after a commit.
    Resource(ResourceError),
    /// The document is quarantined: an earlier edit panicked mid-apply and
    /// was contained, so its in-memory indexes may be inconsistent.  Every
    /// verdict-producing call is refused until [`Session::recover`]
    /// rebuilds the document from its journal.
    Poisoned {
        /// The quarantined document.
        handle: DocHandle,
        /// The contained panic's message.
        cause: String,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::UnknownHandle(h) => write!(f, "unknown document handle {h}"),
            SessionError::Edit { index, error } => write!(
                f,
                "edit op #{index} rejected ({error}); the {index} earlier ops of the batch were applied"
            ),
            SessionError::Parse(err) => write!(f, "parse error: {err}"),
            SessionError::Resource(err) => err.fmt(f),
            SessionError::Poisoned { handle, cause } => write!(
                f,
                "document {handle} is quarantined after a contained panic ({cause}); recover() it"
            ),
        }
    }
}

impl std::error::Error for SessionError {}

/// The outcome of re-checking one session document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionVerdict {
    violations: Vec<Violation>,
    rechecked: usize,
    edits_applied: u64,
}

impl SessionVerdict {
    /// `T ⊨ Σ`?
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Every violation, in Σ order — identical to what a full
    /// [`xic_constraints::DocIndex`] rebuild would report.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// How many of Σ's constraints this verdict had to recompute (the rest
    /// were served from the per-constraint cache): the observable dirty-set
    /// size.
    pub fn rechecked(&self) -> usize {
        self.rechecked
    }

    /// Total edits applied to the document since it was opened.
    pub fn edits_applied(&self) -> u64 {
        self.edits_applied
    }
}

/// Applies a batch of ops to one `(tree, index, journal)` triple: each op
/// is validated, applied, folded into the incremental indexes and journaled
/// before the next op runs.  On rejection the applied prefix stays (the
/// error's `index` reports its length) and the indexes remain exact.  The
/// one edit loop shared by [`Session`] and [`crate::CorpusSession`].
pub(crate) fn apply_ops(
    tree: &mut XmlTree,
    index: &mut IncrementalIndex,
    journal: &mut EditJournal,
    ops: &[EditOp],
) -> Result<(), SessionError> {
    for (i, op) in ops.iter().enumerate() {
        let effect = tree
            .apply_edit(op)
            .map_err(|error| SessionError::Edit { index: i, error })?;
        index.apply(tree, &effect);
        journal.record(op.clone(), effect);
    }
    Ok(())
}

#[derive(Debug)]
struct SessionDoc {
    tree: XmlTree,
    index: IncrementalIndex,
    journal: EditJournal,
    edits_applied: u64,
    /// Edits known durable in a log (`Session::persist_to` raises it); the
    /// compaction watermark for [`xic_xml::EditJournal::compact`].
    durable_edits: u64,
    /// The tree as of the journal's fold point: [`Session::recover`]
    /// replays `journal` on top of this to rebuild the document after a
    /// contained panic.  [`Session::compact`] advances it in lockstep with
    /// the journal so base + entries always reconstructs the live tree.
    base: TreeSnapshot,
    /// `Some(cause)` after a contained panic mid-apply: the tree/index pair
    /// may be inconsistent, so edits and verdicts are refused until
    /// [`Session::recover`] clears the flag.
    poisoned: Option<String>,
}

impl SessionDoc {
    fn new(tree: XmlTree, index: IncrementalIndex) -> SessionDoc {
        let base = tree.snapshot();
        SessionDoc {
            tree,
            index,
            journal: EditJournal::new(),
            edits_applied: 0,
            durable_edits: 0,
            base,
            poisoned: None,
        }
    }
}

/// What `Session::recover_from` reconstructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recovery {
    /// The handle of the recovered document.
    pub handle: DocHandle,
    /// Edits that were already folded into the log's base snapshot.
    pub base_edits: u64,
    /// Logged ops replayed on top of the base.
    pub ops_replayed: u64,
    /// Whether a torn tail (a partially written final record) was dropped.
    pub truncated_tail: bool,
}

impl Recovery {
    /// Total edits the recovered document accounts for.
    pub fn total_edits(&self) -> u64 {
        self.base_edits + self.ops_replayed
    }
}

/// A long-lived validation session over one compiled specification.
///
/// ```
/// use xic_engine::{CompiledSpec, Session};
/// use xic_xml::EditOp;
///
/// let spec = CompiledSpec::from_sources(
///     "<!ELEMENT school (teacher*)>\n\
///      <!ELEMENT teacher EMPTY>\n\
///      <!ATTLIST teacher name CDATA #REQUIRED>",
///     Some("school"),
///     "teacher.name -> teacher",
/// )
/// .unwrap();
///
/// let mut session = Session::new(&spec);
/// let doc = session
///     .open_source("<school><teacher name=\"Joe\"/><teacher name=\"Ann\"/></school>")
///     .unwrap();
/// assert!(session.verdict(doc).unwrap().is_clean());
///
/// // Renaming Ann to Joe breaks the key — only the touched constraint is
/// // re-checked, not the whole document.
/// let ann = session.tree(doc).unwrap().elements().nth(2).unwrap();
/// let verdict = session
///     .apply(
///         doc,
///         &[EditOp::SetAttr { element: ann, attr: spec.dtd().attr_by_name("name").unwrap(), value: "Joe".into() }],
///     )
///     .unwrap();
/// assert!(!verdict.is_clean());
/// ```
#[derive(Debug)]
pub struct Session<'s> {
    spec: &'s CompiledSpec,
    docs: HashMap<u64, SessionDoc>,
    next_handle: u64,
    instr: SessionInstruments,
    limits: Limits,
}

impl<'s> Session<'s> {
    /// A session over the given compiled specification, recording its
    /// per-edit metrics (`session.edits`, `session.apply_ns`,
    /// `session.check_ns`) on the process-global registry.
    pub fn new(spec: &'s CompiledSpec) -> Session<'s> {
        Session::with_registry(spec, Arc::clone(xic_telemetry::global()))
    }

    /// A session recording its metrics on an explicit registry (per-tenant
    /// isolation, or a private registry in tests).
    pub fn with_registry(spec: &'s CompiledSpec, registry: Arc<MetricsRegistry>) -> Session<'s> {
        Session {
            spec,
            docs: HashMap::new(),
            next_handle: 0,
            instr: SessionInstruments::on(registry),
            limits: Limits::UNLIMITED,
        }
    }

    /// A session that enforces [`Limits`]: oversized sources are refused at
    /// [`Session::open_source`] and edit batches that would blow a bound
    /// are rejected whole by [`Session::apply`] (as
    /// [`SessionError::Resource`], with the batch echoed back).
    pub fn with_limits(spec: &'s CompiledSpec, limits: Limits) -> Session<'s> {
        let mut session = Session::new(spec);
        session.limits = limits;
        session
    }

    /// The resource bounds this session enforces.
    pub fn limits(&self) -> &Limits {
        &self.limits
    }

    /// The registry this session's instruments record into.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.instr.registry
    }

    /// The specification the session validates against.
    pub fn spec(&self) -> &CompiledSpec {
        self.spec
    }

    /// Number of open documents.
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }

    /// Opens a document, taking ownership of the tree (mutation from here
    /// on goes through [`Session::apply`] only).  Populates the incremental
    /// indexes in one pass over the tree; the slot/watcher/touch-map layout
    /// is **not** derived here — it lives on the [`CompiledSpec`]
    /// ([`CompiledSpec::incremental_layout`], computed once per spec), so
    /// opening costs one `Arc` clone plus the document pass.
    pub fn open(&mut self, tree: XmlTree) -> DocHandle {
        let layout = std::sync::Arc::clone(self.spec.incremental_layout());
        let index = IncrementalIndex::with_layout(layout, &tree);
        let handle = DocHandle(self.next_handle);
        self.next_handle += 1;
        self.docs.insert(handle.0, SessionDoc::new(tree, index));
        handle
    }

    /// Parses XML source against the spec's DTD and opens the document.
    /// Under [`Limits`] the parse itself is budgeted: byte, node and depth
    /// bounds reject the source ([`SessionError::Resource`]) before a large
    /// document can occupy memory.
    pub fn open_source(&mut self, source: &str) -> Result<DocHandle, SessionError> {
        let budget = self.limits.parse_budget();
        let tree = self
            .spec
            .parse_document_budgeted(source, ValuePool::new(), &budget)
            .map_err(|(err, _)| match err {
                ParseError::Xml(e) => SessionError::Parse(e),
                ParseError::Budget(b) => {
                    SessionError::Resource(ResourceError::from_budget(b, "open_source"))
                }
            })?;
        Ok(self.open(tree))
    }

    /// Read-only access to an open document's tree.
    pub fn tree(&self, handle: DocHandle) -> Result<&XmlTree, SessionError> {
        self.docs
            .get(&handle.0)
            .map(|d| &d.tree)
            .ok_or(SessionError::UnknownHandle(handle))
    }

    /// The document's complete edit history since it was opened.
    pub fn journal(&self, handle: DocHandle) -> Result<&EditJournal, SessionError> {
        self.docs
            .get(&handle.0)
            .map(|d| &d.journal)
            .ok_or(SessionError::UnknownHandle(handle))
    }

    /// Applies a batch of edits to one document and returns the fresh
    /// verdict.  Each op is validated, applied to the tree, folded into the
    /// incremental indexes and journaled before the next op runs; if an op
    /// is rejected, the earlier ops of the batch stay applied (the error
    /// reports how many) and the indexes remain exact.
    ///
    /// Two further rejection modes never touch the document at all: a
    /// [`Limits`] bound turns the whole batch away as
    /// [`SessionError::Resource`] (the batch comes back in the error's
    /// echo), and a quarantined document ([`SessionError::Poisoned`]) is
    /// refused until [`Session::recover`] runs.  A panic *inside* the edit
    /// loop is contained here: the document is quarantined instead of the
    /// process dying, and the journal keeps exactly the fully-recorded ops
    /// — so recovery replays a consistent history.
    pub fn apply(
        &mut self,
        handle: DocHandle,
        ops: &[EditOp],
    ) -> Result<SessionVerdict, SessionError> {
        let limits = self.limits;
        let doc = self
            .docs
            .get_mut(&handle.0)
            .ok_or(SessionError::UnknownHandle(handle))?;
        if let Some(cause) = &doc.poisoned {
            return Err(SessionError::Poisoned {
                handle,
                cause: cause.clone(),
            });
        }
        limits::admit_ops(&limits, &doc.tree, 0, ops, &handle.to_string())
            .map_err(SessionError::Resource)?;
        // Timed per batch, not per op: one clock pair amortized over the
        // whole edit slice keeps instrumentation inside the overhead budget.
        let timer = self.instr.registry.start_timer();
        let recorded_before = doc.journal.total_recorded();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            if xic_telemetry::faults::hit("session.apply") {
                panic!("injected fault: session.apply");
            }
            apply_ops(&mut doc.tree, &mut doc.index, &mut doc.journal, ops)
        }));
        let outcome = match caught {
            Ok(outcome) => outcome,
            Err(payload) => {
                // Contained panic mid-edit: quarantine the document.  Only
                // fully-recorded ops count as applied — the journal is the
                // consistent history recovery replays.
                let cause = crate::batch::panic_cause(payload);
                crate::batch::resilience_instruments().0.inc();
                doc.poisoned = Some(cause.clone());
                let recorded = doc.journal.total_recorded() - recorded_before;
                doc.edits_applied += recorded;
                self.instr.edits.add(recorded);
                return Err(SessionError::Poisoned { handle, cause });
            }
        };
        let applied = match &outcome {
            Ok(()) => ops.len() as u64,
            Err(SessionError::Edit { index, .. }) => *index as u64,
            Err(_) => unreachable!("apply_ops only raises Edit errors"),
        };
        doc.edits_applied += applied;
        self.instr.edits.add(applied);
        if let Some(t) = timer {
            self.instr.apply_ns.record_elapsed(t);
        }
        outcome?;
        Ok(Self::verdict_of(&self.instr, doc))
    }

    /// Whether a document is quarantined after a contained panic (see
    /// [`SessionError::Poisoned`]).
    pub fn is_poisoned(&self, handle: DocHandle) -> Result<bool, SessionError> {
        self.docs
            .get(&handle.0)
            .map(|d| d.poisoned.is_some())
            .ok_or(SessionError::UnknownHandle(handle))
    }

    /// Rebuilds a quarantined document from its recovery base plus the
    /// journal — the fully-recorded, known-consistent history — clearing
    /// the poison flag and returning a fresh verdict.  Safe (and a cheap
    /// no-op semantically) on healthy documents too: the rebuilt state is
    /// identical to the live one.
    pub fn recover(&mut self, handle: DocHandle) -> Result<SessionVerdict, SessionError> {
        let layout = Arc::clone(self.spec.incremental_layout());
        let doc = self
            .docs
            .get_mut(&handle.0)
            .ok_or(SessionError::UnknownHandle(handle))?;
        let mut tree = XmlTree::from_snapshot(&doc.base)
            .expect("session base snapshots are self-made and reconstruct exactly");
        for (op, _) in doc.journal.entries() {
            tree.apply_edit(op)
                .expect("journaled ops replay deterministically onto their base");
        }
        doc.index = IncrementalIndex::with_layout(layout, &tree);
        doc.tree = tree;
        doc.poisoned = None;
        doc.edits_applied = doc.journal.total_recorded();
        Ok(Self::verdict_of(&self.instr, doc))
    }

    /// The current verdict of one document (recomputing only constraints
    /// left dirty by edits since the last verdict).
    pub fn verdict(&mut self, handle: DocHandle) -> Result<SessionVerdict, SessionError> {
        let doc = self
            .docs
            .get_mut(&handle.0)
            .ok_or(SessionError::UnknownHandle(handle))?;
        Ok(Self::verdict_of(&self.instr, doc))
    }

    fn verdict_of(instr: &SessionInstruments, doc: &mut SessionDoc) -> SessionVerdict {
        let timer = instr.registry.start_timer();
        let violations = doc.index.check_all(&doc.tree);
        if let Some(t) = timer {
            instr.check_ns.record_elapsed(t);
        }
        SessionVerdict {
            violations,
            rechecked: doc.index.rechecked(),
            edits_applied: doc.edits_applied,
        }
    }

    /// Persists one document to an append-only delta log at `path` (see
    /// [`crate::journal`] for the format).
    ///
    /// The first persist writes the log header plus a **base record** — a
    /// slot-for-slot snapshot of the current tree, folding every edit
    /// recorded so far.  Later persists to the same path append exactly the
    /// journal entries the log lacks (after verifying the shared history
    /// matches op-for-op), truncating a torn tail left by an earlier crash
    /// first.  After a successful persist every recorded edit is durable,
    /// so [`Session::compact`] may drop the in-memory prefix.
    pub fn persist_to(
        &mut self,
        handle: DocHandle,
        path: impl AsRef<Path>,
    ) -> Result<PersistReceipt, JournalError> {
        let doc = self
            .docs
            .get_mut(&handle.0)
            .ok_or(JournalError::UnknownHandle { handle: handle.0 })?;
        let receipt =
            journal::persist_session_doc(path.as_ref(), self.spec.id(), &doc.tree, &doc.journal)?;
        doc.durable_edits = doc.journal.total_recorded();
        Ok(receipt)
    }

    /// Recovers a document from a log written by [`Session::persist_to`]
    /// and opens it in this session.
    ///
    /// A partially written final record (a crash mid-append) is a **torn
    /// tail**: it is dropped and the last durable prefix is recovered —
    /// verdicts are then witness-identical to a live session that replayed
    /// the same prefix (`tests/journal_recovery.rs` proves this under
    /// truncation and corruption at every byte boundary).  Anything
    /// structurally unsound — wrong spec, damaged non-final records,
    /// undecodable payloads, snapshots or ops violating tree/DTD
    /// invariants — is rejected with a structured [`JournalError`]; wrong
    /// verdicts are never produced.
    pub fn recover_from(&mut self, path: impl AsRef<Path>) -> Result<Recovery, JournalError> {
        let log = journal::read_session_log(path, self.spec.id())?;
        journal::validate_log_against_dtd(&log, self.spec.dtd())?;
        let tree = XmlTree::from_snapshot(&log.base)?;
        let layout = std::sync::Arc::clone(self.spec.incremental_layout());
        let index = IncrementalIndex::with_layout(layout, &tree);
        let mut doc = SessionDoc::new(tree, index);
        doc.journal = EditJournal::with_folded(log.base_edits);
        doc.edits_applied = log.base_edits;
        for (i, op) in log.ops.iter().enumerate() {
            let effect = doc
                .tree
                .apply_edit(op)
                .map_err(|error| JournalError::Replay {
                    op_index: log.base_edits + i as u64,
                    error,
                })?;
            doc.index.apply(&doc.tree, &effect);
            doc.journal.record(op.clone(), effect);
            doc.edits_applied += 1;
        }
        doc.durable_edits = log.total_edits();
        let handle = DocHandle(self.next_handle);
        self.next_handle += 1;
        self.docs.insert(handle.0, doc);
        Ok(Recovery {
            handle,
            base_edits: log.base_edits,
            ops_replayed: log.ops.len() as u64,
            truncated_tail: log.truncated,
        })
    }

    /// Drops the journal entries already durable in a log (the prefix a
    /// [`Session::persist_to`] covered), bounding the in-memory journal of
    /// a long-lived session.  Returns how many entries were dropped.
    /// Recovery still round-trips node-for-node afterwards: the log, not
    /// the in-memory journal, is the full history.
    /// Before dropping entries, the in-memory recovery base is advanced to
    /// the same watermark (the dropped prefix is folded into it) so
    /// [`Session::recover`] keeps working after compaction.
    pub fn compact(&mut self, handle: DocHandle) -> Result<usize, SessionError> {
        let doc = self
            .docs
            .get_mut(&handle.0)
            .ok_or(SessionError::UnknownHandle(handle))?;
        let folded = doc.journal.folded();
        if doc.durable_edits > folded {
            let to_fold = (doc.durable_edits - folded) as usize;
            let mut base = XmlTree::from_snapshot(&doc.base)
                .expect("session base snapshots are self-made and reconstruct exactly");
            for (op, _) in doc.journal.entries().iter().take(to_fold) {
                base.apply_edit(op)
                    .expect("journaled ops replay deterministically onto their base");
            }
            doc.base = base.snapshot();
        }
        Ok(doc.journal.compact(doc.durable_edits))
    }

    /// Edits of this document known durable in a log (the compaction
    /// watermark).
    pub fn durable_edits(&self, handle: DocHandle) -> Result<u64, SessionError> {
        self.docs
            .get(&handle.0)
            .map(|d| d.durable_edits)
            .ok_or(SessionError::UnknownHandle(handle))
    }

    /// Closes a document, handing its (edited) tree back to the caller.
    pub fn close(&mut self, handle: DocHandle) -> Result<XmlTree, SessionError> {
        self.docs
            .remove(&handle.0)
            .map(|d| d.tree)
            .ok_or(SessionError::UnknownHandle(handle))
    }

    /// One-shot `T ⊨ Σ` for a throwaway document: since no edit can ever
    /// arrive, the incremental bookkeeping (carrier sets, watcher lists,
    /// journals) would be built and thrown away — so this takes the plain
    /// [`xic_constraints::DocIndex`] build instead.  Verdicts and witnesses
    /// are identical to the session path (`tests/session_agreement.rs`
    /// asserts the equality on random documents and edit histories).  This
    /// is what `CompiledSpec::check_document` wraps.
    pub fn check_once(spec: &CompiledSpec, tree: &XmlTree) -> Vec<Violation> {
        spec.index_document(tree).check_all(spec.sigma())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xic_constraints::{DocIndex, IndexPlan};

    fn spec() -> CompiledSpec {
        CompiledSpec::from_sources(
            "<!ELEMENT school (teacher*)>\n\
             <!ELEMENT teacher EMPTY>\n\
             <!ATTLIST teacher name CDATA #REQUIRED>",
            Some("school"),
            "teacher.name -> teacher",
        )
        .unwrap()
    }

    #[test]
    fn edits_flow_through_and_verdicts_match_rebuild() {
        let spec = spec();
        let teacher = spec.dtd().type_by_name("teacher").unwrap();
        let name = spec.dtd().attr_by_name("name").unwrap();
        let mut session = Session::new(&spec);
        let doc = session
            .open_source("<school><teacher name=\"Joe\"/></school>")
            .unwrap();
        assert!(session.verdict(doc).unwrap().is_clean());

        let root = session.tree(doc).unwrap().root();
        let verdict = session
            .apply(
                doc,
                &[EditOp::AddElement {
                    parent: root,
                    ty: teacher,
                }],
            )
            .unwrap();
        // The new teacher has no name yet: keys skip attribute-less
        // elements, so the document is still clean.
        assert!(verdict.is_clean());
        let added = session.tree(doc).unwrap().ext(teacher).nth(1).unwrap();
        let verdict = session
            .apply(
                doc,
                &[EditOp::SetAttr {
                    element: added,
                    attr: name,
                    value: "Joe".into(),
                }],
            )
            .unwrap();
        assert!(!verdict.is_clean());
        assert_eq!(verdict.edits_applied(), 2);

        // Witness identity with a from-scratch rebuild.
        let tree = session.tree(doc).unwrap();
        let plan = IndexPlan::for_set(spec.sigma());
        let rebuilt = DocIndex::build(spec.dtd(), tree, &plan).check_all(spec.sigma());
        assert_eq!(verdict.violations(), rebuilt.as_slice());

        // Closing hands the edited tree back; the handle dies.
        let tree = session.close(doc).unwrap();
        assert_eq!(tree.ext_count(teacher), 2);
        assert_eq!(session.verdict(doc), Err(SessionError::UnknownHandle(doc)));
    }

    #[test]
    fn rejected_ops_report_the_applied_prefix() {
        let spec = spec();
        let teacher = spec.dtd().type_by_name("teacher").unwrap();
        let mut session = Session::new(&spec);
        let doc = session
            .open_source("<school><teacher name=\"Joe\"/></school>")
            .unwrap();
        let root = session.tree(doc).unwrap().root();
        let err = session
            .apply(
                doc,
                &[
                    EditOp::AddElement {
                        parent: root,
                        ty: teacher,
                    },
                    EditOp::RemoveSubtree { element: root },
                ],
            )
            .unwrap_err();
        assert_eq!(
            err,
            SessionError::Edit {
                index: 1,
                error: xic_xml::EditError::RemoveRoot
            }
        );
        // The applied prefix is visible and the indexes stayed exact.
        assert_eq!(session.tree(doc).unwrap().ext_count(teacher), 2);
        assert!(session.verdict(doc).unwrap().is_clean());
    }

    #[test]
    fn persist_recover_compact_round_trip() {
        let spec = spec();
        let teacher = spec.dtd().type_by_name("teacher").unwrap();
        let name = spec.dtd().attr_by_name("name").unwrap();
        let mut path = std::env::temp_dir();
        path.push(format!("xic-session-persist-{}.xicj", std::process::id()));
        std::fs::remove_file(&path).ok();

        let mut session = Session::new(&spec);
        let doc = session
            .open_source("<school><teacher name=\"Joe\"/></school>")
            .unwrap();
        // First persist folds the (edit-free) document into the base.
        let receipt = session.persist_to(doc, &path).unwrap();
        assert_eq!(receipt.total_records, 1);

        // Edit, persist (appends two op records), compact, edit, persist.
        let root = session.tree(doc).unwrap().root();
        session
            .apply(
                doc,
                &[
                    EditOp::AddElement {
                        parent: root,
                        ty: teacher,
                    },
                    EditOp::AddElement {
                        parent: root,
                        ty: teacher,
                    },
                ],
            )
            .unwrap();
        let receipt = session.persist_to(doc, &path).unwrap();
        assert_eq!(receipt.records_written, 2);
        assert_eq!(session.durable_edits(doc).unwrap(), 2);
        assert_eq!(session.compact(doc).unwrap(), 2);
        assert!(session.journal(doc).unwrap().is_empty());
        let second = session.tree(doc).unwrap().ext(teacher).nth(1).unwrap();
        session
            .apply(
                doc,
                &[EditOp::SetAttr {
                    element: second,
                    attr: name,
                    value: "Joe".into(),
                }],
            )
            .unwrap();
        let receipt = session.persist_to(doc, &path).unwrap();
        assert_eq!(receipt.records_written, 1);
        assert_eq!(receipt.total_records, 4);
        let live = session.verdict(doc).unwrap();
        assert!(!live.is_clean());

        // Recovery replays the log onto the base snapshot: same verdict,
        // same witnesses, node-for-node the same arena.
        let mut recovered = Session::new(&spec);
        let recovery = recovered.recover_from(&path).unwrap();
        assert_eq!(recovery.base_edits, 0);
        assert_eq!(recovery.ops_replayed, 3);
        assert!(!recovery.truncated_tail);
        let verdict = recovered.verdict(recovery.handle).unwrap();
        assert_eq!(verdict.violations(), live.violations());
        assert_eq!(verdict.edits_applied(), 3);
        assert_eq!(
            recovered.tree(recovery.handle).unwrap().snapshot(),
            session.tree(doc).unwrap().snapshot()
        );

        // The recovered session keeps appending to the same log.
        let third = recovered
            .tree(recovery.handle)
            .unwrap()
            .ext(teacher)
            .nth(2)
            .unwrap();
        recovered
            .apply(
                recovery.handle,
                &[EditOp::SetAttr {
                    element: third,
                    attr: name,
                    value: "Ann".into(),
                }],
            )
            .unwrap();
        let receipt = recovered.persist_to(recovery.handle, &path).unwrap();
        assert_eq!(receipt.records_written, 1);
        assert_eq!(receipt.total_records, 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn persisting_a_foreign_log_is_rejected() {
        let spec = spec();
        let mut path = std::env::temp_dir();
        path.push(format!("xic-session-foreign-{}.xicj", std::process::id()));
        std::fs::remove_file(&path).ok();

        let mut session = Session::new(&spec);
        let a = session
            .open_source("<school><teacher name=\"A\"/></school>")
            .unwrap();
        let b = session
            .open_source("<school><teacher name=\"B\"/></school>")
            .unwrap();
        let teacher = spec.dtd().type_by_name("teacher").unwrap();
        let name = spec.dtd().attr_by_name("name").unwrap();
        session.persist_to(a, &path).unwrap();
        // Both documents get one identical op, then their histories fork.
        for doc in [a, b] {
            let root = session.tree(doc).unwrap().root();
            session
                .apply(
                    doc,
                    &[EditOp::AddElement {
                        parent: root,
                        ty: teacher,
                    }],
                )
                .unwrap();
        }
        let a_first = session.tree(a).unwrap().ext(teacher).next().unwrap();
        session
            .apply(
                a,
                &[EditOp::SetAttr {
                    element: a_first,
                    attr: name,
                    value: "Renamed".into(),
                }],
            )
            .unwrap();
        let b_first = session.tree(b).unwrap().ext(teacher).next().unwrap();
        session
            .apply(b, &[EditOp::RemoveSubtree { element: b_first }])
            .unwrap();
        session.persist_to(a, &path).unwrap();
        // a's log now holds two ops; b's second op differs in the overlap,
        // so appending b's history to a's log is refused.
        let err = session.persist_to(b, &path).unwrap_err();
        assert!(
            matches!(err, crate::journal::JournalError::Diverged { .. }),
            "{err:?}"
        );
        // A log that is *ahead* of the session is refused too.
        let mut rewound = Session::new(&spec);
        let fresh = rewound
            .open_source("<school><teacher name=\"A\"/></school>")
            .unwrap();
        let err = rewound.persist_to(fresh, &path).unwrap_err();
        assert!(
            matches!(err, crate::journal::JournalError::Diverged { .. }),
            "{err:?}"
        );
        // Unknown handles surface structurally.
        let mut other = Session::new(&spec);
        assert_eq!(
            other.persist_to(DocHandle::from_raw(9), &path).unwrap_err(),
            crate::journal::JournalError::UnknownHandle { handle: 9 }
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn limits_reject_batches_whole_with_an_echo() {
        use crate::limits::LimitKind;
        let spec = spec();
        let teacher = spec.dtd().type_by_name("teacher").unwrap();
        let mut session = Session::with_limits(
            &spec,
            Limits {
                max_doc_nodes: Some(3),
                ..Limits::UNLIMITED
            },
        );
        // school + teacher + its name attribute = 3 arena nodes: at the cap.
        let doc = session
            .open_source("<school><teacher name=\"Joe\"/></school>")
            .unwrap();
        let root = session.tree(doc).unwrap().root();
        let ops = vec![
            EditOp::AddElement {
                parent: root,
                ty: teacher,
            };
            2
        ];
        let err = session.apply(doc, &ops).unwrap_err();
        let SessionError::Resource(resource) = err else {
            panic!("expected a resource rejection, got {err:?}");
        };
        assert_eq!(resource.limit, LimitKind::DocNodes);
        // All-or-nothing: the whole batch is echoed back and nothing was
        // applied — unlike Edit errors, which keep the applied prefix.
        assert_eq!(resource.rejected.len(), 2);
        assert_eq!(resource.rejected[0].op, ops[0]);
        assert_eq!(session.tree(doc).unwrap().ext_count(teacher), 1);
        assert_eq!(session.verdict(doc).unwrap().edits_applied(), 0);
    }

    #[test]
    fn open_source_enforces_the_parse_budget() {
        let spec = spec();
        let mut session = Session::with_limits(
            &spec,
            Limits {
                max_doc_bytes: Some(8),
                ..Limits::UNLIMITED
            },
        );
        let err = session
            .open_source("<school><teacher name=\"Joe\"/></school>")
            .unwrap_err();
        assert!(
            matches!(err, SessionError::Resource(_)),
            "oversized source must reject as a resource error, got {err:?}"
        );
        assert_eq!(session.num_docs(), 0);
    }

    #[test]
    fn recover_rebuilds_the_live_state_even_after_compaction() {
        let spec = spec();
        let teacher = spec.dtd().type_by_name("teacher").unwrap();
        let name = spec.dtd().attr_by_name("name").unwrap();
        let mut path = std::env::temp_dir();
        path.push(format!("xic-session-recover-{}.xicj", std::process::id()));
        std::fs::remove_file(&path).ok();

        let mut session = Session::new(&spec);
        let doc = session
            .open_source("<school><teacher name=\"Joe\"/></school>")
            .unwrap();
        let root = session.tree(doc).unwrap().root();
        session
            .apply(
                doc,
                &[
                    EditOp::AddElement {
                        parent: root,
                        ty: teacher,
                    },
                    EditOp::AddElement {
                        parent: root,
                        ty: teacher,
                    },
                ],
            )
            .unwrap();
        // Compact away the durable prefix, then keep editing: recover()
        // must fold base + remaining journal back to the live tree.
        session.persist_to(doc, &path).unwrap();
        assert_eq!(session.compact(doc).unwrap(), 2);
        let second = session.tree(doc).unwrap().ext(teacher).nth(1).unwrap();
        session
            .apply(
                doc,
                &[EditOp::SetAttr {
                    element: second,
                    attr: name,
                    value: "Joe".into(),
                }],
            )
            .unwrap();
        let live_snapshot = session.tree(doc).unwrap().snapshot();
        let live = session.verdict(doc).unwrap();
        assert!(!session.is_poisoned(doc).unwrap());
        let verdict = session.recover(doc).unwrap();
        assert_eq!(verdict.violations(), live.violations());
        assert_eq!(verdict.edits_applied(), 3);
        assert_eq!(session.tree(doc).unwrap().snapshot(), live_snapshot);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn check_once_agrees_with_docindex() {
        let spec = spec();
        let tree = spec
            .parse_document("<school><teacher name=\"A\"/><teacher name=\"A\"/></school>")
            .unwrap();
        let plan = IndexPlan::for_set(spec.sigma());
        let rebuilt = DocIndex::build(spec.dtd(), &tree, &plan).check_all(spec.sigma());
        assert_eq!(Session::check_once(&spec, &tree), rebuilt);
        assert_eq!(spec.check_document(&tree), rebuilt);
    }
}
