//! Parallel batch validation of documents against one compiled spec.
//!
//! A `std::thread` worker pool pulls `(index, document)` jobs from a shared
//! channel, validates each document against the spec's precompiled automata
//! and satisfaction plan, and sends `(index, report)` results back.  Reports
//! are re-assembled **by input index**, so the aggregate report — including
//! its rendered form — is byte-identical whatever the thread count or
//! completion order.

use std::sync::mpsc;
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;

use xic_constraints::Violation;
use xic_telemetry::{Counter, Histogram};
use xic_xml::{ValuePool, XmlTree};

use crate::spec::CompiledSpec;

/// Global-registry batch instruments, resolved once: per-document pipeline
/// latency (`batch.doc_ns`), total documents processed (`batch.docs`), and
/// per-worker throughput (`batch.worker_docs` — one sample per worker per
/// batch, so its quantiles show how evenly the job channel spread the load).
fn instruments() -> &'static (Arc<Counter>, Arc<Histogram>, Arc<Histogram>) {
    static INSTRUMENTS: OnceLock<(Arc<Counter>, Arc<Histogram>, Arc<Histogram>)> = OnceLock::new();
    INSTRUMENTS.get_or_init(|| {
        let registry = xic_telemetry::global();
        (
            registry.counter("batch.docs"),
            registry.histogram("batch.doc_ns"),
            registry.histogram("batch.worker_docs"),
        )
    })
}

/// One document submitted to a batch: a label (typically its path) and its
/// XML source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchDoc {
    /// Display label used in reports.
    pub label: String,
    /// XML source text.
    pub content: String,
}

impl BatchDoc {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, content: impl Into<String>) -> BatchDoc {
        BatchDoc {
            label: label.into(),
            content: content.into(),
        }
    }
}

/// Everything found wrong with one document (empty vectors and no parse
/// error mean the document conforms to the DTD and satisfies Σ).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocReport {
    /// Position of the document in the submitted batch.
    pub index: usize,
    /// The document's label.
    pub label: String,
    /// Parse failure, if the source is not well-formed for this DTD.
    pub parse_error: Option<String>,
    /// Rendered `T ⊨ D` violations.
    pub validation_errors: Vec<String>,
    /// `T ⊨ Σ` violations, with structured witnesses (render with
    /// `Display`, or consume the witness nodes/values directly — the CLI's
    /// `--format json` does the latter).
    pub violations: Vec<Violation>,
}

impl DocReport {
    /// `true` iff the document parsed, validates and satisfies Σ.
    pub fn is_clean(&self) -> bool {
        self.parse_error.is_none()
            && self.validation_errors.is_empty()
            && self.violations.is_empty()
    }
}

/// The aggregate of a batch run, ordered by input index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchReport {
    reports: Vec<DocReport>,
}

impl BatchReport {
    /// Assembles a report from already-ordered per-document reports (used
    /// by [`crate::CorpusSession::report`] to materialize snapshots).
    pub(crate) fn from_reports(reports: Vec<DocReport>) -> BatchReport {
        BatchReport { reports }
    }

    /// Per-document reports, ordered by input index.
    pub fn reports(&self) -> &[DocReport] {
        &self.reports
    }

    /// Number of documents in the batch.
    pub fn total(&self) -> usize {
        self.reports.len()
    }

    /// Number of clean documents.
    pub fn clean_count(&self) -> usize {
        self.reports.iter().filter(|r| r.is_clean()).count()
    }

    /// Deterministic plain-text rendering (identical across thread counts).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.reports {
            if r.is_clean() {
                out.push_str(&format!("[{}] {}: ok\n", r.index, r.label));
                continue;
            }
            out.push_str(&format!("[{}] {}:\n", r.index, r.label));
            if let Some(err) = &r.parse_error {
                out.push_str(&format!("    parse error: {err}\n"));
            }
            for e in &r.validation_errors {
                out.push_str(&format!("    invalid: {e}\n"));
            }
            for v in &r.violations {
                out.push_str(&format!("    violation: {v}\n"));
            }
        }
        out.push_str(&format!(
            "{}/{} documents clean\n",
            self.clean_count(),
            self.total()
        ));
        out
    }
}

/// A fixed-size worker pool for batch validation.
#[derive(Debug, Clone)]
pub struct BatchEngine {
    threads: usize,
}

impl Default for BatchEngine {
    fn default() -> Self {
        let threads = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        BatchEngine::new(threads)
    }
}

impl BatchEngine {
    /// A pool of `threads` workers (minimum 1; 1 means fully sequential).
    pub fn new(threads: usize) -> BatchEngine {
        BatchEngine {
            threads: threads.max(1),
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The worker count actually used: on a single hardware thread the pool
    /// is pure overhead (timeslicing costs ~30% with no parallelism to win),
    /// so `--threads N` degrades to the sequential path and is never a
    /// pessimization.
    pub fn effective_threads(&self) -> usize {
        // Degrade only when the hardware is *known* to be single-threaded;
        // if parallelism cannot be queried, honor the configured width
        // rather than silently discarding an explicit `--threads N`.
        match thread::available_parallelism() {
            Ok(n) if n.get() == 1 => 1,
            _ => self.threads,
        }
    }

    /// Validates already-parsed trees against the spec: `T ⊨ D` with the
    /// precompiled automata, `T ⊨ Σ` through a single-pass
    /// [`xic_constraints::DocIndex`] — the cold half of
    /// [`BatchEngine::validate_batch`] without the parse.  Runs
    /// sequentially (resident trees have no parse cost to amortize over
    /// workers) and reports in input order, so it doubles as the
    /// witness-exact rebuild oracle the corpus-session differential tests
    /// compare against: node ids come from the trees themselves, not from a
    /// reparse that would renumber them.
    pub fn validate_trees(&self, spec: &CompiledSpec, docs: &[(&str, &XmlTree)]) -> BatchReport {
        let validator = spec.validator();
        let reports = docs
            .iter()
            .enumerate()
            .map(|(index, (label, tree))| DocReport {
                index,
                label: (*label).to_string(),
                parse_error: None,
                validation_errors: validator
                    .validate(tree)
                    .iter()
                    .map(|e| e.to_string())
                    .collect(),
                violations: spec.check_document(tree),
            })
            .collect();
        BatchReport { reports }
    }

    /// Validates every document against the spec: parse (interning values),
    /// `T ⊨ D` with the precompiled automata, `T ⊨ Σ` through a single-pass
    /// [`xic_constraints::DocIndex`].
    ///
    /// One [`ValuePool`] is threaded through each worker's documents (one
    /// pool total on the sequential path), so values repeated across the
    /// corpus are interned once per worker.
    pub fn validate_batch(&self, spec: &CompiledSpec, docs: &[BatchDoc]) -> BatchReport {
        if self.effective_threads() == 1 || docs.len() <= 1 {
            let mut pool = ValuePool::new();
            let mut reports = Vec::with_capacity(docs.len());
            for (i, d) in docs.iter().enumerate() {
                let (report, recycled) = process_doc(spec, i, d, pool);
                reports.push(report);
                pool = recycled;
            }
            if !docs.is_empty() {
                instruments().2.record(docs.len() as u64);
            }
            return BatchReport { reports };
        }

        let (job_tx, job_rx) = mpsc::channel::<(usize, &BatchDoc)>();
        let (result_tx, result_rx) = mpsc::channel::<DocReport>();
        for job in docs.iter().enumerate() {
            job_tx.send(job).expect("job channel open");
        }
        drop(job_tx);
        let job_rx = Mutex::new(job_rx);

        let mut reports: Vec<Option<DocReport>> = vec![None; docs.len()];
        thread::scope(|scope| {
            for _ in 0..self.threads.min(docs.len()) {
                let job_rx = &job_rx;
                let result_tx = result_tx.clone();
                scope.spawn(move || {
                    let mut pool = ValuePool::new();
                    let mut processed: u64 = 0;
                    loop {
                        // Hold the receiver lock only for the pop, not the work.
                        let job = job_rx.lock().expect("job receiver poisoned").try_recv();
                        match job {
                            Ok((index, doc)) => {
                                let (report, recycled) = process_doc(spec, index, doc, pool);
                                pool = recycled;
                                processed += 1;
                                if result_tx.send(report).is_err() {
                                    break;
                                }
                            }
                            Err(_) => break,
                        }
                    }
                    if processed > 0 {
                        instruments().2.record(processed);
                    }
                });
            }
            drop(result_tx);
            for report in result_rx {
                let slot = report.index;
                reports[slot] = Some(report);
            }
        });

        let reports = reports
            .into_iter()
            .map(|r| r.expect("every submitted document produced a report"))
            .collect();
        BatchReport { reports }
    }
}

/// The per-document pipeline shared by the sequential and parallel paths.
/// Takes and returns the caller's [`ValuePool`] so the interner stays warm
/// across documents.
fn process_doc(
    spec: &CompiledSpec,
    index: usize,
    doc: &BatchDoc,
    pool: ValuePool,
) -> (DocReport, ValuePool) {
    let (docs, doc_ns, _) = instruments();
    let timer = xic_telemetry::global().start_timer();
    let result = process_doc_uninstrumented(spec, index, doc, pool);
    docs.inc();
    if let Some(start) = timer {
        doc_ns.record_elapsed(start);
    }
    result
}

fn process_doc_uninstrumented(
    spec: &CompiledSpec,
    index: usize,
    doc: &BatchDoc,
    pool: ValuePool,
) -> (DocReport, ValuePool) {
    let label = doc.label.clone();
    let tree = match spec.parse_document_pooled(&doc.content, pool) {
        Ok(tree) => tree,
        Err((err, pool)) => {
            return (
                DocReport {
                    index,
                    label,
                    parse_error: Some(err.to_string()),
                    validation_errors: Vec::new(),
                    violations: Vec::new(),
                },
                pool,
            )
        }
    };
    let validation_errors = spec
        .validator()
        .validate(&tree)
        .iter()
        .map(|e| e.to_string())
        .collect();
    let violations = spec.check_document(&tree);
    (
        DocReport {
            index,
            label,
            parse_error: None,
            validation_errors,
            violations,
        },
        tree.into_pool(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CompiledSpec;

    fn school_spec() -> CompiledSpec {
        CompiledSpec::from_sources(
            "<!ELEMENT school (teacher*)>\n\
             <!ELEMENT teacher EMPTY>\n\
             <!ATTLIST teacher name CDATA #REQUIRED>",
            Some("school"),
            "teacher.name -> teacher",
        )
        .unwrap()
    }

    fn docs() -> Vec<BatchDoc> {
        vec![
            BatchDoc::new("ok", "<school><teacher name=\"Joe\"/></school>"),
            BatchDoc::new(
                "dup-key",
                "<school><teacher name=\"Joe\"/><teacher name=\"Joe\"/></school>",
            ),
            BatchDoc::new("broken", "<school><teacher name=\"Joe\"/>"),
            BatchDoc::new("wrong-shape", "<school><school></school></school>"),
        ]
    }

    #[test]
    fn sequential_reports_are_ordered_and_classified() {
        let spec = school_spec();
        let report = BatchEngine::new(1).validate_batch(&spec, &docs());
        assert_eq!(report.total(), 4);
        assert!(report.reports()[0].is_clean());
        assert!(!report.reports()[1].violations.is_empty());
        assert!(report.reports()[2].parse_error.is_some());
        assert!(!report.reports()[3].is_clean());
        assert_eq!(report.clean_count(), 1);
        let indices: Vec<usize> = report.reports().iter().map(|r| r.index).collect();
        assert_eq!(indices, vec![0, 1, 2, 3]);
    }

    #[test]
    fn parallel_report_is_byte_identical_to_sequential() {
        let spec = school_spec();
        let docs = docs();
        let sequential = BatchEngine::new(1).validate_batch(&spec, &docs);
        for threads in [2, 4, 8] {
            let parallel = BatchEngine::new(threads).validate_batch(&spec, &docs);
            assert_eq!(parallel, sequential);
            assert_eq!(parallel.render(), sequential.render());
        }
    }

    #[test]
    fn single_core_degrades_to_sequential_and_verdicts_match() {
        let spec = school_spec();
        let docs = docs();
        let engine = BatchEngine::new(8);
        let hardware = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        // On one hardware thread the pool is skipped entirely; otherwise the
        // requested width is honored.  Either way `threads()` reports the
        // configured value.
        assert_eq!(engine.threads(), 8);
        if hardware == 1 {
            assert_eq!(engine.effective_threads(), 1);
        } else {
            assert_eq!(engine.effective_threads(), 8);
        }
        // The verdict reports are identical whichever path runs.
        let sequential = BatchEngine::new(1).validate_batch(&spec, &docs);
        let scheduled = engine.validate_batch(&spec, &docs);
        assert_eq!(scheduled, sequential);
        assert_eq!(scheduled.render(), sequential.render());
    }

    #[test]
    fn validate_trees_is_the_parse_free_half_of_validate_batch() {
        let spec = school_spec();
        // The parseable documents of the standard batch, pre-parsed.
        let sources = [
            ("ok", "<school><teacher name=\"Joe\"/></school>"),
            (
                "dup-key",
                "<school><teacher name=\"Joe\"/><teacher name=\"Joe\"/></school>",
            ),
        ];
        let trees: Vec<(&str, xic_xml::XmlTree)> = sources
            .iter()
            .map(|(label, src)| (*label, spec.parse_document(src).unwrap()))
            .collect();
        let borrowed: Vec<(&str, &XmlTree)> =
            trees.iter().map(|(label, tree)| (*label, tree)).collect();
        let from_trees = BatchEngine::new(1).validate_trees(&spec, &borrowed);
        let from_sources = BatchEngine::new(1).validate_batch(
            &spec,
            &sources.map(|(label, src)| BatchDoc::new(label, src)),
        );
        assert_eq!(from_trees, from_sources);
    }

    #[test]
    fn empty_batch_is_fine() {
        let spec = school_spec();
        let report = BatchEngine::new(4).validate_batch(&spec, &[]);
        assert_eq!(report.total(), 0);
        assert_eq!(report.render(), "0/0 documents clean\n");
    }
}
