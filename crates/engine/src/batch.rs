//! Parallel batch validation of documents against one compiled spec.
//!
//! A `std::thread` worker pool pulls `(index, document)` jobs from a shared
//! channel, validates each document against the spec's precompiled automata
//! and satisfaction plan, and sends `(index, report)` results back.  Reports
//! are re-assembled **by input index**, so the aggregate report — including
//! its rendered form — is byte-identical whatever the thread count or
//! completion order.
//!
//! **Fault containment.**  Per-document work runs under
//! [`std::panic::catch_unwind`]: a document whose validation panics is
//! quarantined as a [`DocFault::Panic`] report while every other document
//! still validates normally — one poisoned input can no longer take down
//! the batch (the job-channel mutex is recovered from poisoning, and no
//! slot is ever `unwrap`ed).  Documents turned away by [`crate::Limits`]
//! (parse budget, batch deadline) come back as [`DocFault::Resource`]
//! reports; both kinds are distinguished from ordinary violations in
//! [`BatchReport`] so callers can map them to distinct exit codes.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::thread;
use std::time::Instant;

use xic_constraints::Violation;
use xic_telemetry::{Counter, Histogram};
use xic_xml::budget::ParseError;
use xic_xml::{ValuePool, XmlTree};

use crate::limits::{LimitKind, Limits, ResourceError};
use crate::spec::CompiledSpec;

/// Global-registry batch instruments, resolved once: per-document pipeline
/// latency (`batch.doc_ns`), total documents processed (`batch.docs`), and
/// per-worker throughput (`batch.worker_docs` — one sample per worker per
/// batch, so its quantiles show how evenly the job channel spread the load).
fn instruments() -> &'static (Arc<Counter>, Arc<Histogram>, Arc<Histogram>) {
    static INSTRUMENTS: OnceLock<(Arc<Counter>, Arc<Histogram>, Arc<Histogram>)> = OnceLock::new();
    INSTRUMENTS.get_or_init(|| {
        let registry = xic_telemetry::global();
        (
            registry.counter("batch.docs"),
            registry.histogram("batch.doc_ns"),
            registry.histogram("batch.worker_docs"),
        )
    })
}

/// Resilience instruments (global registry), resolved once: contained
/// panics and batches degraded by at least one of them.
pub(crate) fn resilience_instruments() -> &'static (Arc<Counter>, Arc<Counter>) {
    static INSTRUMENTS: OnceLock<(Arc<Counter>, Arc<Counter>)> = OnceLock::new();
    INSTRUMENTS.get_or_init(|| {
        let registry = xic_telemetry::global();
        (
            registry.counter("resilience.panics_contained"),
            registry.counter("resilience.degraded_batches"),
        )
    })
}

/// Renders a `catch_unwind` payload: panics raised with a string message
/// keep it, anything else is labeled opaquely.
pub(crate) fn panic_cause(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One document submitted to a batch: a label (typically its path) and its
/// XML source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchDoc {
    /// Display label used in reports.
    pub label: String,
    /// XML source text.
    pub content: String,
}

impl BatchDoc {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, content: impl Into<String>) -> BatchDoc {
        BatchDoc {
            label: label.into(),
            content: content.into(),
        }
    }
}

/// Why a document produced no verdict: its work was quarantined or turned
/// away, as opposed to it being checked and found violating.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DocFault {
    /// Validation panicked; the panic was contained and the document
    /// quarantined.  Other documents of the batch are unaffected.
    Panic {
        /// The panic message (or an opaque label for non-string payloads).
        cause: String,
    },
    /// A [`Limits`] bound rejected the document before (or instead of)
    /// validating it — shed load and retry.
    Resource {
        /// The rendered [`ResourceError`], naming the violated limit.
        cause: String,
    },
}

impl DocFault {
    /// The underlying cause text.
    pub fn cause(&self) -> &str {
        match self {
            DocFault::Panic { cause } | DocFault::Resource { cause } => cause,
        }
    }

    /// Stable one-word classification: `"panic"` or `"resource"`.
    pub fn kind(&self) -> &'static str {
        match self {
            DocFault::Panic { .. } => "panic",
            DocFault::Resource { .. } => "resource",
        }
    }
}

/// Everything found wrong with one document (empty vectors, no parse error
/// and no fault mean the document conforms to the DTD and satisfies Σ).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocReport {
    /// Position of the document in the submitted batch.
    pub index: usize,
    /// The document's label.
    pub label: String,
    /// Parse failure, if the source is not well-formed for this DTD.
    pub parse_error: Option<String>,
    /// Rendered `T ⊨ D` violations.
    pub validation_errors: Vec<String>,
    /// `T ⊨ Σ` violations, with structured witnesses (render with
    /// `Display`, or consume the witness nodes/values directly — the CLI's
    /// `--format json` does the latter).
    pub violations: Vec<Violation>,
    /// Set when the document has **no verdict**: its validation panicked
    /// and was contained, or a resource limit turned it away.  Mutually
    /// exclusive with the verdict fields above.
    pub fault: Option<DocFault>,
}

impl DocReport {
    /// A verdict-less report for a quarantined or rejected document.
    pub fn faulted(index: usize, label: impl Into<String>, fault: DocFault) -> DocReport {
        DocReport {
            index,
            label: label.into(),
            parse_error: None,
            validation_errors: Vec::new(),
            violations: Vec::new(),
            fault: Some(fault),
        }
    }

    /// `true` iff the document parsed, validates and satisfies Σ.
    pub fn is_clean(&self) -> bool {
        self.parse_error.is_none()
            && self.validation_errors.is_empty()
            && self.violations.is_empty()
            && self.fault.is_none()
    }

    /// `true` iff the document was quarantined by a contained panic.
    pub fn is_panicked(&self) -> bool {
        matches!(self.fault, Some(DocFault::Panic { .. }))
    }

    /// `true` iff the document was turned away by a resource limit.
    pub fn is_resource_rejected(&self) -> bool {
        matches!(self.fault, Some(DocFault::Resource { .. }))
    }
}

/// The aggregate of a batch run, ordered by input index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchReport {
    reports: Vec<DocReport>,
}

impl BatchReport {
    /// Assembles a report from already-ordered per-document reports (used
    /// by [`crate::CorpusSession::report`] to materialize snapshots).
    pub(crate) fn from_reports(reports: Vec<DocReport>) -> BatchReport {
        BatchReport { reports }
    }

    /// Per-document reports, ordered by input index.
    pub fn reports(&self) -> &[DocReport] {
        &self.reports
    }

    /// Number of documents in the batch.
    pub fn total(&self) -> usize {
        self.reports.len()
    }

    /// Number of clean documents.
    pub fn clean_count(&self) -> usize {
        self.reports.iter().filter(|r| r.is_clean()).count()
    }

    /// Number of documents quarantined by a contained panic.
    pub fn panicked_count(&self) -> usize {
        self.reports.iter().filter(|r| r.is_panicked()).count()
    }

    /// Number of documents turned away by a resource limit.
    pub fn resource_rejected_count(&self) -> usize {
        self.reports
            .iter()
            .filter(|r| r.is_resource_rejected())
            .count()
    }

    /// Deterministic plain-text rendering (identical across thread counts).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.reports {
            if r.is_clean() {
                out.push_str(&format!("[{}] {}: ok\n", r.index, r.label));
                continue;
            }
            out.push_str(&format!("[{}] {}:\n", r.index, r.label));
            if let Some(fault) = &r.fault {
                match fault {
                    DocFault::Panic { cause } => {
                        out.push_str(&format!("    faulted: {cause}\n"));
                    }
                    DocFault::Resource { cause } => {
                        out.push_str(&format!("    resource-rejected: {cause}\n"));
                    }
                }
            }
            if let Some(err) = &r.parse_error {
                out.push_str(&format!("    parse error: {err}\n"));
            }
            for e in &r.validation_errors {
                out.push_str(&format!("    invalid: {e}\n"));
            }
            for v in &r.violations {
                out.push_str(&format!("    violation: {v}\n"));
            }
        }
        out.push_str(&format!(
            "{}/{} documents clean\n",
            self.clean_count(),
            self.total()
        ));
        out
    }
}

/// A fixed-size worker pool for batch validation.
#[derive(Debug, Clone)]
pub struct BatchEngine {
    threads: usize,
    /// Whether `threads` was an explicit caller request (as opposed to the
    /// default width derived from the hardware).  Only derived widths are
    /// allowed to degrade on single-threaded hosts — an explicit
    /// `--threads N` is honored as configured.
    explicit: bool,
    limits: Limits,
}

impl Default for BatchEngine {
    fn default() -> Self {
        let threads = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        BatchEngine {
            threads: threads.max(1),
            explicit: false,
            limits: Limits::UNLIMITED,
        }
    }
}

impl BatchEngine {
    /// A pool of `threads` workers (minimum 1; 1 means fully sequential),
    /// with no resource limits.
    pub fn new(threads: usize) -> BatchEngine {
        BatchEngine::with_limits(threads, Limits::UNLIMITED)
    }

    /// A pool that enforces `limits`: per-document parse budgets reject
    /// oversized documents as [`DocFault::Resource`] reports, and
    /// [`Limits::deadline`] stops starting new documents once the batch has
    /// run past it (documents already finished keep their verdicts).
    pub fn with_limits(threads: usize, limits: Limits) -> BatchEngine {
        BatchEngine {
            threads: threads.max(1),
            explicit: true,
            limits,
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured resource limits ([`Limits::UNLIMITED`] by default).
    pub fn limits(&self) -> &Limits {
        &self.limits
    }

    /// The worker count actually used.  A *default* width on a single
    /// hardware thread degrades to the sequential path (the pool is pure
    /// overhead there — timeslicing costs ~30% with no parallelism to win),
    /// but an explicit [`BatchEngine::new`] / `--threads N` request is
    /// honored exactly as configured: the caller who asked for a width gets
    /// that width, single-core host or not.
    pub fn effective_threads(&self) -> usize {
        if self.explicit {
            return self.threads;
        }
        match thread::available_parallelism() {
            Ok(n) if n.get() == 1 => 1,
            _ => self.threads,
        }
    }

    /// Validates already-parsed trees against the spec: `T ⊨ D` with the
    /// precompiled automata, `T ⊨ Σ` through a single-pass
    /// [`xic_constraints::DocIndex`] — the cold half of
    /// [`BatchEngine::validate_batch`] without the parse.  Runs
    /// sequentially (resident trees have no parse cost to amortize over
    /// workers) and reports in input order, so it doubles as the
    /// witness-exact rebuild oracle the corpus-session differential tests
    /// compare against: node ids come from the trees themselves, not from a
    /// reparse that would renumber them.
    pub fn validate_trees(&self, spec: &CompiledSpec, docs: &[(&str, &XmlTree)]) -> BatchReport {
        let validator = spec.validator();
        let reports = docs
            .iter()
            .enumerate()
            .map(|(index, (label, tree))| DocReport {
                index,
                label: (*label).to_string(),
                parse_error: None,
                validation_errors: validator
                    .validate(tree)
                    .iter()
                    .map(|e| e.to_string())
                    .collect(),
                violations: spec.check_document(tree),
                fault: None,
            })
            .collect();
        BatchReport { reports }
    }

    /// Validates every document against the spec: parse (interning values),
    /// `T ⊨ D` with the precompiled automata, `T ⊨ Σ` through a single-pass
    /// [`xic_constraints::DocIndex`].
    ///
    /// One [`ValuePool`] is threaded through each worker's documents (one
    /// pool total on the sequential path), so values repeated across the
    /// corpus are interned once per worker.
    pub fn validate_batch(&self, spec: &CompiledSpec, docs: &[BatchDoc]) -> BatchReport {
        // One clock read per batch; individual documents only compare
        // against it when a deadline is actually configured.
        let started = self.limits.deadline.map(|_| Instant::now());

        let reports = if self.effective_threads() == 1 || docs.len() <= 1 {
            let mut pool = ValuePool::new();
            let mut reports = Vec::with_capacity(docs.len());
            for (i, d) in docs.iter().enumerate() {
                let (report, recycled) = self.process_one(spec, i, d, started, pool);
                reports.push(report);
                pool = recycled;
            }
            if !docs.is_empty() {
                instruments().2.record(docs.len() as u64);
            }
            reports
        } else {
            self.validate_parallel(spec, docs, started)
        };

        if reports.iter().any(DocReport::is_panicked) {
            resilience_instruments().1.inc();
        }
        BatchReport { reports }
    }

    /// The worker-pool path of [`BatchEngine::validate_batch`].
    fn validate_parallel(
        &self,
        spec: &CompiledSpec,
        docs: &[BatchDoc],
        started: Option<Instant>,
    ) -> Vec<DocReport> {
        let (job_tx, job_rx) = mpsc::channel::<(usize, &BatchDoc)>();
        let (result_tx, result_rx) = mpsc::channel::<DocReport>();
        for job in docs.iter().enumerate() {
            job_tx.send(job).expect("job channel open");
        }
        drop(job_tx);
        let job_rx = Mutex::new(job_rx);

        let mut reports: Vec<Option<DocReport>> = vec![None; docs.len()];
        thread::scope(|scope| {
            for _ in 0..self.threads.min(docs.len()) {
                let job_rx = &job_rx;
                let result_tx = result_tx.clone();
                scope.spawn(move || {
                    let mut pool = ValuePool::new();
                    let mut processed: u64 = 0;
                    loop {
                        // Hold the receiver lock only for the pop, not the
                        // work.  Per-document panics are contained below, so
                        // the lock cannot poison while held; recover anyway
                        // rather than propagate — the receiver has no
                        // invariant a panic could have broken.
                        let job = job_rx
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .try_recv();
                        match job {
                            Ok((index, doc)) => {
                                let (report, recycled) =
                                    self.process_one(spec, index, doc, started, pool);
                                pool = recycled;
                                processed += 1;
                                if result_tx.send(report).is_err() {
                                    break;
                                }
                            }
                            Err(_) => break,
                        }
                    }
                    if processed > 0 {
                        instruments().2.record(processed);
                    }
                });
            }
            drop(result_tx);
            for report in result_rx {
                let slot = report.index;
                reports[slot] = Some(report);
            }
        });

        reports
            .into_iter()
            .enumerate()
            .map(|(slot, r)| {
                // Every job produces a report (even contained panics), so
                // an empty slot can only mean a worker died outside the
                // containment envelope.  Quarantine the document instead of
                // unwrapping away the whole batch.
                r.unwrap_or_else(|| {
                    resilience_instruments().0.inc();
                    DocReport::faulted(
                        slot,
                        docs[slot].label.clone(),
                        DocFault::Panic {
                            cause: "worker produced no report".to_string(),
                        },
                    )
                })
            })
            .collect()
    }

    /// One document through limits, containment and the pipeline: deadline
    /// check first (rejected documents are never started), then the
    /// per-document work under `catch_unwind`.
    fn process_one(
        &self,
        spec: &CompiledSpec,
        index: usize,
        doc: &BatchDoc,
        started: Option<Instant>,
        pool: ValuePool,
    ) -> (DocReport, ValuePool) {
        if let (Some(start), Some(deadline)) = (started, self.limits.deadline) {
            // `>=` so a zero deadline deterministically rejects everything.
            let elapsed = start.elapsed();
            if elapsed >= deadline {
                let err = ResourceError::new(
                    LimitKind::Deadline,
                    deadline.as_millis() as u64,
                    elapsed.as_millis() as u64,
                    format!("batch: document `{}` not started", doc.label),
                );
                return (
                    DocReport::faulted(
                        index,
                        doc.label.clone(),
                        DocFault::Resource {
                            cause: err.to_string(),
                        },
                    ),
                    pool,
                );
            }
        }
        match catch_unwind(AssertUnwindSafe(|| {
            if xic_telemetry::faults::hit("batch.doc") {
                panic!("injected fault: batch.doc");
            }
            process_doc(spec, index, doc, &self.limits, pool)
        })) {
            Ok(result) => result,
            Err(payload) => {
                resilience_instruments().0.inc();
                (
                    DocReport::faulted(
                        index,
                        doc.label.clone(),
                        DocFault::Panic {
                            cause: panic_cause(payload),
                        },
                    ),
                    // The in-flight pool was consumed by the panicking call;
                    // later documents start from a fresh interner.
                    ValuePool::new(),
                )
            }
        }
    }
}

/// The per-document pipeline shared by the sequential and parallel paths.
/// Takes and returns the caller's [`ValuePool`] so the interner stays warm
/// across documents.
fn process_doc(
    spec: &CompiledSpec,
    index: usize,
    doc: &BatchDoc,
    limits: &Limits,
    pool: ValuePool,
) -> (DocReport, ValuePool) {
    let (docs, doc_ns, _) = instruments();
    let timer = xic_telemetry::global().start_timer();
    let result = process_doc_uninstrumented(spec, index, doc, limits, pool);
    docs.inc();
    if let Some(start) = timer {
        doc_ns.record_elapsed(start);
    }
    result
}

fn process_doc_uninstrumented(
    spec: &CompiledSpec,
    index: usize,
    doc: &BatchDoc,
    limits: &Limits,
    pool: ValuePool,
) -> (DocReport, ValuePool) {
    let label = doc.label.clone();
    let budget = limits.parse_budget();
    let tree = match spec.parse_document_budgeted(&doc.content, pool, &budget) {
        Ok(tree) => tree,
        Err((ParseError::Xml(err), pool)) => {
            return (
                DocReport {
                    index,
                    label,
                    parse_error: Some(err.to_string()),
                    validation_errors: Vec::new(),
                    violations: Vec::new(),
                    fault: None,
                },
                pool,
            )
        }
        Err((ParseError::Budget(b), pool)) => {
            let err = ResourceError::from_budget(b, label.clone());
            return (
                DocReport::faulted(
                    index,
                    label,
                    DocFault::Resource {
                        cause: err.to_string(),
                    },
                ),
                pool,
            );
        }
    };
    let validation_errors = spec
        .validator()
        .validate(&tree)
        .iter()
        .map(|e| e.to_string())
        .collect();
    let violations = spec.check_document(&tree);
    (
        DocReport {
            index,
            label,
            parse_error: None,
            validation_errors,
            violations,
            fault: None,
        },
        tree.into_pool(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CompiledSpec;

    fn school_spec() -> CompiledSpec {
        CompiledSpec::from_sources(
            "<!ELEMENT school (teacher*)>\n\
             <!ELEMENT teacher EMPTY>\n\
             <!ATTLIST teacher name CDATA #REQUIRED>",
            Some("school"),
            "teacher.name -> teacher",
        )
        .unwrap()
    }

    fn docs() -> Vec<BatchDoc> {
        vec![
            BatchDoc::new("ok", "<school><teacher name=\"Joe\"/></school>"),
            BatchDoc::new(
                "dup-key",
                "<school><teacher name=\"Joe\"/><teacher name=\"Joe\"/></school>",
            ),
            BatchDoc::new("broken", "<school><teacher name=\"Joe\"/>"),
            BatchDoc::new("wrong-shape", "<school><school></school></school>"),
        ]
    }

    #[test]
    fn sequential_reports_are_ordered_and_classified() {
        let spec = school_spec();
        let report = BatchEngine::new(1).validate_batch(&spec, &docs());
        assert_eq!(report.total(), 4);
        assert!(report.reports()[0].is_clean());
        assert!(!report.reports()[1].violations.is_empty());
        assert!(report.reports()[2].parse_error.is_some());
        assert!(!report.reports()[3].is_clean());
        assert_eq!(report.clean_count(), 1);
        let indices: Vec<usize> = report.reports().iter().map(|r| r.index).collect();
        assert_eq!(indices, vec![0, 1, 2, 3]);
    }

    #[test]
    fn parallel_report_is_byte_identical_to_sequential() {
        let spec = school_spec();
        let docs = docs();
        let sequential = BatchEngine::new(1).validate_batch(&spec, &docs);
        for threads in [2, 4, 8] {
            let parallel = BatchEngine::new(threads).validate_batch(&spec, &docs);
            assert_eq!(parallel, sequential);
            assert_eq!(parallel.render(), sequential.render());
        }
    }

    #[test]
    fn single_core_degrades_only_the_default_width() {
        let spec = school_spec();
        let docs = docs();
        // An explicit width is honored verbatim — a 1-core host must not
        // silently discard `BatchEngine::new(8)`.
        let engine = BatchEngine::new(8);
        assert_eq!(engine.threads(), 8);
        assert_eq!(engine.effective_threads(), 8);
        // Only the hardware-derived default degrades to sequential when the
        // host is known to be single-threaded.
        let derived = BatchEngine::default();
        let hardware = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if hardware == 1 {
            assert_eq!(derived.effective_threads(), 1);
        } else {
            assert_eq!(derived.effective_threads(), derived.threads());
        }
        // The verdict reports are identical whichever path runs.
        let sequential = BatchEngine::new(1).validate_batch(&spec, &docs);
        let scheduled = engine.validate_batch(&spec, &docs);
        assert_eq!(scheduled, sequential);
        assert_eq!(scheduled.render(), sequential.render());
    }

    #[test]
    fn validate_trees_is_the_parse_free_half_of_validate_batch() {
        let spec = school_spec();
        // The parseable documents of the standard batch, pre-parsed.
        let sources = [
            ("ok", "<school><teacher name=\"Joe\"/></school>"),
            (
                "dup-key",
                "<school><teacher name=\"Joe\"/><teacher name=\"Joe\"/></school>",
            ),
        ];
        let trees: Vec<(&str, xic_xml::XmlTree)> = sources
            .iter()
            .map(|(label, src)| (*label, spec.parse_document(src).unwrap()))
            .collect();
        let borrowed: Vec<(&str, &XmlTree)> =
            trees.iter().map(|(label, tree)| (*label, tree)).collect();
        let from_trees = BatchEngine::new(1).validate_trees(&spec, &borrowed);
        let from_sources = BatchEngine::new(1).validate_batch(
            &spec,
            &sources.map(|(label, src)| BatchDoc::new(label, src)),
        );
        assert_eq!(from_trees, from_sources);
    }

    #[test]
    fn empty_batch_is_fine() {
        let spec = school_spec();
        let report = BatchEngine::new(4).validate_batch(&spec, &[]);
        assert_eq!(report.total(), 0);
        assert_eq!(report.render(), "0/0 documents clean\n");
    }

    #[test]
    fn node_limit_rejects_as_resource_fault_not_parse_error() {
        let spec = school_spec();
        let engine = BatchEngine::with_limits(
            1,
            crate::Limits {
                max_doc_nodes: Some(1),
                ..crate::Limits::UNLIMITED
            },
        );
        let report = engine.validate_batch(&spec, &docs());
        // Every document of the standard batch grows past one node mid-parse
        // (`broken`'s budget trips before its syntax error is even reached) —
        // all are rejected, none panic, verdicts are never wrong.
        for r in report.reports() {
            assert!(r.is_resource_rejected(), "{:?}", r);
            assert!(r.fault.as_ref().unwrap().cause().contains("max_doc_nodes"));
            assert!(r.parse_error.is_none());
        }
        assert_eq!(report.resource_rejected_count(), report.total());
        assert_eq!(report.panicked_count(), 0);
        let rendered = report.render();
        assert!(rendered.contains("resource-rejected"), "{rendered}");
    }

    #[test]
    fn deadline_zero_rejects_every_document_unstarted() {
        let spec = school_spec();
        let engine = BatchEngine::with_limits(
            1,
            crate::Limits {
                deadline: Some(std::time::Duration::ZERO),
                ..crate::Limits::UNLIMITED
            },
        );
        let report = engine.validate_batch(&spec, &docs());
        assert_eq!(report.resource_rejected_count(), report.total());
        for r in report.reports() {
            assert!(r.fault.as_ref().unwrap().cause().contains("deadline_ms"));
        }
    }

    #[test]
    fn faulted_reports_render_distinctly_and_are_not_clean() {
        let report = DocReport::faulted(
            3,
            "poisoned-doc",
            DocFault::Panic {
                cause: "index out of bounds".to_string(),
            },
        );
        assert!(!report.is_clean());
        assert!(report.is_panicked());
        assert!(!report.is_resource_rejected());
        assert_eq!(report.fault.as_ref().unwrap().kind(), "panic");
        let batch = BatchReport::from_reports(vec![report]);
        assert!(batch.render().contains("faulted: index out of bounds"));
        assert_eq!(batch.panicked_count(), 1);
    }
}
