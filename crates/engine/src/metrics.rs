//! Engine-wide metrics snapshots — the `--metrics` / `xic stats` surface.
//!
//! The engine's components record into [`MetricsRegistry`] instruments as
//! they run (see the instrument inventory on [`register_baseline`]).  This
//! module is the read side: [`EngineMetrics::capture`] freezes a registry
//! into a plain-data snapshot that renders as text here and as JSON in the
//! CLI (`crates/cli/src/json.rs` owns the writer — this crate stays
//! serializer-free).

use std::sync::Arc;

use xic_telemetry::{MetricsRegistry, RegistrySnapshot};

/// Every aggregate instrument the engine records, registered up front.
///
/// Instruments normally spring into existence on first use, which is right
/// for per-spec breakdowns but wrong for a metrics *report*: a `--metrics`
/// block from a run that never touched the verdict cache should still show
/// `cache.hits 0`, not omit the cache section.  Calling this once against a
/// registry pins the canonical engine instruments at zero so every snapshot
/// covers the full inventory.
pub fn register_baseline(registry: &MetricsRegistry) {
    for counter in [
        "batch.docs",
        "cache.evictions",
        "cache.hits",
        "cache.inserts",
        "cache.misses",
        "compile.specs",
        "corpus.commits",
        "corpus.edits",
        "corpus.violations_added",
        "corpus.violations_removed",
        "incremental.builds",
        "incremental.constraints_rechecked",
        "index.builds",
        "journal.bytes_written",
        "journal.crc_failures",
        "journal.records_appended",
        "journal.records_read",
        "journal.torn_repairs",
        "parse.docs",
        "resilience.degraded_batches",
        "resilience.faults_injected",
        "resilience.io_retries",
        "resilience.panics_contained",
        "resilience.rejections",
        "session.edits",
        "shard.deltas",
        "shard.rechecked",
        "shard.skipped",
    ] {
        registry.counter(counter);
    }
    for gauge in [
        "cache.entries",
        "corpus.dirty_docs",
        "corpus.open_docs",
        "corpus.queued_ops",
        "shard.plan_shards",
    ] {
        registry.gauge(gauge);
    }
    for histogram in [
        "batch.doc_ns",
        "batch.worker_docs",
        "cache.insert_ns",
        "corpus.apply_ns",
        "corpus.commit_ns",
        "corpus.delta_changes",
        "corpus.recheck_ns",
        "incremental.build_ns",
        "index.build_ns",
        "journal.persist_ns",
        "parse.doc_ns",
        "session.apply_ns",
        "session.check_ns",
        "shard.touched",
    ] {
        registry.histogram(histogram);
    }
}

/// A frozen, plain-data view of an engine registry: every counter, gauge
/// and histogram summary, sorted by name.  Constructed by
/// [`EngineMetrics::capture`]; rendered as text here or as JSON by the CLI.
#[derive(Debug, Clone)]
pub struct EngineMetrics {
    /// The instrument snapshot.
    pub snapshot: RegistrySnapshot,
}

impl EngineMetrics {
    /// Captures a snapshot of `registry`, baseline-registering the engine's
    /// canonical instruments first so the report always covers the full
    /// inventory (see [`register_baseline`]).
    pub fn capture(registry: &MetricsRegistry) -> EngineMetrics {
        register_baseline(registry);
        EngineMetrics {
            snapshot: registry.snapshot(),
        }
    }

    /// Captures the process-global registry — the one default-constructed
    /// sessions, corpora and the deep layers (parser, indexes, journal)
    /// record into.
    pub fn capture_global() -> EngineMetrics {
        EngineMetrics::capture(xic_telemetry::global())
    }

    /// The registry most engine components share by default.
    pub fn global_registry() -> &'static Arc<MetricsRegistry> {
        xic_telemetry::global()
    }

    /// Pretty-prints the snapshot as aligned text (the `xic stats` body).
    pub fn render_text(&self) -> String {
        self.snapshot.render_text()
    }
}

#[cfg(all(test, not(feature = "telemetry-off")))]
mod tests {
    use super::*;

    #[test]
    fn baseline_makes_snapshots_total() {
        let registry = MetricsRegistry::new();
        let metrics = EngineMetrics::capture(&registry);
        for name in [
            "cache.hits",
            "journal.bytes_written",
            "corpus.commits",
            "resilience.rejections",
            "resilience.panics_contained",
            "shard.rechecked",
            "shard.skipped",
        ] {
            assert_eq!(metrics.snapshot.counter(name), Some(0), "{name}");
        }
        for name in [
            "corpus.dirty_docs",
            "corpus.queued_ops",
            "shard.plan_shards",
        ] {
            assert_eq!(metrics.snapshot.gauge(name), Some(0), "{name}");
        }
        let commit = metrics.snapshot.histogram("corpus.commit_ns").unwrap();
        assert_eq!(commit.count, 0);
        // Sorted by name, so the text render is stable.
        let names: Vec<&str> = metrics
            .snapshot
            .counters
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        assert!(metrics.render_text().contains("cache.hits"));
    }
}
