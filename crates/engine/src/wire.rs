//! The validation-service wire protocol: length-framed journal records
//! over a byte stream.
//!
//! `xic serve` and its clients speak the PR 5 journal format on the wire:
//! every message is one record framed exactly like an on-disk journal
//! record — `len:u32 | seq:u64 | tag:u8 | payload | crc32:u32`, little
//! endian, CRC over `seq + tag + payload` — so the delta stream a server
//! ships down is byte-for-byte the record a [`crate::journal`] delta log
//! holds, and a stock [`crate::CorpusReplica`] consumes it unchanged.
//! Requests and responses extend the tag space above the journal's own
//! tags (which stay reserved), and a versioned hello carries the journal
//! format version plus the content-hash [`SpecId`] so a client and server
//! can negotiate "you already have this spec" before any document moves.
//!
//! Reading is torn-tail-tolerant in the journal tradition: a connection
//! that dies **between** frames is a clean end of stream
//! ([`read_frame`] returns `None`), a connection that dies **inside** a
//! frame surfaces as [`WireError::Torn`] and the half-received record is
//! never decoded — the receiving side's state is always "every fully
//! framed record, nothing more".

use std::fmt;
use std::io::{self, Read, Write};

use xic_telemetry::{CounterSnapshot, GaugeSnapshot, HistogramSnapshot, RegistrySnapshot};
use xic_xml::EditOp;

use crate::corpus::BatchDelta;
use crate::journal::{
    crc32, dec_delta, dec_op, enc_delta, enc_op, frame_record, Dec, Enc, FORMAT_VERSION, MAGIC,
    TAG_DELTA,
};
use crate::spec::SpecId;

/// Version of the request/response vocabulary layered over the journal
/// framing.  Negotiated (alongside [`FORMAT_VERSION`]) in the hello.
/// Version 2 added the optional shard filter to [`Request::Sync`].
pub const WIRE_VERSION: u16 = 2;

/// Upper bound on a single frame's payload, enforced before allocation on
/// the read side (a hostile or corrupt length prefix must not OOM the
/// server).  Document sources and delta payloads are bounded well below
/// this by [`crate::Limits`] admission.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

// Request tags (client → server).  The journal's own record tags (1–3)
// stay reserved so a delta record is unambiguous in either direction.
const REQ_HELLO: u8 = 0x10;
const REQ_OPEN: u8 = 0x11;
const REQ_APPLY: u8 = 0x12;
const REQ_COMMIT: u8 = 0x13;
const REQ_SYNC: u8 = 0x14;
const REQ_CLOSE: u8 = 0x15;
const REQ_STATS: u8 = 0x16;
const REQ_SHUTDOWN: u8 = 0x17;

// Response tags (server → client).  A delta response reuses the journal's
// `TAG_DELTA` with the identical payload encoding.
const RESP_HELLO: u8 = 0x20;
const RESP_OPENED: u8 = 0x21;
const RESP_APPLIED: u8 = 0x22;
const RESP_DELTA_END: u8 = 0x23;
const RESP_CLOSED: u8 = 0x24;
const RESP_STATS: u8 = 0x25;
const RESP_SHUTTING_DOWN: u8 = 0x26;
const RESP_ERROR: u8 = 0x2F;

/// Everything that can go wrong while reading or decoding wire frames.
#[derive(Debug)]
pub enum WireError {
    /// The underlying stream failed.
    Io(io::Error),
    /// A read timed out before a frame began (the idle-poll tick of a
    /// server worker; not an error for the connection).
    Idle,
    /// The connection ended in the middle of a frame: the partial record
    /// was discarded, state is the last fully framed record.
    Torn,
    /// A length prefix exceeded [`MAX_FRAME_BYTES`].
    TooLarge {
        /// The claimed payload length.
        len: usize,
    },
    /// A frame's CRC did not match its contents.
    Corrupt {
        /// The sequence number carried by the damaged frame.
        seq: u64,
    },
    /// A frame decoded structurally but its payload was malformed.
    Malformed {
        /// The frame tag.
        tag: u8,
        /// What was wrong.
        detail: String,
    },
    /// A frame carried a tag this side does not understand.
    UnknownTag {
        /// The unknown tag byte.
        tag: u8,
    },
    /// A request frame's sequence number did not advance past the previous
    /// one on the same connection.  Request streams are strictly
    /// monotonic; a replayed or rewound `seq` is a protocol fault, never
    /// silently accepted.  (Response streams are exempt: delta frames
    /// carry their commit's own sequence number by design.)
    NonMonotonicSeq {
        /// The offending frame's sequence number.
        seq: u64,
        /// The highest sequence number seen before it.
        last: u64,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire I/O error: {e}"),
            WireError::Idle => write!(f, "idle (no frame began before the read timeout)"),
            WireError::Torn => write!(f, "connection ended mid-frame (partial record discarded)"),
            WireError::TooLarge { len } => write!(
                f,
                "frame payload of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte bound"
            ),
            WireError::Corrupt { seq } => write!(f, "frame {seq} failed its CRC check"),
            WireError::Malformed { tag, detail } => {
                write!(f, "malformed frame (tag {tag:#04x}): {detail}")
            }
            WireError::UnknownTag { tag } => write!(f, "unknown frame tag {tag:#04x}"),
            WireError::NonMonotonicSeq { seq, last } => write!(
                f,
                "request sequence {seq} does not advance past {last} (request streams are strictly monotonic)"
            ),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// A structured error record: the server's resilience taxonomy on the
/// wire.  Resource rejections and contained faults are *answers*, not
/// dropped connections — the `code` mirrors the CLI exit-code taxonomy
/// (`2` protocol/document, `3` resource-rejected, `4` contained fault),
/// `kind` is a stable machine tag (e.g. `resource:max_doc_nodes`,
/// `fault:poisoned`) and `detail` is the human-readable rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFault {
    /// Exit-code-taxonomy class of the failure.
    pub code: u8,
    /// Stable machine-readable tag (`resource:<limit>`, `fault:<cause>`,
    /// `protocol`, `document`, `journal`, `session`, …).
    pub kind: String,
    /// Human-readable detail.
    pub detail: String,
}

impl WireFault {
    /// Builds a fault record.
    pub fn new(code: u8, kind: impl Into<String>, detail: impl Into<String>) -> WireFault {
        WireFault {
            code,
            kind: kind.into(),
            detail: detail.into(),
        }
    }

    /// The CLI exit code this fault maps to.
    pub fn exit_code(&self) -> i32 {
        i32::from(self.code)
    }
}

impl fmt::Display for WireFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.kind, self.detail)
    }
}

/// The hello acknowledgment: the negotiation result a client acts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HelloAck {
    /// The server's journal format version.
    pub format: u16,
    /// The server's wire vocabulary version.
    pub wire: u16,
    /// The server's compiled-spec identity.
    pub spec: SpecId,
    /// Whether the server already has the spec the client announced (the
    /// "you already have this spec" negotiation: when `true` no spec
    /// source ever needs to move).
    pub spec_known: bool,
    /// The named session's last committed sequence number (0 for a fresh
    /// session) — where a reconnecting replica should sync from.
    pub last_seq: u64,
    /// Whether the session is a restarted replica serving reports from a
    /// drained delta log (reads only; edits are rejected with a
    /// structured error).
    pub replica: bool,
}

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// The versioned hello opening every connection: format + wire
    /// versions, the client's spec identity, and the named session to
    /// attach to.
    Hello {
        /// The client's journal format version.
        format: u16,
        /// The client's wire vocabulary version.
        wire: u16,
        /// The client's compiled-spec identity.
        spec: SpecId,
        /// The named corpus session to attach to (created on first use).
        session: String,
    },
    /// Parse `source` against the session's spec and open it as `label`.
    OpenDoc {
        /// The document label (unique within the session).
        label: String,
        /// The XML source text.
        source: String,
    },
    /// Apply an edit batch to one open document.  The whole batch rides
    /// in one frame, so it is applied all-or-nothing: a torn connection
    /// can never leave half a batch behind.
    Apply {
        /// The document handle (as returned by open).
        handle: u64,
        /// The edits, in order.
        ops: Vec<EditOp>,
    },
    /// Commit the session: re-check dirty documents, answer with the new
    /// delta record.
    Commit,
    /// Stream every retained delta with sequence number above `after_seq`
    /// (a replica catching up), terminated by a delta-end record.
    Sync {
        /// The last sequence number the client already holds.
        after_seq: u64,
        /// When set, only deltas tagged with this shard are streamed, each
        /// projected down to the shard's constraints — the subscription a
        /// shard-filtered [`crate::CorpusReplica`] consumes.  Requires the
        /// server to run with sharded sync enabled.
        shard: Option<u32>,
    },
    /// Close one open document.
    CloseDoc {
        /// The document handle.
        handle: u64,
    },
    /// Snapshot the server's metrics registry.
    Stats,
    /// Gracefully drain the server: persist every dirty session's delta
    /// log and stop.
    Shutdown,
}

impl Request {
    /// A hello for the current protocol versions.
    pub fn hello(spec: SpecId, session: impl Into<String>) -> Request {
        Request::Hello {
            format: FORMAT_VERSION,
            wire: WIRE_VERSION,
            spec,
            session: session.into(),
        }
    }
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Hello acknowledgment.
    Hello(HelloAck),
    /// A document was opened.
    Opened {
        /// The handle addressing the document in later requests.
        handle: u64,
    },
    /// An edit batch was admitted (queued for the next commit).
    Applied {
        /// Ops queued in the session since its last commit.
        queued_ops: u64,
    },
    /// One commit's delta — the payload is byte-identical to the
    /// journal's on-disk delta record, consumable by a stock
    /// [`crate::CorpusReplica`].
    Delta(BatchDelta),
    /// End of a delta stream (after a sync).
    DeltaEnd {
        /// Number of delta records that preceded this marker.
        count: u64,
    },
    /// A document was closed.
    Closed {
        /// The closed document's label.
        label: String,
    },
    /// The server's metrics registry, frozen — the same snapshot
    /// `xic stats` renders locally.
    Stats(RegistrySnapshot),
    /// The server accepted a shutdown and is draining.
    ShuttingDown {
        /// Sessions that will be drained.
        sessions: u64,
    },
    /// A structured error record (see [`WireFault`]).
    Error(WireFault),
}

/// One CRC-valid frame as read off the stream.
#[derive(Debug, Clone)]
pub struct Frame {
    /// The sender's sequence number (delta frames carry the commit seq).
    pub seq: u64,
    /// The record tag.
    pub tag: u8,
    /// The record payload.
    pub payload: Vec<u8>,
}

enum Fill {
    /// The buffer was filled completely.
    Full,
    /// Clean end of stream before the first byte.
    Empty,
    /// End of stream after some bytes — a torn frame.
    Partial,
}

fn fill_buf(r: &mut impl Read, buf: &mut [u8]) -> Result<Fill, WireError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return Ok(if got == 0 { Fill::Empty } else { Fill::Partial });
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if got == 0 {
                    // Nothing consumed: an idle poll tick, not damage.
                    return Err(WireError::Idle);
                }
                // Mid-frame: the sender is slow, keep waiting for the rest.
                continue;
            }
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(Fill::Full)
}

/// Writes one frame in the journal record layout.
pub fn write_frame(w: &mut impl Write, seq: u64, tag: u8, payload: &[u8]) -> io::Result<()> {
    let mut buf = Vec::with_capacity(payload.len() + 17);
    frame_record(&mut buf, seq, tag, payload);
    w.write_all(&buf)?;
    w.flush()
}

/// Reads one frame; `Ok(None)` is a clean end of stream at a frame
/// boundary, [`WireError::Torn`] an end of stream inside a frame, and
/// [`WireError::Idle`] a read timeout before any byte of a frame arrived.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, WireError> {
    let mut prefix = [0u8; 13];
    match fill_buf(r, &mut prefix)? {
        Fill::Empty => return Ok(None),
        Fill::Partial => return Err(WireError::Torn),
        Fill::Full => {}
    }
    let len = u32::from_le_bytes(prefix[0..4].try_into().unwrap()) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(WireError::TooLarge { len });
    }
    let seq = u64::from_le_bytes(prefix[4..12].try_into().unwrap());
    let tag = prefix[12];
    let mut rest = vec![0u8; len + 4];
    match fill_buf(r, &mut rest) {
        Ok(Fill::Full) => {}
        Ok(_) => return Err(WireError::Torn),
        // A timeout after the prefix is still mid-frame.
        Err(WireError::Idle) => return Err(WireError::Torn),
        Err(e) => return Err(e),
    }
    let (payload, crc_bytes) = rest.split_at(len);
    let crc = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc != crc32(&[&prefix[4..12], &[tag], payload]) {
        return Err(WireError::Corrupt { seq });
    }
    Ok(Some(Frame {
        seq,
        tag,
        payload: payload.to_vec(),
    }))
}

fn malformed(tag: u8, detail: impl Into<String>) -> WireError {
    WireError::Malformed {
        tag,
        detail: detail.into(),
    }
}

fn enc_spec(enc: &mut Enc, spec: SpecId) {
    enc.u64(spec.0);
    enc.u64(spec.1);
}

fn dec_spec(dec: &mut Dec<'_>) -> Result<SpecId, String> {
    Ok(SpecId(dec.u64()?, dec.u64()?))
}

/// Encodes a request into `(tag, payload)`.
fn encode_request(req: &Request) -> (u8, Vec<u8>) {
    let mut enc = Enc::default();
    let tag = match req {
        Request::Hello {
            format,
            wire,
            spec,
            session,
        } => {
            enc.buf.extend_from_slice(&MAGIC);
            enc.u32(u32::from(*format));
            enc.u32(u32::from(*wire));
            enc_spec(&mut enc, *spec);
            enc.str(session);
            REQ_HELLO
        }
        Request::OpenDoc { label, source } => {
            enc.str(label);
            enc.str(source);
            REQ_OPEN
        }
        Request::Apply { handle, ops } => {
            enc.u64(*handle);
            enc.u32(ops.len() as u32);
            for op in ops {
                enc_op(&mut enc, op);
            }
            REQ_APPLY
        }
        Request::Commit => REQ_COMMIT,
        Request::Sync { after_seq, shard } => {
            enc.u64(*after_seq);
            match shard {
                None => enc.u8(0),
                Some(s) => {
                    enc.u8(1);
                    enc.u32(*s);
                }
            }
            REQ_SYNC
        }
        Request::CloseDoc { handle } => {
            enc.u64(*handle);
            REQ_CLOSE
        }
        Request::Stats => REQ_STATS,
        Request::Shutdown => REQ_SHUTDOWN,
    };
    (tag, enc.buf)
}

/// Decodes a request frame.
fn decode_request(frame: &Frame) -> Result<Request, WireError> {
    let tag = frame.tag;
    let mut dec = Dec::new(&frame.payload);
    let wrap = |e: String| malformed(tag, e);
    let req = match tag {
        REQ_HELLO => {
            let magic: [u8; 4] = frame
                .payload
                .get(0..4)
                .and_then(|m| m.try_into().ok())
                .ok_or_else(|| malformed(tag, "hello shorter than its magic"))?;
            if magic != MAGIC {
                return Err(malformed(tag, "hello does not begin with the XICJ magic"));
            }
            let mut dec = Dec::new(&frame.payload[4..]);
            let format = dec.u32().map_err(wrap)? as u16;
            let wire = dec.u32().map_err(wrap)? as u16;
            let spec = dec_spec(&mut dec).map_err(wrap)?;
            let session = dec.str().map_err(wrap)?;
            dec.finish().map_err(wrap)?;
            return Ok(Request::Hello {
                format,
                wire,
                spec,
                session,
            });
        }
        REQ_OPEN => Request::OpenDoc {
            label: dec.str().map_err(wrap)?,
            source: dec.str().map_err(wrap)?,
        },
        REQ_APPLY => {
            let handle = dec.u64().map_err(wrap)?;
            let count = dec.u32().map_err(wrap)?;
            let mut ops = Vec::new();
            for _ in 0..count {
                ops.push(dec_op(&mut dec).map_err(wrap)?);
            }
            Request::Apply { handle, ops }
        }
        REQ_COMMIT => Request::Commit,
        REQ_SYNC => {
            let after_seq = dec.u64().map_err(wrap)?;
            let shard = match dec.u8().map_err(wrap)? {
                0 => None,
                1 => Some(dec.u32().map_err(wrap)?),
                other => return Err(malformed(tag, format!("bad shard-filter flag {other}"))),
            };
            Request::Sync { after_seq, shard }
        }
        REQ_CLOSE => Request::CloseDoc {
            handle: dec.u64().map_err(wrap)?,
        },
        REQ_STATS => Request::Stats,
        REQ_SHUTDOWN => Request::Shutdown,
        other => return Err(WireError::UnknownTag { tag: other }),
    };
    dec.finish().map_err(wrap)?;
    Ok(req)
}

fn enc_snapshot(enc: &mut Enc, snapshot: &RegistrySnapshot) {
    enc.u32(snapshot.counters.len() as u32);
    for c in &snapshot.counters {
        enc.str(&c.name);
        enc.u64(c.value);
    }
    enc.u32(snapshot.gauges.len() as u32);
    for g in &snapshot.gauges {
        enc.str(&g.name);
        enc.u64(g.value as u64);
    }
    enc.u32(snapshot.histograms.len() as u32);
    for h in &snapshot.histograms {
        enc.str(&h.name);
        enc.u64(h.count);
        enc.u64(h.sum);
        enc.u64(h.p50);
        enc.u64(h.p90);
        enc.u64(h.p99);
        enc.u64(h.max);
    }
}

fn dec_snapshot(dec: &mut Dec<'_>) -> Result<RegistrySnapshot, String> {
    let mut snapshot = RegistrySnapshot::default();
    for _ in 0..dec.u32()? {
        snapshot.counters.push(CounterSnapshot {
            name: dec.str()?,
            value: dec.u64()?,
        });
    }
    for _ in 0..dec.u32()? {
        snapshot.gauges.push(GaugeSnapshot {
            name: dec.str()?,
            value: dec.u64()? as i64,
        });
    }
    for _ in 0..dec.u32()? {
        snapshot.histograms.push(HistogramSnapshot {
            name: dec.str()?,
            count: dec.u64()?,
            sum: dec.u64()?,
            p50: dec.u64()?,
            p90: dec.u64()?,
            p99: dec.u64()?,
            max: dec.u64()?,
        });
    }
    Ok(snapshot)
}

/// Encodes a response into `(tag, payload)`.  A delta response encodes as
/// the journal's own delta record.
fn encode_response(resp: &Response) -> (u8, Vec<u8>) {
    let mut enc = Enc::default();
    let tag = match resp {
        Response::Hello(ack) => {
            enc.buf.extend_from_slice(&MAGIC);
            enc.u32(u32::from(ack.format));
            enc.u32(u32::from(ack.wire));
            enc_spec(&mut enc, ack.spec);
            enc.u8(u8::from(ack.spec_known));
            enc.u8(u8::from(ack.replica));
            enc.u64(ack.last_seq);
            RESP_HELLO
        }
        Response::Opened { handle } => {
            enc.u64(*handle);
            RESP_OPENED
        }
        Response::Applied { queued_ops } => {
            enc.u64(*queued_ops);
            RESP_APPLIED
        }
        Response::Delta(delta) => {
            enc_delta(&mut enc, delta);
            TAG_DELTA
        }
        Response::DeltaEnd { count } => {
            enc.u64(*count);
            RESP_DELTA_END
        }
        Response::Closed { label } => {
            enc.str(label);
            RESP_CLOSED
        }
        Response::Stats(snapshot) => {
            enc_snapshot(&mut enc, snapshot);
            RESP_STATS
        }
        Response::ShuttingDown { sessions } => {
            enc.u64(*sessions);
            RESP_SHUTTING_DOWN
        }
        Response::Error(fault) => {
            enc.u8(fault.code);
            enc.str(&fault.kind);
            enc.str(&fault.detail);
            RESP_ERROR
        }
    };
    (tag, enc.buf)
}

/// Decodes a response frame.
fn decode_response(frame: &Frame) -> Result<Response, WireError> {
    let tag = frame.tag;
    let mut dec = Dec::new(&frame.payload);
    let wrap = |e: String| malformed(tag, e);
    let resp = match tag {
        RESP_HELLO => {
            let magic: [u8; 4] = frame
                .payload
                .get(0..4)
                .and_then(|m| m.try_into().ok())
                .ok_or_else(|| malformed(tag, "hello ack shorter than its magic"))?;
            if magic != MAGIC {
                return Err(malformed(tag, "hello ack does not begin with the magic"));
            }
            let mut dec = Dec::new(&frame.payload[4..]);
            let format = dec.u32().map_err(wrap)? as u16;
            let wire = dec.u32().map_err(wrap)? as u16;
            let spec = dec_spec(&mut dec).map_err(wrap)?;
            let spec_known = dec.u8().map_err(wrap)? != 0;
            let replica = dec.u8().map_err(wrap)? != 0;
            let last_seq = dec.u64().map_err(wrap)?;
            dec.finish().map_err(wrap)?;
            return Ok(Response::Hello(HelloAck {
                format,
                wire,
                spec,
                spec_known,
                last_seq,
                replica,
            }));
        }
        RESP_OPENED => Response::Opened {
            handle: dec.u64().map_err(wrap)?,
        },
        RESP_APPLIED => Response::Applied {
            queued_ops: dec.u64().map_err(wrap)?,
        },
        TAG_DELTA => Response::Delta(dec_delta(&mut dec).map_err(wrap)?),
        RESP_DELTA_END => Response::DeltaEnd {
            count: dec.u64().map_err(wrap)?,
        },
        RESP_CLOSED => Response::Closed {
            label: dec.str().map_err(wrap)?,
        },
        RESP_STATS => Response::Stats(dec_snapshot(&mut dec).map_err(wrap)?),
        RESP_SHUTTING_DOWN => Response::ShuttingDown {
            sessions: dec.u64().map_err(wrap)?,
        },
        RESP_ERROR => Response::Error(WireFault {
            code: dec.u8().map_err(wrap)?,
            kind: dec.str().map_err(wrap)?,
            detail: dec.str().map_err(wrap)?,
        }),
        other => return Err(WireError::UnknownTag { tag: other }),
    };
    dec.finish().map_err(wrap)?;
    Ok(resp)
}

/// Writes one request frame.
pub fn write_request(w: &mut impl Write, seq: u64, req: &Request) -> io::Result<()> {
    let (tag, payload) = encode_request(req);
    write_frame(w, seq, tag, &payload)
}

/// Reads one request frame (`Ok(None)`: clean end of stream).
pub fn read_request(r: &mut impl Read) -> Result<Option<(u64, Request)>, WireError> {
    match read_frame(r)? {
        None => Ok(None),
        Some(frame) => Ok(Some((frame.seq, decode_request(&frame)?))),
    }
}

/// Reads one request frame while enforcing a strictly monotonic request
/// sequence.  `last` holds the highest sequence accepted so far on this
/// connection (`0` for a fresh one) and is advanced on every accepted
/// frame.  A frame whose sequence does not advance past `last` — a replay,
/// a rewind, or a hostile zero — is rejected with
/// [`WireError::NonMonotonicSeq`] *before* its payload is decoded.
pub fn read_request_monotonic(
    r: &mut impl Read,
    last: &mut u64,
) -> Result<Option<(u64, Request)>, WireError> {
    match read_frame(r)? {
        None => Ok(None),
        Some(frame) => {
            if frame.seq <= *last {
                return Err(WireError::NonMonotonicSeq {
                    seq: frame.seq,
                    last: *last,
                });
            }
            *last = frame.seq;
            Ok(Some((frame.seq, decode_request(&frame)?)))
        }
    }
}

/// Writes one response frame.  Delta responses carry the commit's own
/// sequence number; everything else echoes the request's.
pub fn write_response(w: &mut impl Write, seq: u64, resp: &Response) -> io::Result<()> {
    let (tag, payload) = encode_response(resp);
    let seq = match resp {
        Response::Delta(delta) => delta.seq,
        _ => seq,
    };
    write_frame(w, seq, tag, &payload)
}

/// Reads one response frame (`Ok(None)`: clean end of stream).
pub fn read_response(r: &mut impl Read) -> Result<Option<(u64, Response)>, WireError> {
    match read_frame(r)? {
        None => Ok(None),
        Some(frame) => Ok(Some((frame.seq, decode_response(&frame)?))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xic_xml::NodeId;

    fn roundtrip_request(req: Request) {
        let mut buf = Vec::new();
        write_request(&mut buf, 7, &req).unwrap();
        let mut cursor = &buf[..];
        let (seq, back) = read_request(&mut cursor).unwrap().expect("one frame");
        assert_eq!(seq, 7);
        assert_eq!(back, req);
        assert!(read_request(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    fn roundtrip_response(resp: Response) {
        let mut buf = Vec::new();
        write_response(&mut buf, 9, &resp).unwrap();
        let mut cursor = &buf[..];
        let (_, back) = read_response(&mut cursor).unwrap().expect("one frame");
        assert_eq!(back, resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::hello(SpecId(1, u64::MAX), "tenant-a"));
        roundtrip_request(Request::OpenDoc {
            label: "doc-1.xml".into(),
            source: "<db/>".into(),
        });
        roundtrip_request(Request::Apply {
            handle: 3,
            ops: vec![
                EditOp::AddText {
                    parent: NodeId(0),
                    value: "hi".into(),
                },
                EditOp::RemoveSubtree { element: NodeId(4) },
            ],
        });
        roundtrip_request(Request::Commit);
        roundtrip_request(Request::Sync {
            after_seq: 12,
            shard: None,
        });
        roundtrip_request(Request::Sync {
            after_seq: 0,
            shard: Some(3),
        });
        roundtrip_request(Request::CloseDoc { handle: 1 });
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Shutdown);
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::Hello(HelloAck {
            format: FORMAT_VERSION,
            wire: WIRE_VERSION,
            spec: SpecId(5, 6),
            spec_known: true,
            last_seq: 9,
            replica: false,
        }));
        roundtrip_response(Response::Opened { handle: 2 });
        roundtrip_response(Response::Applied { queued_ops: 4 });
        roundtrip_response(Response::Delta(BatchDelta {
            seq: 3,
            changes: Vec::new(),
            closed: Vec::new(),
            rechecked_docs: 0,
            total: 2,
            clean: 2,
            shards: vec![0, 2],
        }));
        roundtrip_response(Response::DeltaEnd { count: 3 });
        roundtrip_response(Response::Closed {
            label: "doc-1.xml".into(),
        });
        roundtrip_response(Response::ShuttingDown { sessions: 2 });
        roundtrip_response(Response::Error(WireFault::new(
            3,
            "resource:max_doc_nodes",
            "rejected",
        )));
    }

    #[test]
    fn stats_snapshot_roundtrips() {
        let registry = xic_telemetry::MetricsRegistry::new();
        registry.counter("server.requests").add(4);
        registry.gauge("server.active_sessions").set(-2);
        registry.histogram("server.request_ns").record(1500);
        let snapshot = registry.snapshot();
        let mut buf = Vec::new();
        write_response(&mut buf, 1, &Response::Stats(snapshot.clone())).unwrap();
        let (_, back) = read_response(&mut &buf[..]).unwrap().expect("one frame");
        match back {
            Response::Stats(s) => {
                assert_eq!(s.counters, snapshot.counters);
                assert_eq!(s.gauges, snapshot.gauges);
                assert_eq!(s.histograms, snapshot.histograms);
            }
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn torn_and_corrupt_frames_are_distinguished() {
        let mut buf = Vec::new();
        write_request(&mut buf, 1, &Request::Commit).unwrap();
        // Every strict prefix (except the empty one) is torn, never decoded.
        for cut in 1..buf.len() {
            let mut cursor = &buf[..cut];
            assert!(
                matches!(read_request(&mut cursor), Err(WireError::Torn)),
                "prefix of {cut} bytes must be torn"
            );
        }
        // Clean EOF at the boundary.
        assert!(read_request(&mut &buf[..0]).unwrap().is_none());
        // A flipped payload/CRC byte is corrupt, not torn.
        let mut damaged = buf.clone();
        let last = damaged.len() - 1;
        damaged[last] ^= 0x40;
        assert!(matches!(
            read_request(&mut &damaged[..]),
            Err(WireError::Corrupt { .. })
        ));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.push(REQ_COMMIT);
        assert!(matches!(
            read_frame(&mut &buf[..]),
            Err(WireError::TooLarge { .. })
        ));
    }

    #[test]
    fn monotonic_reader_rejects_replayed_and_zero_sequences() {
        let mut buf = Vec::new();
        write_request(&mut buf, 1, &Request::Commit).unwrap();
        write_request(&mut buf, 2, &Request::Commit).unwrap();
        let mut cursor = &buf[..];
        let mut last = 0;
        assert!(read_request_monotonic(&mut cursor, &mut last)
            .unwrap()
            .is_some());
        assert!(read_request_monotonic(&mut cursor, &mut last)
            .unwrap()
            .is_some());
        assert_eq!(last, 2);

        // A replay of an already-seen sequence is rejected.
        let mut replay = Vec::new();
        write_request(&mut replay, 2, &Request::Commit).unwrap();
        assert!(matches!(
            read_request_monotonic(&mut &replay[..], &mut last),
            Err(WireError::NonMonotonicSeq { seq: 2, last: 2 })
        ));
        // And so is a hostile zero on a fresh connection.
        let mut zero = Vec::new();
        write_request(&mut zero, 0, &Request::Commit).unwrap();
        let mut fresh = 0;
        assert!(matches!(
            read_request_monotonic(&mut &zero[..], &mut fresh),
            Err(WireError::NonMonotonicSeq { seq: 0, last: 0 })
        ));
    }

    mod hostile_prefixes {
        use super::*;
        use proptest::prelude::*;

        /// Length prefixes around the interesting boundaries: small,
        /// straddling [`MAX_FRAME_BYTES`], and absurd.
        fn arb_len() -> BoxedStrategy<u32> {
            let cap = MAX_FRAME_BYTES as u32;
            prop_oneof![
                (0u32..1024).boxed(),
                (cap - 512..cap + 512).boxed(),
                (cap..u32::MAX).boxed(),
                Just(u32::MAX).boxed(),
            ]
            .boxed()
        }

        fn arb_seq() -> BoxedStrategy<u64> {
            prop_oneof![
                (0u64..8).boxed(),
                (0u64..u64::MAX).boxed(),
                Just(u64::MAX).boxed(),
            ]
            .boxed()
        }

        proptest! {
            /// Any claimed payload length above the cap is refused before
            /// a buffer of that size is ever allocated; anything at or
            /// below it reaches the torn-tail stage instead (the body
            /// never arrived), so a hostile prefix can neither OOM nor
            /// smuggle a decode.
            #[test]
            fn length_prefix_never_allocates_past_the_cap(
                len in arb_len(),
                seq in arb_seq(),
                tag in 0u8..255,
            ) {
                let mut buf = Vec::new();
                buf.extend_from_slice(&len.to_le_bytes());
                buf.extend_from_slice(&seq.to_le_bytes());
                buf.push(tag);
                let result = read_frame(&mut &buf[..]);
                if len as usize > MAX_FRAME_BYTES {
                    prop_assert!(
                        matches!(result, Err(WireError::TooLarge { len: l }) if l == len as usize)
                    );
                } else {
                    prop_assert!(matches!(result, Err(WireError::Torn)));
                }
            }

            /// Whatever sequence numbers a hostile client stamps on its
            /// frames, the monotonic reader accepts a frame only when its
            /// seq strictly advances, `last` never moves backwards, and
            /// the first violation kills the stream.
            #[test]
            fn monotonic_gate_holds_for_arbitrary_seq_streams(
                seqs in proptest::collection::vec(arb_seq(), 1..8),
            ) {
                let mut buf = Vec::new();
                for &seq in &seqs {
                    write_request(&mut buf, seq, &Request::Commit).unwrap();
                }
                let mut cursor = &buf[..];
                let mut last = 0u64;
                let mut accepted = Vec::new();
                loop {
                    let before = last;
                    match read_request_monotonic(&mut cursor, &mut last) {
                        Ok(None) => break,
                        Ok(Some((seq, _))) => {
                            prop_assert!(seq > before);
                            prop_assert_eq!(last, seq);
                            accepted.push(seq);
                        }
                        Err(WireError::NonMonotonicSeq { seq, last: l }) => {
                            prop_assert!(seq <= l);
                            prop_assert_eq!(last, before);
                            // The gate stops at the first violation: the
                            // connection is dead from here.
                            break;
                        }
                        Err(e) => panic!("unexpected wire error: {e}"),
                    }
                }
                prop_assert!(accepted.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }
}
