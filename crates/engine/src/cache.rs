//! Thread-safe LRU memoization of decision-procedure verdicts.
//!
//! Std-only: an `RwLock<HashMap>` with a monotonic use-counter per entry.
//! Reads take the write lock only long enough to bump the counter; eviction
//! scans for the least-recently-used entry, which is linear in the capacity
//! and perfectly adequate for the few-thousand-entry caches the engine uses.
//!
//! Statistics are registry-backed: hits, misses, evictions, insert counts
//! and insert latency live as named instruments on an
//! [`xic_telemetry::MetricsRegistry`] (aggregate `cache.*` instruments plus
//! per-[`SpecId`] breakdowns), so the same numbers surface through
//! [`VerdictCache::stats`], `xic stats` and the `--metrics` flag without a
//! second bookkeeping path.  A cache built with
//! [`VerdictCache::with_capacity`] owns a private registry (statistics
//! isolated to that cache, as every pre-telemetry test assumes); share one
//! with [`VerdictCache::with_registry`].

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, RwLock};

use xic_constraints::Constraint;
use xic_core::{ConsistencyOutcome, ImplicationOutcome};
use xic_dtd::Dtd;
use xic_telemetry::{Counter, Gauge, Histogram, MetricsRegistry};

use crate::hash::fnv1a_parts;
use crate::spec::SpecId;

/// Stable hash of one query against a specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryHash(pub u64);

impl QueryHash {
    /// The (single) consistency query.
    pub fn consistency() -> QueryHash {
        QueryHash(fnv1a_parts(&["consistency"]))
    }

    /// An implication query, identified by the constraint's canonical
    /// rendering.
    pub fn of_constraint(dtd: &Dtd, phi: &Constraint) -> QueryHash {
        QueryHash(fnv1a_parts(&["implies", &phi.render(dtd)]))
    }
}

/// Cache key: which question about which specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The specification's content hash.
    pub spec: SpecId,
    /// The query hash.
    pub query: QueryHash,
}

impl CacheKey {
    /// Key of the consistency verdict of `spec`.
    pub fn consistency(spec: SpecId) -> CacheKey {
        CacheKey {
            spec,
            query: QueryHash::consistency(),
        }
    }

    /// Key of an implication verdict of `spec`.
    pub fn implication(spec: SpecId, query: QueryHash) -> CacheKey {
        CacheKey { spec, query }
    }
}

/// A cached, tree-free verdict: the decision, its explanation, and the size
/// of the witness/counterexample document if one was synthesized (the
/// document itself is deliberately not cached — witnesses can be large and
/// are cheap to re-synthesize once the verdict is known).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// `Some(true)` = consistent / implied, `Some(false)` = inconsistent /
    /// not implied, `None` = unknown (solver budget, undecidable class, or
    /// an error — see the explanation).
    decision: Option<bool>,
    /// Human-readable explanation from the deciding procedure.
    explanation: String,
    /// Node count of the witness (consistency) or counterexample
    /// (implication) document, when one was synthesized.
    witness_nodes: Option<usize>,
}

impl Verdict {
    /// The decision, if any.
    pub fn decision(&self) -> Option<bool> {
        self.decision
    }

    /// The deciding procedure's explanation.
    pub fn explanation(&self) -> &str {
        &self.explanation
    }

    /// Node count of the synthesized witness or counterexample, if any.
    pub fn witness_nodes(&self) -> Option<usize> {
        self.witness_nodes
    }

    /// Converts a consistency outcome (dropping the witness tree, keeping
    /// its size).
    pub fn from_consistency(outcome: &ConsistencyOutcome) -> Verdict {
        let decision = if outcome.is_consistent() {
            Some(true)
        } else if outcome.is_inconsistent() {
            Some(false)
        } else {
            None
        };
        Verdict {
            decision,
            explanation: outcome.explanation().to_string(),
            witness_nodes: outcome.witness().map(|t| t.num_nodes()),
        }
    }

    /// Converts an implication outcome (dropping the counterexample tree,
    /// keeping its size).
    pub fn from_implication(outcome: &ImplicationOutcome) -> Verdict {
        let decision = if outcome.is_implied() {
            Some(true)
        } else if outcome.is_not_implied() {
            Some(false)
        } else {
            None
        };
        Verdict {
            decision,
            explanation: outcome.explanation().to_string(),
            witness_nodes: outcome.counterexample().map(|t| t.num_nodes()),
        }
    }

    /// An error verdict (checker rejected the query).
    pub fn error(message: String) -> Verdict {
        Verdict {
            decision: None,
            explanation: message,
            witness_nodes: None,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let word = match self.decision {
            Some(true) => "positive",
            Some(false) => "negative",
            None => "unknown",
        };
        write!(f, "{word}: {}", self.explanation)
    }
}

/// Point-in-time cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Entries evicted to respect the capacity.
    pub evictions: u64,
    /// Maximum resident entries.
    pub capacity: usize,
}

impl CacheStats {
    /// Total lookups (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fraction of the capacity currently resident, in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.entries as f64 / self.capacity as f64
        }
    }

    /// Former name of [`CacheStats::hit_rate`].
    #[deprecated(since = "0.1.0", note = "renamed to `hit_rate`")]
    pub fn hit_ratio(&self) -> f64 {
        self.hit_rate()
    }
}

impl fmt::Display for CacheStats {
    /// One-line report covering every field consistently (rate, residency
    /// *and* eviction pressure — not just hits/misses).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} lookups ({:.1}% hit rate), {}/{} entries resident, {} evictions",
            self.hits,
            self.lookups(),
            self.hit_rate() * 100.0,
            self.entries,
            self.capacity,
            self.evictions,
        )
    }
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<CacheKey, Entry>,
    tick: u64,
}

/// Registry-backed cache instruments.  Aggregate handles are resolved once
/// at cache construction; per-spec breakdowns are resolved lazily (the set
/// of spec ids is open-ended).
#[derive(Debug)]
struct CacheInstruments {
    registry: Arc<MetricsRegistry>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
    inserts: Arc<Counter>,
    insert_ns: Arc<Histogram>,
    entries: Arc<Gauge>,
}

impl CacheInstruments {
    fn on(registry: Arc<MetricsRegistry>) -> CacheInstruments {
        CacheInstruments {
            hits: registry.counter("cache.hits"),
            misses: registry.counter("cache.misses"),
            evictions: registry.counter("cache.evictions"),
            inserts: registry.counter("cache.inserts"),
            insert_ns: registry.histogram("cache.insert_ns"),
            entries: registry.gauge("cache.entries"),
            registry,
        }
    }

    /// The per-spec breakdown counter `cache.<kind>.<spec>`.
    fn spec_counter(&self, kind: &str, spec: SpecId) -> Arc<Counter> {
        self.registry.counter(&format!("cache.{kind}.{spec}"))
    }
}

#[derive(Debug)]
struct Entry {
    verdict: Verdict,
    last_used: u64,
}

/// Thread-safe LRU verdict memo.  See the module docs for the locking,
/// eviction and statistics story.
#[derive(Debug)]
pub struct VerdictCache {
    inner: RwLock<Inner>,
    instr: CacheInstruments,
    capacity: usize,
}

impl Default for VerdictCache {
    fn default() -> Self {
        VerdictCache::with_capacity(1024)
    }
}

impl VerdictCache {
    /// A cache holding at most `capacity` verdicts (minimum 1), with
    /// statistics on a private [`MetricsRegistry`].
    pub fn with_capacity(capacity: usize) -> VerdictCache {
        VerdictCache::with_registry(capacity, Arc::new(MetricsRegistry::new()))
    }

    /// A cache whose statistics live on a shared registry (the process
    /// global, or a per-tenant registry in a service).  Two caches sharing a
    /// registry aggregate into the same `cache.*` instruments.
    pub fn with_registry(capacity: usize, registry: Arc<MetricsRegistry>) -> VerdictCache {
        VerdictCache {
            inner: RwLock::new(Inner::default()),
            instr: CacheInstruments::on(registry),
            capacity: capacity.max(1),
        }
    }

    /// The registry holding this cache's instruments.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.instr.registry
    }

    /// Looks up a verdict, refreshing its recency on a hit.
    pub fn get(&self, key: CacheKey) -> Option<Verdict> {
        let mut inner = self
            .inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&key) {
            Some(entry) => {
                entry.last_used = tick;
                let verdict = entry.verdict.clone();
                drop(inner);
                self.instr.hits.inc();
                self.instr.spec_counter("hits", key.spec).inc();
                Some(verdict)
            }
            None => {
                drop(inner);
                self.instr.misses.inc();
                self.instr.spec_counter("misses", key.spec).inc();
                None
            }
        }
    }

    /// Inserts a verdict, evicting the least-recently-used entry if the
    /// cache is full.
    ///
    /// The `cache.insert` failpoint degrades this to a no-op — the correct
    /// containment for a cache: skipping an insert costs a future miss,
    /// never a wrong verdict.
    pub fn insert(&self, key: CacheKey, verdict: Verdict) {
        if xic_telemetry::faults::hit("cache.insert") {
            return;
        }
        let timer = self.instr.registry.start_timer();
        let mut inner = self
            .inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.tick += 1;
        let tick = inner.tick;
        let mut evicted = None;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            let lru = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            if let Some(lru) = lru {
                inner.map.remove(&lru);
                evicted = Some(lru.spec);
            }
        }
        inner.map.insert(
            key,
            Entry {
                verdict,
                last_used: tick,
            },
        );
        let entries = inner.map.len();
        drop(inner);
        if let Some(spec) = evicted {
            self.instr.evictions.inc();
            self.instr.spec_counter("evictions", spec).inc();
        }
        self.instr.inserts.inc();
        self.instr.spec_counter("inserts", key.spec).inc();
        self.instr.entries.set(entries as i64);
        if let Some(t) = timer {
            self.instr.insert_ns.record_elapsed(t);
            self.instr
                .registry
                .histogram(&format!("cache.insert_ns.{}", key.spec))
                .record_elapsed(t);
        }
    }

    /// Returns the cached verdict or computes, inserts and returns it.  The
    /// computation runs outside the lock; concurrent misses on the same key
    /// may compute twice and insert equal verdicts, which is benign.
    pub fn get_or_compute(&self, key: CacheKey, compute: impl FnOnce() -> Verdict) -> Verdict {
        if let Some(hit) = self.get(key) {
            return hit;
        }
        let verdict = compute();
        self.insert(key, verdict.clone());
        verdict
    }

    /// Drops every entry (statistics are kept).
    pub fn clear(&self) {
        self.inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .map
            .clear();
        self.instr.entries.set(0);
    }

    /// Point-in-time statistics — a thin shim over the registry-backed
    /// instruments (`cache.hits` / `cache.misses` / `cache.evictions`),
    /// kept so pre-telemetry callers and tests read the same numbers they
    /// always did.  Note: under a *shared* registry
    /// ([`VerdictCache::with_registry`]) these are the registry's aggregate
    /// counts, not this one cache's.
    pub fn stats(&self) -> CacheStats {
        let inner = self
            .inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        CacheStats {
            hits: self.instr.hits.get(),
            misses: self.instr.misses.get(),
            entries: inner.map.len(),
            evictions: self.instr.evictions.get(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdict(tag: &str) -> Verdict {
        Verdict {
            decision: Some(true),
            explanation: tag.to_string(),
            witness_nodes: None,
        }
    }

    fn key(spec: u64, query: u64) -> CacheKey {
        CacheKey {
            spec: SpecId(spec, spec),
            query: QueryHash(query),
        }
    }

    #[test]
    fn hit_and_miss_counting() {
        let cache = VerdictCache::with_capacity(8);
        assert_eq!(cache.get(key(1, 1)), None);
        cache.insert(key(1, 1), verdict("a"));
        assert_eq!(cache.get(key(1, 1)).unwrap().explanation(), "a");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn lru_eviction_prefers_stale_entries() {
        let cache = VerdictCache::with_capacity(2);
        cache.insert(key(1, 1), verdict("a"));
        cache.insert(key(2, 2), verdict("b"));
        // Touch (1,1) so (2,2) is the LRU entry.
        assert!(cache.get(key(1, 1)).is_some());
        cache.insert(key(3, 3), verdict("c"));
        assert!(
            cache.get(key(1, 1)).is_some(),
            "recently used entry survived"
        );
        assert!(cache.get(key(2, 2)).is_none(), "stale entry was evicted");
        assert!(cache.get(key(3, 3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn get_or_compute_computes_once() {
        let cache = VerdictCache::with_capacity(8);
        let mut calls = 0;
        for _ in 0..3 {
            let v = cache.get_or_compute(key(9, 9), || {
                calls += 1;
                verdict("computed")
            });
            assert_eq!(v.explanation(), "computed");
        }
        assert_eq!(calls, 1);
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn capacity_is_respected() {
        let cache = VerdictCache::with_capacity(4);
        for i in 0..100 {
            cache.insert(key(i, i), verdict("x"));
        }
        assert_eq!(cache.stats().entries, 4);
        assert_eq!(cache.stats().evictions, 96);
    }

    #[test]
    fn stats_shim_matches_registry_instruments() {
        let cache = VerdictCache::with_capacity(2);
        cache.insert(key(1, 1), verdict("a"));
        assert!(cache.get(key(1, 1)).is_some());
        assert!(cache.get(key(2, 2)).is_none());
        let stats = cache.stats();
        let snap = cache.registry().snapshot();
        assert_eq!(snap.counter("cache.hits"), Some(stats.hits));
        assert_eq!(snap.counter("cache.misses"), Some(stats.misses));
        assert_eq!(snap.counter("cache.inserts"), Some(1));
        assert_eq!(snap.gauge("cache.entries"), Some(stats.entries as i64));
        // Per-spec breakdowns land under the spec's display name.
        let spec = SpecId(1, 1);
        assert_eq!(snap.counter(&format!("cache.hits.{spec}")), Some(1));
        assert_eq!(snap.counter(&format!("cache.inserts.{spec}")), Some(1));
        let other = SpecId(2, 2);
        assert_eq!(snap.counter(&format!("cache.misses.{other}")), Some(1));
    }

    #[test]
    fn hit_rate_occupancy_and_display() {
        let stats = CacheStats {
            hits: 3,
            misses: 1,
            entries: 2,
            evictions: 5,
            capacity: 8,
        };
        assert_eq!(stats.lookups(), 4);
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
        assert!((stats.occupancy() - 0.25).abs() < 1e-12);
        let line = stats.to_string();
        for needle in ["3 hits", "4 lookups", "75.0%", "2/8 entries", "5 evictions"] {
            assert!(line.contains(needle), "{line:?} missing {needle:?}");
        }
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        assert_eq!(CacheStats::default().occupancy(), 0.0);
    }

    #[test]
    fn shared_registry_aggregates_across_caches() {
        let registry = std::sync::Arc::new(xic_telemetry::MetricsRegistry::new());
        let a = VerdictCache::with_registry(8, std::sync::Arc::clone(&registry));
        let b = VerdictCache::with_registry(8, std::sync::Arc::clone(&registry));
        a.insert(key(1, 1), verdict("a"));
        b.insert(key(2, 2), verdict("b"));
        assert!(a.get(key(1, 1)).is_some());
        assert!(b.get(key(2, 2)).is_some());
        assert_eq!(registry.snapshot().counter("cache.hits"), Some(2));
        // The stats() shim reads the shared aggregate by design.
        assert_eq!(a.stats().hits, 2);
    }
}
