//! Thread-safe LRU memoization of decision-procedure verdicts.
//!
//! Std-only: an `RwLock<HashMap>` with a monotonic use-counter per entry.
//! Reads take the write lock only long enough to bump the counter; eviction
//! scans for the least-recently-used entry, which is linear in the capacity
//! and perfectly adequate for the few-thousand-entry caches the engine uses.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use xic_constraints::Constraint;
use xic_core::{ConsistencyOutcome, ImplicationOutcome};
use xic_dtd::Dtd;

use crate::hash::fnv1a_parts;
use crate::spec::SpecId;

/// Stable hash of one query against a specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryHash(pub u64);

impl QueryHash {
    /// The (single) consistency query.
    pub fn consistency() -> QueryHash {
        QueryHash(fnv1a_parts(&["consistency"]))
    }

    /// An implication query, identified by the constraint's canonical
    /// rendering.
    pub fn of_constraint(dtd: &Dtd, phi: &Constraint) -> QueryHash {
        QueryHash(fnv1a_parts(&["implies", &phi.render(dtd)]))
    }
}

/// Cache key: which question about which specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The specification's content hash.
    pub spec: SpecId,
    /// The query hash.
    pub query: QueryHash,
}

impl CacheKey {
    /// Key of the consistency verdict of `spec`.
    pub fn consistency(spec: SpecId) -> CacheKey {
        CacheKey {
            spec,
            query: QueryHash::consistency(),
        }
    }

    /// Key of an implication verdict of `spec`.
    pub fn implication(spec: SpecId, query: QueryHash) -> CacheKey {
        CacheKey { spec, query }
    }
}

/// A cached, tree-free verdict: the decision, its explanation, and the size
/// of the witness/counterexample document if one was synthesized (the
/// document itself is deliberately not cached — witnesses can be large and
/// are cheap to re-synthesize once the verdict is known).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// `Some(true)` = consistent / implied, `Some(false)` = inconsistent /
    /// not implied, `None` = unknown (solver budget, undecidable class, or
    /// an error — see the explanation).
    decision: Option<bool>,
    /// Human-readable explanation from the deciding procedure.
    explanation: String,
    /// Node count of the witness (consistency) or counterexample
    /// (implication) document, when one was synthesized.
    witness_nodes: Option<usize>,
}

impl Verdict {
    /// The decision, if any.
    pub fn decision(&self) -> Option<bool> {
        self.decision
    }

    /// The deciding procedure's explanation.
    pub fn explanation(&self) -> &str {
        &self.explanation
    }

    /// Node count of the synthesized witness or counterexample, if any.
    pub fn witness_nodes(&self) -> Option<usize> {
        self.witness_nodes
    }

    /// Converts a consistency outcome (dropping the witness tree, keeping
    /// its size).
    pub fn from_consistency(outcome: &ConsistencyOutcome) -> Verdict {
        let decision = if outcome.is_consistent() {
            Some(true)
        } else if outcome.is_inconsistent() {
            Some(false)
        } else {
            None
        };
        Verdict {
            decision,
            explanation: outcome.explanation().to_string(),
            witness_nodes: outcome.witness().map(|t| t.num_nodes()),
        }
    }

    /// Converts an implication outcome (dropping the counterexample tree,
    /// keeping its size).
    pub fn from_implication(outcome: &ImplicationOutcome) -> Verdict {
        let decision = if outcome.is_implied() {
            Some(true)
        } else if outcome.is_not_implied() {
            Some(false)
        } else {
            None
        };
        Verdict {
            decision,
            explanation: outcome.explanation().to_string(),
            witness_nodes: outcome.counterexample().map(|t| t.num_nodes()),
        }
    }

    /// An error verdict (checker rejected the query).
    pub fn error(message: String) -> Verdict {
        Verdict {
            decision: None,
            explanation: message,
            witness_nodes: None,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let word = match self.decision {
            Some(true) => "positive",
            Some(false) => "negative",
            None => "unknown",
        };
        write!(f, "{word}: {}", self.explanation)
    }
}

/// Point-in-time cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Entries evicted to respect the capacity.
    pub evictions: u64,
    /// Maximum resident entries.
    pub capacity: usize,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]` (0 when no lookups happened).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<CacheKey, Entry>,
    tick: u64,
    evictions: u64,
}

#[derive(Debug)]
struct Entry {
    verdict: Verdict,
    last_used: u64,
}

/// Thread-safe LRU verdict memo.  See the module docs for the locking and
/// eviction story.
#[derive(Debug)]
pub struct VerdictCache {
    inner: RwLock<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    capacity: usize,
}

impl Default for VerdictCache {
    fn default() -> Self {
        VerdictCache::with_capacity(1024)
    }
}

impl VerdictCache {
    /// A cache holding at most `capacity` verdicts (minimum 1).
    pub fn with_capacity(capacity: usize) -> VerdictCache {
        VerdictCache {
            inner: RwLock::new(Inner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            capacity: capacity.max(1),
        }
    }

    /// Looks up a verdict, refreshing its recency on a hit.
    pub fn get(&self, key: CacheKey) -> Option<Verdict> {
        let mut inner = self.inner.write().expect("verdict cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&key) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.verdict.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a verdict, evicting the least-recently-used entry if the
    /// cache is full.
    pub fn insert(&self, key: CacheKey, verdict: Verdict) {
        let mut inner = self.inner.write().expect("verdict cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            let lru = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            if let Some(lru) = lru {
                inner.map.remove(&lru);
                inner.evictions += 1;
            }
        }
        inner.map.insert(
            key,
            Entry {
                verdict,
                last_used: tick,
            },
        );
    }

    /// Returns the cached verdict or computes, inserts and returns it.  The
    /// computation runs outside the lock; concurrent misses on the same key
    /// may compute twice and insert equal verdicts, which is benign.
    pub fn get_or_compute(&self, key: CacheKey, compute: impl FnOnce() -> Verdict) -> Verdict {
        if let Some(hit) = self.get(key) {
            return hit;
        }
        let verdict = compute();
        self.insert(key, verdict.clone());
        verdict
    }

    /// Drops every entry (statistics are kept).
    pub fn clear(&self) {
        self.inner
            .write()
            .expect("verdict cache poisoned")
            .map
            .clear();
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.read().expect("verdict cache poisoned");
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: inner.map.len(),
            evictions: inner.evictions,
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdict(tag: &str) -> Verdict {
        Verdict {
            decision: Some(true),
            explanation: tag.to_string(),
            witness_nodes: None,
        }
    }

    fn key(spec: u64, query: u64) -> CacheKey {
        CacheKey {
            spec: SpecId(spec, spec),
            query: QueryHash(query),
        }
    }

    #[test]
    fn hit_and_miss_counting() {
        let cache = VerdictCache::with_capacity(8);
        assert_eq!(cache.get(key(1, 1)), None);
        cache.insert(key(1, 1), verdict("a"));
        assert_eq!(cache.get(key(1, 1)).unwrap().explanation(), "a");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn lru_eviction_prefers_stale_entries() {
        let cache = VerdictCache::with_capacity(2);
        cache.insert(key(1, 1), verdict("a"));
        cache.insert(key(2, 2), verdict("b"));
        // Touch (1,1) so (2,2) is the LRU entry.
        assert!(cache.get(key(1, 1)).is_some());
        cache.insert(key(3, 3), verdict("c"));
        assert!(
            cache.get(key(1, 1)).is_some(),
            "recently used entry survived"
        );
        assert!(cache.get(key(2, 2)).is_none(), "stale entry was evicted");
        assert!(cache.get(key(3, 3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn get_or_compute_computes_once() {
        let cache = VerdictCache::with_capacity(8);
        let mut calls = 0;
        for _ in 0..3 {
            let v = cache.get_or_compute(key(9, 9), || {
                calls += 1;
                verdict("computed")
            });
            assert_eq!(v.explanation(), "computed");
        }
        assert_eq!(calls, 1);
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn capacity_is_respected() {
        let cache = VerdictCache::with_capacity(4);
        for i in 0..100 {
            cache.insert(key(i, i), verdict("x"));
        }
        assert_eq!(cache.stats().entries, 4);
        assert_eq!(cache.stats().evictions, 96);
    }
}
