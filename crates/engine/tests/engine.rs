//! Integration tests for the engine subsystem: cache semantics, spec-hash
//! stability, and determinism of parallel batch validation.

use xic_constraints::Constraint;
use xic_engine::{BatchDoc, BatchEngine, CompiledSpec, Engine};
use xic_gen::{random_document, random_dtd, DocGenConfig, DtdGenConfig};
use xic_xml::write_document;

const SCHOOL_DTD: &str = "<!ELEMENT school (teacher*, subject*)>\n\
     <!ELEMENT teacher EMPTY>\n\
     <!ATTLIST teacher name CDATA #REQUIRED>\n\
     <!ELEMENT subject EMPTY>\n\
     <!ATTLIST subject taught_by CDATA #REQUIRED>";

const SCHOOL_SIGMA: &str = "teacher.name -> teacher\nsubject.taught_by ⊆ teacher.name";

fn school_spec() -> CompiledSpec {
    CompiledSpec::from_sources(SCHOOL_DTD, Some("school"), SCHOOL_SIGMA).unwrap()
}

#[test]
fn consistency_is_cached_per_spec() {
    let engine = Engine::new();
    let spec = school_spec();

    let first = engine.consistency(&spec);
    assert_eq!(first.decision(), Some(true), "{}", first.explanation());
    let stats = engine.cache().stats();
    assert_eq!((stats.hits, stats.misses), (0, 1));

    let second = engine.consistency(&spec);
    assert_eq!(second, first, "cached verdict must be identical");
    let stats = engine.cache().stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));
    assert_eq!(stats.entries, 1);
}

#[test]
fn implication_queries_are_cached_per_constraint() {
    let engine = Engine::new();
    let spec = school_spec();
    let teacher = spec.dtd().type_by_name("teacher").unwrap();
    let name = spec.dtd().attr_by_name("name").unwrap();
    let phi = Constraint::unary_key(teacher, name);

    let first = engine.implication(&spec, &phi);
    assert_eq!(first.decision(), Some(true), "{}", first.explanation());
    let second = engine.implication(&spec, &phi);
    assert_eq!(second, first);
    let stats = engine.cache().stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));

    // A different query about the same spec is a separate entry.
    let subject = spec.dtd().type_by_name("subject").unwrap();
    let taught_by = spec.dtd().attr_by_name("taught_by").unwrap();
    let psi = Constraint::unary_key(subject, taught_by);
    let third = engine.implication(&spec, &psi);
    assert_eq!(third.decision(), Some(false), "{}", third.explanation());
    assert_eq!(engine.cache().stats().entries, 2);
}

#[test]
fn implication_of_foreign_constraint_is_an_error_not_a_panic() {
    let engine = Engine::new();
    let spec = school_spec();
    // A constraint built against a different, larger DTD: its ids are out of
    // range for the school spec and must be rejected, not rendered.
    let d3 = xic_dtd::example_d3();
    let student = d3.type_by_name("student").unwrap();
    let attr = d3.attrs_of(student)[0];
    let foreign = Constraint::unary_key(student, attr);
    let verdict = engine.implication(&spec, &foreign);
    assert_eq!(verdict.decision(), None);
    assert!(!verdict.explanation().is_empty());
}

#[test]
fn spec_hash_is_stable_across_reparses() {
    let a = school_spec();
    let b = school_spec();
    assert_eq!(a.id(), b.id(), "same source must compile to the same id");

    // Formatting-only changes do not move the id: the hash covers the
    // canonical rendering, not the raw source.
    let reformatted = CompiledSpec::from_sources(
        &SCHOOL_DTD.replace('\n', "\n\n"),
        Some("school"),
        "  teacher.name -> teacher\n\nsubject.taught_by ⊆ teacher.name\n",
    )
    .unwrap();
    assert_eq!(a.id(), reformatted.id());

    // A semantic change does.
    let weakened =
        CompiledSpec::from_sources(SCHOOL_DTD, Some("school"), "teacher.name -> teacher").unwrap();
    assert_ne!(a.id(), weakened.id());
}

#[test]
fn distinct_checker_configs_get_distinct_ids() {
    use xic_core::CheckerConfig;
    let dtd = xic_dtd::parse_dtd(SCHOOL_DTD, Some("school")).unwrap();
    let sigma = xic_constraints::parse_constraint_set(SCHOOL_SIGMA, &dtd).unwrap();
    let default = CompiledSpec::compile(dtd.clone(), sigma.clone()).unwrap();
    let no_witness = CompiledSpec::compile_with(
        dtd,
        sigma,
        CheckerConfig {
            synthesize_witness: false,
            ..Default::default()
        },
    )
    .unwrap();
    // Different configurations can reach different verdicts (budgets,
    // witness synthesis), so they must not share verdict-cache entries.
    assert_ne!(default.id(), no_witness.id());
}

#[test]
fn distinct_specs_do_not_share_cache_entries() {
    let engine = Engine::new();
    let full = school_spec();
    let weakened =
        CompiledSpec::from_sources(SCHOOL_DTD, Some("school"), "teacher.name -> teacher").unwrap();
    engine.consistency(&full);
    engine.consistency(&weakened);
    let stats = engine.cache().stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (0, 2, 2));
}

#[test]
fn compiled_spec_precomputes_the_unary_system() {
    let spec = school_spec();
    assert!(spec.system().is_some(), "unary spec must carry Ψ(D,Σ)");
    assert!(spec.analysis().satisfiable());
    assert!(spec.class().is_some());

    // Multi-attribute constraints fall outside Ψ's scope.
    let dtd = xic_dtd::example_d3();
    let course = dtd.type_by_name("course").unwrap();
    let dept = dtd.attr_by_name("dept").unwrap();
    let course_no = dtd.attr_by_name("course_no").unwrap();
    let sigma = xic_constraints::ConstraintSet::from_vec(vec![Constraint::key(
        course,
        vec![dept, course_no],
    )]);
    let spec = CompiledSpec::compile(dtd, sigma).unwrap();
    assert!(spec.system().is_none());
    assert!(spec.check_consistency().is_consistent());
}

/// Generated corpus: documents that conform to a random DTD, some mutated to
/// violate constraints, batched through 1..=8 workers.  The reports must be
/// byte-identical whatever the parallelism.
#[test]
fn parallel_batch_reports_match_sequential_on_generated_corpus() {
    let dtd = random_dtd(&DtdGenConfig {
        seed: 11,
        num_types: 6,
        ..Default::default()
    });
    let mut sigma = xic_constraints::ConstraintSet::new();
    // A unary key on the first attribute slot the DTD offers, so the small
    // value pool below makes some generated documents violate it.
    if let Some((ty, attr)) = dtd
        .types()
        .find_map(|ty| dtd.attrs_of(ty).first().map(|&a| (ty, a)))
    {
        sigma.push(Constraint::unary_key(ty, attr));
    }
    let spec = CompiledSpec::compile(dtd.clone(), sigma).unwrap();

    let mut docs = Vec::new();
    for seed in 0..120u64 {
        let Some(tree) = random_document(
            &dtd,
            &DocGenConfig {
                seed,
                value_pool: 3,
                ..Default::default()
            },
        ) else {
            continue;
        };
        let mut source = write_document(&tree, &dtd);
        if seed % 7 == 0 {
            // Truncate some documents so the batch also exercises the
            // parse-error path deterministically.
            let cut = source.len() / 2;
            source.truncate(cut);
        }
        docs.push(BatchDoc::new(format!("doc-{seed}"), source));
    }
    assert!(
        docs.len() >= 100,
        "corpus must be ≥ 100 documents, got {}",
        docs.len()
    );

    let sequential = BatchEngine::new(1).validate_batch(&spec, &docs);
    for threads in [2, 4, 8] {
        let parallel = BatchEngine::new(threads).validate_batch(&spec, &docs);
        assert_eq!(
            parallel.render(),
            sequential.render(),
            "reports diverged at {threads} threads"
        );
        assert_eq!(parallel, sequential);
    }
}
