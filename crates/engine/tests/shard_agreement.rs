//! Differential shard-agreement suite: the shard machinery must be an
//! *annotation* of the commit path, never a semantic fork.  Three oracles
//! pin that down across the `xic-gen` workload families:
//!
//! 1. a shard-tagged [`CorpusSession`] commit stream reconstructs exactly
//!    the report a cold single-threaded [`BatchEngine`] computes from the
//!    serialized trees (tags change *metadata*, not verdicts);
//! 2. a shard-`k` filtered [`CorpusReplica`] fed only the `k`-projections
//!    of the stream reconstructs [`project_report`] of the full report;
//! 3. a session scoped to shard `k` with [`CorpusSession::scope_to_shards`]
//!    reports exactly the `k`-projection of the unscoped session's report.
//!
//! Every family of `xic_gen::workloads` that targets document validation is
//! driven (the Lip family exercises the consistency solver only, so it has
//! no differential role here).  `PROPTEST_CASES` pins the case count for
//! the CI shard-smoke job.

use proptest::prelude::*;
use xic_constraints::Violation;
use xic_dtd::Dtd;
use xic_engine::{
    project_report, BatchDelta, BatchDoc, BatchEngine, BatchReport, CompiledSpec, CorpusReplica,
    CorpusSession, DocReport,
};
use xic_gen::{
    fixed_dtd_growing_sigma, inconsistent_fanout_family, keys_only_family, negation_family,
    primary_key_family, random_document, unary_consistency_family, DocGenConfig, SpecInstance,
};
use xic_xml::{write_document, EditOp, NodeId, XmlTree};

/// One compiled member of each differential workload family (E3a, E3b, E4,
/// E5, E6, E9).
fn family_specs(seed: u64) -> Vec<(String, CompiledSpec)> {
    let mut instances: Vec<SpecInstance> = Vec::new();
    instances.extend(unary_consistency_family(&[4]));
    instances.extend(inconsistent_fanout_family(&[2]));
    instances.extend(primary_key_family(&[5], seed));
    instances.extend(fixed_dtd_growing_sigma(4, &[4], seed));
    instances.extend(keys_only_family(&[5], seed));
    instances.extend(negation_family(&[3], seed));
    instances
        .into_iter()
        .map(|s| {
            (
                s.label.clone(),
                CompiledSpec::compile(s.dtd, s.sigma).unwrap(),
            )
        })
        .collect()
}

/// Deterministic splitmix-style generator so the same seed always builds
/// the same edit script (the vendored proptest shim supplies seeds, not a
/// reusable rng handle).
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// One scripted session step: the actions to apply, then a commit.
enum Action {
    Open(String, XmlTree),
    Edit(String, Vec<EditOp>),
    Close(String),
}

/// Builds a deterministic multi-commit script for `dtd` from `seed`: opens
/// spread over several commits, attribute churn from a 3-value pool (small
/// enough to create and then clear key collisions), and one close.  Every
/// edit is a `SetAttr`, so node ids stay stable and the same script drives
/// any number of sessions identically.  Returns `None` when the DTD admits
/// no generated documents.
fn build_script(dtd: &Dtd, seed: u64) -> Option<Vec<Vec<Action>>> {
    let mut docs: Vec<(String, XmlTree)> = Vec::new();
    for attempt in 0..24u64 {
        if docs.len() == 4 {
            break;
        }
        if let Some(tree) = random_document(
            dtd,
            &DocGenConfig {
                seed: seed.wrapping_add(attempt),
                value_pool: 3,
                ..Default::default()
            },
        ) {
            docs.push((format!("doc-{}", docs.len()), tree));
        }
    }
    if docs.is_empty() {
        return None;
    }
    let mut rng = Mix(seed ^ 0xd1f7);
    let churn = |docs: &[(String, XmlTree)], rng: &mut Mix, count: usize| -> Vec<Action> {
        let mut actions = Vec::new();
        for _ in 0..count {
            let (label, tree) = &docs[rng.below(docs.len())];
            let elems: Vec<_> = tree.elements().collect();
            let mut ops = Vec::new();
            for _ in 0..8 {
                let node = elems[rng.below(elems.len())];
                let Some(ty) = tree.element_type(node) else {
                    continue;
                };
                let attrs = dtd.attrs_of(ty);
                if attrs.is_empty() {
                    continue;
                }
                ops.push(EditOp::SetAttr {
                    element: node,
                    attr: attrs[rng.below(attrs.len())],
                    value: format!("v{}", rng.below(3)),
                });
                if ops.len() == 2 {
                    break;
                }
            }
            if !ops.is_empty() {
                actions.push(Action::Edit(label.clone(), ops));
            }
        }
        actions
    };

    let mut steps = Vec::new();
    // Commit 1: most documents open together.
    let split = docs.len().div_ceil(2);
    steps.push(
        docs[..split]
            .iter()
            .map(|(l, t)| Action::Open(l.clone(), t.clone()))
            .collect(),
    );
    // Commit 2: churn the open half, open the rest.
    let mut step = churn(&docs[..split], &mut rng, 2);
    step.extend(
        docs[split..]
            .iter()
            .map(|(l, t)| Action::Open(l.clone(), t.clone())),
    );
    steps.push(step);
    // Commit 3: close the first document (exercises the broadcast-on-close
    // widening), churn the survivors.
    let mut step = vec![Action::Close(docs[0].0.clone())];
    step.extend(churn(&docs[1..], &mut rng, 2));
    steps.push(step);
    // Commit 4: more churn, including no-op rewrites that leave reports
    // unchanged (deltas may come out empty).
    steps.push(churn(&docs[1..], &mut rng, 3));
    Some(steps)
}

/// Runs a script against a session, committing after each step, and
/// returns the delta stream.
fn run_script(session: &mut CorpusSession, steps: &[Vec<Action>]) -> Vec<BatchDelta> {
    let mut deltas = Vec::new();
    for step in steps {
        for action in step {
            match action {
                Action::Open(label, tree) => {
                    session.open(label.clone(), tree.clone()).unwrap();
                }
                Action::Edit(label, ops) => {
                    let handle = session.handle_by_label(label).unwrap();
                    session.apply(handle, ops).unwrap();
                }
                Action::Close(label) => {
                    let handle = session.handle_by_label(label).unwrap();
                    session.close(handle).unwrap();
                }
            }
        }
        deltas.push(session.commit());
    }
    deltas
}

/// Witness node ids are arena indices, so serializing a session's edited
/// tree and re-parsing it for the cold oracle renumbers them (`set_attr`
/// allocates fresh value nodes; a parse numbers in document order).  Every
/// other field is oracle material, so session-vs-cold equality is checked
/// with witnesses erased.
fn erase_witnesses(report: &BatchReport) -> Vec<DocReport> {
    report
        .reports()
        .iter()
        .map(|r| {
            let mut r = r.clone();
            for v in &mut r.violations {
                match v {
                    Violation::KeyViolation { witnesses, .. } => {
                        *witnesses = (NodeId(0), NodeId(0))
                    }
                    Violation::InclusionViolation { witness, .. }
                    | Violation::MissingAttributes { witness, .. } => *witness = NodeId(0),
                    Violation::NegationUnsatisfied { .. } => {}
                }
            }
            r
        })
        .collect()
}

/// Serializes the session's surviving trees and validates them cold on one
/// thread — the monolithic oracle every sharded path must match.
fn cold_oracle(session: &CorpusSession) -> BatchReport {
    let docs: Vec<BatchDoc> = session
        .handles()
        .map(|h| {
            BatchDoc::new(
                session.label(h).unwrap(),
                write_document(session.tree(h).unwrap(), session.spec().dtd()),
            )
        })
        .collect();
    BatchEngine::new(1).validate_batch(session.spec(), &docs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Oracle 1: the shard-tagged commit stream is pure metadata — the
    /// session report stays byte-identical to a cold monolithic run, and
    /// every tag is a well-formed member of the spec's shard plan.
    #[test]
    fn sharded_commits_agree_with_the_cold_oracle(seed in 0u64..4096) {
        for (label, spec) in family_specs(seed | 1) {
            let Some(steps) = build_script(spec.dtd(), seed) else { continue };
            let plan = spec.shard_plan();
            let mut session = CorpusSession::new(&spec);
            let deltas = run_script(&mut session, &steps);

            let cold = cold_oracle(&session);
            prop_assert_eq!(
                erase_witnesses(&session.report()),
                erase_witnesses(&cold),
                "{}: sharded session diverged from the cold oracle", &label
            );

            for delta in &deltas {
                prop_assert!(
                    delta.shards.windows(2).all(|w| w[0] < w[1]),
                    "{}: delta tags not sorted/deduped: {:?}", &label, &delta.shards
                );
                for &s in &delta.shards {
                    prop_assert!((s as usize) < plan.num_shards(), "{}: tag out of range", &label);
                }
                for change in &delta.changes {
                    prop_assert!(!change.shards.is_empty(), "{}: untagged change", &label);
                    for &s in &change.shards {
                        prop_assert!(
                            delta.shards.contains(&s),
                            "{}: change tag {} missing from delta tags", &label, s
                        );
                    }
                }
                if !delta.closed.is_empty() {
                    // A close is shard-independent, so the delta must reach
                    // every filtered subscriber.
                    prop_assert_eq!(
                        delta.shards.len(), plan.num_shards(),
                        "{}: close not broadcast", &label
                    );
                }
            }
        }
    }

    /// Oracle 2: a shard-`k` replica fed only the `k`-projected deltas
    /// reconstructs the shard projection of the session report; the
    /// unfiltered replica reconstructs the full report from the same
    /// stream.
    #[test]
    fn filtered_replicas_reconstruct_the_shard_projection(seed in 0u64..4096) {
        for (label, spec) in family_specs(seed | 1) {
            let Some(steps) = build_script(spec.dtd(), seed) else { continue };
            let plan = spec.shard_plan();
            let mut session = CorpusSession::new(&spec);
            let mut full = CorpusReplica::new(spec.id());
            let mut filtered: Vec<CorpusReplica> = (0..plan.num_shards())
                .map(|k| CorpusReplica::new_sharded(spec.id(), k as u32))
                .collect();

            for delta in run_script(&mut session, &steps) {
                full.apply_delta(&delta).unwrap();
                for (k, replica) in filtered.iter_mut().enumerate() {
                    match delta.project(plan, k as u32) {
                        Some(projected) => replica.apply_delta(&projected).unwrap(),
                        None => prop_assert!(
                            !delta.touches_shard(k as u32),
                            "{}: projection dropped a touching delta", &label
                        ),
                    }
                }
            }

            let report = session.report();
            prop_assert_eq!(&full.report(), &report, "{}: full replica diverged", &label);
            for (k, replica) in filtered.iter().enumerate() {
                let oracle = project_report(&report, plan, k as u32);
                prop_assert_eq!(
                    &replica.report(), &oracle,
                    "{}: shard-{} replica diverged from the projected report", &label, k
                );
            }
        }
    }

    /// Oracle 3: a session scoped to shard `k` re-evaluates only `k`'s
    /// constraints yet reports exactly the `k`-projection of the unscoped
    /// session's report — the contract that makes fanned-out per-shard
    /// commits sound.
    #[test]
    fn scoped_sessions_agree_with_the_projected_report(seed in 0u64..4096) {
        for (label, spec) in family_specs(seed | 1) {
            let Some(steps) = build_script(spec.dtd(), seed) else { continue };
            let plan = spec.shard_plan();
            let mut session = CorpusSession::new(&spec);
            run_script(&mut session, &steps);
            let report = session.report();

            // Every shard is covered; cap the per-case fan-out so wide
            // random plans don't dominate the suite's runtime.
            for k in 0..plan.num_shards().min(4) {
                let mut scoped = CorpusSession::new(&spec);
                scoped.scope_to_shards(&[k as u32]);
                run_script(&mut scoped, &steps);
                let oracle = project_report(&report, plan, k as u32);
                prop_assert_eq!(
                    &scoped.report(), &oracle,
                    "{}: shard-{} scoped session diverged from the projection", &label, k
                );
            }
        }
    }
}
