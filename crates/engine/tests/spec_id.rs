//! Round-trip tests for the stable `SpecId` text form used in the wire
//! hello and the CLI `--spec-id` option.

use proptest::prelude::*;
use xic_engine::SpecId;

#[test]
fn display_is_stable_hex() {
    let id = SpecId(0x0123_4567_89ab_cdef, 0xfedc_ba98_7654_3210);
    assert_eq!(id.to_string(), "spec-0123456789abcdeffedcba9876543210");
}

#[test]
fn extreme_ids_roundtrip() {
    for id in [
        SpecId(0, 0),
        SpecId(u64::MAX, u64::MAX),
        SpecId(0, u64::MAX),
    ] {
        assert_eq!(id.to_string().parse::<SpecId>().unwrap(), id);
    }
}

#[test]
fn parse_accepts_bare_hex() {
    let id: SpecId = "0123456789abcdeffedcba9876543210".parse().unwrap();
    assert_eq!(id, SpecId(0x0123_4567_89ab_cdef, 0xfedc_ba98_7654_3210));
}

#[test]
fn parse_rejects_malformed_ids() {
    for bad in [
        "",
        "spec-",
        "spec-0123",
        "spec-0123456789abcdeffedcba987654321",   // 31 digits
        "spec-0123456789abcdeffedcba98765432100", // 33 digits
        "spec-0123456789abcdeffedcba987654321g",  // non-hex
        "id-0123456789abcdeffedcba9876543210",    // wrong prefix keeps 34 chars
    ] {
        assert!(bad.parse::<SpecId>().is_err(), "{bad:?} must not parse");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Display → FromStr is the identity for every id.
    #[test]
    fn display_fromstr_roundtrip(hi in 0u64..u64::MAX, lo in 0u64..u64::MAX) {
        let id = SpecId(hi, lo);
        let text = id.to_string();
        prop_assert!(text.starts_with("spec-"));
        prop_assert_eq!(text.len(), "spec-".len() + 32);
        let back: SpecId = text.parse().unwrap();
        prop_assert_eq!(back, id);
        // The bare-hex form (no prefix) parses to the same id.
        let bare: SpecId = text["spec-".len()..].parse().unwrap();
        prop_assert_eq!(bare, id);
    }
}
