//! Injected-fault testing of the resilience stack (`--features faults`).
//!
//! Every test here arms one or more of the engine's named failpoints (see
//! `xic_telemetry::faults`) and asserts the recover-or-reject contract:
//! after any injected fault the engine either absorbed it (transparent
//! retry), contained it (one quarantined document, everything else
//! unaffected), or rejected it with a structured error — **never a wrong
//! verdict and never a process abort**.
//!
//! The failpoint table is process-global and the production names
//! (`batch.doc`, `session.apply`, `journal.*`, …) are hit by every engine
//! call, so these tests serialize on one mutex: a failpoint armed by a
//! parallel test must never leak into another scenario.

#![cfg(feature = "faults")]

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use proptest::prelude::*;
use xic_engine::{
    BatchDoc, BatchEngine, CompiledSpec, CorpusSession, DocFault, Engine, Session, SessionError,
};
use xic_telemetry::faults::{self, FaultMode};
use xic_xml::{EditOp, NodeId};

const SCHOOL_DTD: &str = "<!ELEMENT school (teacher*)>\n\
     <!ELEMENT teacher EMPTY>\n\
     <!ATTLIST teacher name CDATA #REQUIRED>";

const CLEAN_DOC: &str = "<school><teacher name=\"Joe\"/></school>";

fn school_spec() -> CompiledSpec {
    CompiledSpec::from_sources(SCHOOL_DTD, Some("school"), "teacher.name -> teacher").unwrap()
}

/// Serializes fault-armed tests and clears the global failpoint table on
/// entry, so a scenario never sees a failpoint armed by its predecessor
/// (even one that failed mid-test).
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    faults::reset();
    guard
}

/// Runs `f` with the default panic hook silenced: the contained panics
/// these tests inject would otherwise spray backtraces over the output.
fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = f();
    std::panic::set_hook(prev);
    result
}

/// A per-test temp path (removed at the start so reruns start clean).
fn temp_log(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("xic-fault-{}-{name}.xicj", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// In a session over [`CLEAN_DOC`], node 1 is the only `teacher` element.
fn set_name(spec: &CompiledSpec, value: &str) -> EditOp {
    EditOp::SetAttr {
        element: NodeId(1),
        attr: spec.dtd().attr_by_name("name").unwrap(),
        value: value.to_string(),
    }
}

/// The PR's acceptance scenario: a batch with one injected panicking
/// document completes with that document Faulted and every other report
/// byte-identical to a fault-free run.
#[test]
fn batch_panic_quarantines_one_doc_and_leaves_others_byte_identical() {
    let _guard = serial();
    let spec = school_spec();
    let docs = vec![
        BatchDoc::new("clean.xml", CLEAN_DOC),
        BatchDoc::new(
            "dup.xml",
            "<school><teacher name=\"Joe\"/><teacher name=\"Joe\"/></school>",
        ),
        BatchDoc::new("broken.xml", "<school><teacher name=\"Joe\"/>"),
        BatchDoc::new("clean2.xml", "<school><teacher name=\"Ann\"/></school>"),
    ];
    // One worker: documents are processed in submission order, so Nth(2)
    // deterministically fells `dup.xml` and nothing else.
    let engine = BatchEngine::new(1);
    let baseline = engine.validate_batch(&spec, &docs);
    assert_eq!(baseline.panicked_count(), 0);

    faults::configure("batch.doc", FaultMode::Nth(2));
    let faulted = quiet_panics(|| engine.validate_batch(&spec, &docs));
    faults::disarm("batch.doc");

    assert_eq!(faulted.total(), baseline.total());
    assert_eq!(faulted.panicked_count(), 1);
    let bad = &faulted.reports()[1];
    assert!(bad.is_panicked(), "{bad:?}");
    assert!(
        bad.fault
            .as_ref()
            .unwrap()
            .cause()
            .contains("injected fault: batch.doc"),
        "{bad:?}"
    );
    for i in [0, 2, 3] {
        assert_eq!(
            faulted.reports()[i],
            baseline.reports()[i],
            "report {i} must be byte-identical to the fault-free run"
        );
    }
}

#[test]
fn session_apply_panic_poisons_and_recover_rebuilds() {
    let _guard = serial();
    let spec = school_spec();
    let mut session = Session::new(&spec);
    let h = session.open_source(CLEAN_DOC).unwrap();
    session.apply(h, &[set_name(&spec, "Ann")]).unwrap();

    faults::configure("session.apply", FaultMode::Nth(1));
    let err = quiet_panics(|| session.apply(h, &[set_name(&spec, "Bob")])).unwrap_err();
    assert!(matches!(err, SessionError::Poisoned { .. }), "{err}");
    assert!(session.is_poisoned(h).unwrap());

    // Quarantine holds on its own — no failpoint needed to refuse edits.
    let again = session.apply(h, &[set_name(&spec, "Eve")]).unwrap_err();
    assert!(matches!(again, SessionError::Poisoned { .. }), "{again}");

    // Recovery replays exactly the recorded history: "Ann" landed before
    // the panic, the poisoned batch ("Bob") did not.
    let verdict = session.recover(h).unwrap();
    assert!(verdict.is_clean());
    assert!(!session.is_poisoned(h).unwrap());
    let name = spec.dtd().attr_by_name("name").unwrap();
    assert_eq!(
        session.tree(h).unwrap().attr_value(NodeId(1), name),
        Some("Ann")
    );

    // And the document accepts edits again.
    session.apply(h, &[set_name(&spec, "Bob")]).unwrap();
    assert_eq!(
        session.tree(h).unwrap().attr_value(NodeId(1), name),
        Some("Bob")
    );
}

#[test]
fn corpus_recheck_panic_retries_then_quarantines_then_heals() {
    let _guard = serial();
    let spec = school_spec();
    let mut corpus = CorpusSession::new(&spec);
    let h = corpus.open_source("a.xml", CLEAN_DOC).unwrap();
    corpus.commit();

    // One transient panic: the recheck retries after an index rebuild and
    // the commit still produces a verdict.
    corpus.apply(h, &[set_name(&spec, "Ann")]).unwrap();
    faults::configure("corpus.recheck", FaultMode::Nth(1));
    quiet_panics(|| corpus.commit());
    faults::disarm("corpus.recheck");
    let report = corpus.report();
    assert_eq!(
        report.panicked_count(),
        0,
        "one panic must be absorbed by the retry"
    );
    assert!(report.reports()[0].is_clean());

    // A persistent panic (the retry fires too) quarantines the document
    // instead of taking the commit down.
    corpus.apply(h, &[set_name(&spec, "Bob")]).unwrap();
    faults::configure(
        "corpus.recheck",
        FaultMode::Probability {
            seed: 1,
            permille: 1000,
        },
    );
    let delta = quiet_panics(|| corpus.commit());
    faults::disarm("corpus.recheck");
    let change = delta
        .changes
        .iter()
        .find(|c| c.handle == h)
        .expect("the fault is a reported transition");
    assert!(
        matches!(change.report.fault, Some(DocFault::Panic { .. })),
        "{:?}",
        change.report
    );

    // Once the panic source is gone, the next commit heals the verdict.
    corpus.apply(h, &[set_name(&spec, "Eve")]).unwrap();
    let delta = corpus.commit();
    let change = delta.changes.iter().find(|c| c.handle == h).unwrap();
    assert!(change.report.fault.is_none(), "{:?}", change.report);
    assert!(corpus.report().reports()[0].is_clean());
}

#[test]
fn transient_journal_io_faults_are_retried_to_success() {
    let _guard = serial();
    let spec = school_spec();
    let path = temp_log("retry");
    let mut session = Session::new(&spec);
    let h = session.open_source(CLEAN_DOC).unwrap();

    // Fresh write and its sync each absorb one transient fault.
    faults::configure("journal.write", FaultMode::Nth(1));
    faults::configure("journal.sync", FaultMode::Nth(1));
    session
        .persist_to(h, &path)
        .expect("one Interrupted per stage is retried");
    assert_eq!(faults::fired("journal.write"), 1);
    assert_eq!(faults::fired("journal.sync"), 1);

    // So does the append path.
    session.apply(h, &[set_name(&spec, "Ann")]).unwrap();
    faults::configure("journal.append", FaultMode::Nth(1));
    session
        .persist_to(h, &path)
        .expect("append retries transient faults");
    assert_eq!(faults::fired("journal.append"), 1);
    faults::reset();

    // The log the retries produced recovers into the exact live state.
    let mut replica = Session::new(&spec);
    let recovery = replica.recover_from(&path).unwrap();
    let name = spec.dtd().attr_by_name("name").unwrap();
    assert_eq!(
        replica
            .tree(recovery.handle)
            .unwrap()
            .attr_value(NodeId(1), name),
        Some("Ann")
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn snapshot_encode_fault_is_a_structured_error_and_the_path_survives() {
    let _guard = serial();
    let spec = school_spec();
    let path = temp_log("snap");
    let mut session = Session::new(&spec);
    let h = session.open_source(CLEAN_DOC).unwrap();

    faults::configure("journal.snapshot_encode", FaultMode::Nth(1));
    let err = session.persist_to(h, &path).unwrap_err();
    faults::reset();
    assert!(
        err.to_string()
            .contains("injected fault: journal.snapshot_encode"),
        "{err}"
    );
    // The fault fired before any byte landed, so the path is still fresh
    // and the retry persists (and recovers) normally.
    session.persist_to(h, &path).unwrap();
    let mut replica = Session::new(&spec);
    assert!(replica.recover_from(&path).is_ok());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn exhausted_io_retries_reject_and_keep_the_durable_prefix() {
    let _guard = serial();
    let spec = school_spec();
    let path = temp_log("exhaust");
    let mut session = Session::new(&spec);
    let h = session.open_source(CLEAN_DOC).unwrap();
    session.persist_to(h, &path).unwrap();

    // Every retry attempt faults: the persist surfaces a structured error.
    session.apply(h, &[set_name(&spec, "Ann")]).unwrap();
    faults::configure(
        "journal.append",
        FaultMode::Probability {
            seed: 7,
            permille: 1000,
        },
    );
    let err = session.persist_to(h, &path).unwrap_err();
    faults::reset();
    assert!(
        err.to_string().contains("injected fault: journal.append"),
        "{err}"
    );

    // The durable prefix is unharmed: recovery yields the pre-edit state.
    let name = spec.dtd().attr_by_name("name").unwrap();
    let mut replica = Session::new(&spec);
    let recovery = replica.recover_from(&path).unwrap();
    assert_eq!(
        replica
            .tree(recovery.handle)
            .unwrap()
            .attr_value(NodeId(1), name),
        Some("Joe")
    );

    // And a later, fault-free persist catches the log up.
    session.persist_to(h, &path).unwrap();
    let mut replica = Session::new(&spec);
    let recovery = replica.recover_from(&path).unwrap();
    assert_eq!(
        replica
            .tree(recovery.handle)
            .unwrap()
            .attr_value(NodeId(1), name),
        Some("Ann")
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn cache_insert_fault_degrades_to_a_miss_not_a_wrong_verdict() {
    let _guard = serial();
    let spec = school_spec();
    let engine = Engine::new();

    faults::configure(
        "cache.insert",
        FaultMode::Probability {
            seed: 3,
            permille: 1000,
        },
    );
    let first = engine.consistency(&spec);
    let second = engine.consistency(&spec);
    faults::disarm("cache.insert");
    // Skipped inserts cost misses, never answers.
    assert_eq!(second.decision(), first.decision());
    let stats = engine.cache().stats();
    assert_eq!(stats.entries, 0, "every insert was degraded to a no-op");
    assert_eq!(stats.misses, 2);

    // With the failpoint cleared the cache resumes filling.
    let third = engine.consistency(&spec);
    assert_eq!(third.decision(), first.decision());
    assert_eq!(engine.cache().stats().entries, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Seeded probability faults across every journal failpoint, against a
    /// growing edit history: each persist attempt either succeeds or
    /// rejects with a structured error, and a subsequent fault-free
    /// persist + recovery always reproduces the exact live state — never
    /// a wrong verdict.
    #[test]
    fn journal_faults_recover_or_reject(
        seed in 0u64..10_000,
        permille in 0u32..1001,
        edits in 1usize..6,
    ) {
        let _guard = serial();
        let spec = school_spec();
        let path = temp_log(&format!("prop-{seed}-{permille}-{edits}"));
        let mut session = Session::new(&spec);
        let h = session.open_source(CLEAN_DOC).unwrap();
        let name = spec.dtd().attr_by_name("name").unwrap();

        for i in 0..edits {
            let value = format!("v{seed}-{i}");
            session.apply(h, &[set_name(&spec, &value)]).unwrap();
            for point in [
                "journal.write",
                "journal.append",
                "journal.sync",
                "journal.snapshot_encode",
            ] {
                faults::configure(
                    point,
                    FaultMode::Probability { seed: seed.wrapping_add(i as u64), permille },
                );
            }
            // Faulted attempt: success or structured rejection, never a
            // panic (a panic would fail the test on its own).
            let _ = session.persist_to(h, &path);
            faults::reset();

            // Fault-free persist must always complete from whatever state
            // the faulted attempt left behind, and recovery must replay
            // the live document exactly.
            session.persist_to(h, &path).unwrap();
            let mut replica = Session::new(&spec);
            let recovery = replica.recover_from(&path).unwrap();
            prop_assert_eq!(
                replica.tree(recovery.handle).unwrap().attr_value(NodeId(1), name),
                session.tree(h).unwrap().attr_value(NodeId(1), name)
            );
        }
        let _ = std::fs::remove_file(&path);
    }
}
