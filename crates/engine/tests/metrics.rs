//! End-to-end metrics coverage: sessions, corpora, the cache and the
//! journal all record into a shared registry, and [`EngineMetrics`]
//! snapshots cover the full instrument inventory.
//!
//! Everything here runs on **private** registries (or asserts only
//! monotone facts about the global one), so the suite stays correct under
//! `cargo test` thread interleaving.

#![cfg(not(feature = "telemetry-off"))]

use std::sync::Arc;

use xic_engine::{
    BatchDoc, BatchEngine, CompiledSpec, CorpusSession, Engine, EngineMetrics, Transition,
};
use xic_telemetry::MetricsRegistry;
use xic_xml::EditOp;

fn spec() -> CompiledSpec {
    CompiledSpec::from_sources(
        "<!ELEMENT school (teacher*)>\n\
         <!ELEMENT teacher EMPTY>\n\
         <!ATTLIST teacher name CDATA #REQUIRED>",
        Some("school"),
        "teacher.name -> teacher",
    )
    .unwrap()
}

const CLEAN: &str = "<school><teacher name=\"Joe\"/><teacher name=\"Ann\"/></school>";
const DUP: &str = "<school><teacher name=\"Joe\"/><teacher name=\"Joe\"/></school>";

#[test]
fn corpus_session_records_commit_metrics_on_its_registry() {
    let spec = spec();
    let registry = Arc::new(MetricsRegistry::new());
    let mut corpus = CorpusSession::with_registry(&spec, Arc::clone(&registry));

    let a = corpus.open_source("a", CLEAN).unwrap();
    let _b = corpus.open_source("b", DUP).unwrap();
    let snapshot = registry.snapshot();
    assert_eq!(snapshot.gauge("corpus.open_docs"), Some(2));
    assert_eq!(snapshot.gauge("corpus.dirty_docs"), Some(2));

    let delta = corpus.commit();
    // Both documents opened; one violates the key.
    let summary = delta.summary();
    assert_eq!(summary.docs_changed, 2);
    assert_eq!(summary.opened, 2);
    assert_eq!(summary.violations_now, 1);
    assert_eq!(
        delta.changes[0].transition(),
        Transition::OpenedClean,
        "doc a opened clean"
    );
    assert_eq!(delta.changes[1].transition(), Transition::OpenedViolating);

    // Rename Ann -> Joe: a flips clean -> violating.
    let tree = corpus.tree(a).unwrap();
    let teacher = tree.elements().nth(2).expect("two teacher elements");
    let attr = spec.dtd().attr_by_name("name").unwrap();
    corpus
        .apply(
            a,
            &[EditOp::SetAttr {
                element: teacher,
                attr,
                value: "Joe".into(),
            }],
        )
        .unwrap();
    let snapshot = registry.snapshot();
    assert_eq!(snapshot.counter("corpus.edits"), Some(1));
    assert_eq!(snapshot.gauge("corpus.queued_ops"), Some(1));
    assert_eq!(snapshot.gauge("corpus.dirty_docs"), Some(1));

    let delta = corpus.commit();
    assert_eq!(delta.changes[0].transition(), Transition::ToViolating);
    assert!(delta.changes[0].transition().is_flip());
    assert_eq!(delta.summary().flips(), 1);

    let snapshot = registry.snapshot();
    assert_eq!(snapshot.counter("corpus.commits"), Some(2));
    // First commit surfaced one violating doc, the second another.
    assert_eq!(snapshot.counter("corpus.violations_added"), Some(2));
    assert_eq!(snapshot.counter("corpus.violations_removed"), Some(0));
    assert_eq!(snapshot.gauge("corpus.dirty_docs"), Some(0));
    assert_eq!(snapshot.gauge("corpus.queued_ops"), Some(0));
    let commit_ns = snapshot.histogram("corpus.commit_ns").unwrap();
    assert_eq!(commit_ns.count, 2);
    let recheck = snapshot.histogram("corpus.recheck_ns").unwrap();
    assert_eq!(recheck.count, 3, "two opens + one re-check");
    let delta_changes = snapshot.histogram("corpus.delta_changes").unwrap();
    assert_eq!(delta_changes.count, 2);
}

#[test]
fn engine_with_registry_exposes_cache_traffic() {
    let spec = spec();
    let registry = Arc::new(MetricsRegistry::new());
    let engine = Engine::with_registry(16, Arc::clone(&registry));
    let first = engine.consistency(&spec);
    let again = engine.consistency(&spec);
    assert_eq!(first, again);

    let snapshot = registry.snapshot();
    assert_eq!(snapshot.counter("cache.hits"), Some(1));
    assert_eq!(snapshot.counter("cache.misses"), Some(1));
    assert_eq!(snapshot.counter("cache.inserts"), Some(1));
    assert_eq!(snapshot.gauge("cache.entries"), Some(1));
    // The per-spec breakdown names the spec id.
    assert_eq!(
        snapshot.counter(&format!("cache.hits.{}", spec.id())),
        Some(1)
    );
    // The stats() shim reads the same instruments.
    let stats = engine.cache().stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));
}

#[test]
fn journal_persist_and_read_record_global_counters() {
    // The journal records on the process-global registry (journals are
    // process-wide resources), so assert monotone deltas, not absolutes.
    let spec = spec();
    let registry = EngineMetrics::global_registry();
    let before = registry.snapshot();
    let bytes_before = before.counter("journal.bytes_written").unwrap_or(0);
    let appended_before = before.counter("journal.records_appended").unwrap_or(0);
    let read_before = before.counter("journal.records_read").unwrap_or(0);

    let mut session = xic_engine::Session::new(&spec);
    let doc = session.open_source(CLEAN).unwrap();
    let mut path = std::env::temp_dir();
    path.push(format!("xic-metrics-test-{}.xicj", std::process::id()));
    session.persist_to(doc, &path).unwrap();
    xic_engine::read_session_log(&path, spec.id()).unwrap();
    std::fs::remove_file(&path).ok();

    let after = registry.snapshot();
    assert!(after.counter("journal.bytes_written").unwrap() > bytes_before);
    assert!(after.counter("journal.records_appended").unwrap() > appended_before);
    assert!(after.counter("journal.records_read").unwrap() > read_before);
}

#[test]
fn batch_engine_counts_documents_globally() {
    let spec = spec();
    let registry = EngineMetrics::global_registry();
    let before = registry.snapshot().counter("batch.docs").unwrap_or(0);
    let docs = vec![BatchDoc::new("a", CLEAN), BatchDoc::new("b", DUP)];
    let report = BatchEngine::new(2).validate_batch(&spec, &docs);
    assert_eq!(report.clean_count(), 1);
    let after = registry.snapshot().counter("batch.docs").unwrap();
    assert!(after >= before + 2);
}

#[test]
fn capture_covers_the_full_inventory_even_when_idle() {
    let registry = MetricsRegistry::new();
    let metrics = EngineMetrics::capture(&registry);
    for name in [
        "cache.hits",
        "corpus.commits",
        "journal.bytes_written",
        "batch.docs",
        "session.edits",
    ] {
        assert_eq!(metrics.snapshot.counter(name), Some(0), "{name}");
    }
    for name in ["corpus.commit_ns", "journal.persist_ns", "session.apply_ns"] {
        assert!(metrics.snapshot.histogram(name).is_some(), "{name}");
    }
    let text = metrics.render_text();
    assert!(text.contains("journal.persist_ns"));
}
