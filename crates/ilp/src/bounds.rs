//! Solution-size bounds for integer programs.
//!
//! The paper's NP membership proofs (Theorem 4.1, Lemma 5.3) rely on
//! Papadimitriou's theorem: if an integer program `A x ≥ b` with `m` rows,
//! `n` columns and largest absolute constant `a` has a non-negative integer
//! solution, then it has one in which every component is at most
//! `n · (m · a)^{2m+1}`.  The paper also derives from this the constant `c`
//! used to rewrite the conditional constraints `x > 0 → y > 0` as `c·y ≥ x`.

use crate::bignum::BigInt;
use crate::linear::IntegerProgram;

/// Papadimitriou's bound `n (m a)^{2m+1}` for a system with `n` variables,
/// `m` constraints and maximum absolute integer constant `a`.
pub fn papadimitriou_bound(num_vars: usize, num_constraints: usize, max_abs: &BigInt) -> BigInt {
    let n = BigInt::from(num_vars.max(1));
    let m = BigInt::from(num_constraints.max(1));
    let a = if max_abs.is_zero() {
        BigInt::one()
    } else {
        max_abs.abs()
    };
    let base = &m * &a;
    let exp = 2 * (num_constraints as u64) + 1;
    &n * &base.pow(exp)
}

/// The bound for a concrete program, taking `a` from its scaled coefficients.
///
/// Conditional constraints are counted as one extra row each, matching the
/// paper's big-constant rewriting which adds one inequality per conditional.
pub fn program_bound(program: &IntegerProgram) -> BigInt {
    let m = program.num_constraints() + program.num_conditionals();
    papadimitriou_bound(program.num_vars(), m, &program.max_abs_coefficient())
}

/// The constant `c` of Theorem 4.1: a number whose binary representation has
/// `1 + ⌈log n + (2m+1)·log(m·a)⌉` ones, i.e. `2^k - 1` for that many bits.
/// Any integer solution, if one exists, is bounded by `c`, so `c·y ≥ x`
/// faithfully encodes `x > 0 → y > 0` over the solutions that matter.
pub fn big_constant(num_vars: usize, num_constraints: usize, max_abs: &BigInt) -> BigInt {
    // We take the slightly larger but simpler-to-compute value
    // 2^(bits(papadimitriou_bound)+1) - 1, which is >= the paper's c and
    // therefore equally sound.
    let bound = papadimitriou_bound(num_vars, num_constraints, max_abs);
    let bits = bound.bits() + 1;
    &BigInt::from(2i64).pow(bits) - &BigInt::one()
}

/// The big constant for a concrete program.
pub fn program_big_constant(program: &IntegerProgram) -> BigInt {
    let m = program.num_constraints() + program.num_conditionals();
    big_constant(program.num_vars(), m, &program.max_abs_coefficient())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::{IntegerProgram, LinExpr};
    use crate::rational::Rational;

    #[test]
    fn bound_is_monotone_in_size() {
        let a = BigInt::from(3i64);
        let b1 = papadimitriou_bound(2, 2, &a);
        let b2 = papadimitriou_bound(4, 2, &a);
        let b3 = papadimitriou_bound(2, 4, &a);
        assert!(b2 > b1);
        assert!(b3 > b1);
    }

    #[test]
    fn bound_small_system() {
        // n = 2, m = 1, a = 2: 2 * (1*2)^3 = 16.
        assert_eq!(
            papadimitriou_bound(2, 1, &BigInt::from(2i64)),
            BigInt::from(16i64)
        );
    }

    #[test]
    fn bound_handles_zero_inputs() {
        let b = papadimitriou_bound(0, 0, &BigInt::zero());
        assert!(b >= BigInt::one());
    }

    #[test]
    fn big_constant_dominates_bound() {
        let a = BigInt::from(5i64);
        let bound = papadimitriou_bound(3, 2, &a);
        let c = big_constant(3, 2, &a);
        assert!(c >= bound);
    }

    #[test]
    fn program_bound_uses_coefficients() {
        let mut p = IntegerProgram::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        let mut e = LinExpr::term(Rational::from_int(7i64), x);
        e.add_term(y, Rational::from_int(-2i64));
        p.add_eq(e, Rational::from_int(3i64), "row");
        let b = program_bound(&p);
        // n=2, m=1, a=7: 2*(7)^3 = 686.
        assert_eq!(b, BigInt::from(686i64));
        assert!(program_big_constant(&p) >= b);
    }
}
