//! Brute-force bounded enumeration of integer assignments.
//!
//! This module exists for differential testing: on small boxes it enumerates
//! every assignment and checks it against the program, giving a slow but
//! obviously-correct oracle against which the branch-and-bound solver is
//! property-tested.

use crate::bignum::BigInt;
use crate::linear::{Assignment, IntegerProgram};

/// Exhaustively searches assignments with every variable in
/// `[lower, min(upper, box_bound)]` and returns the first satisfying one.
///
/// Returns `None` if no assignment within the box satisfies the program; note
/// this only witnesses infeasibility *within the box*.
pub fn enumerate_feasible(program: &IntegerProgram, box_bound: u64) -> Option<Assignment> {
    let n = program.num_vars();
    let lowers: Vec<i128> = program
        .vars()
        .iter()
        .map(|v| v.lower.to_i64().map(i128::from).unwrap_or(0))
        .collect();
    let uppers: Vec<i128> = program
        .vars()
        .iter()
        .enumerate()
        .map(|(j, v)| {
            let cap = lowers[j].max(0) + box_bound as i128;
            match &v.upper {
                Some(u) => u.to_i64().map(i128::from).unwrap_or(cap).min(cap),
                None => cap,
            }
        })
        .collect();
    if n == 0 {
        let a = Assignment::zeros(0);
        return if program.is_satisfied_by(&a) {
            Some(a)
        } else {
            None
        };
    }
    let mut current: Vec<i128> = lowers.clone();
    loop {
        let assignment = Assignment::new(current.iter().map(|&v| BigInt::from(v as i64)).collect());
        if program.is_satisfied_by(&assignment) {
            return Some(assignment);
        }
        // Increment the mixed-radix counter.
        let mut idx = 0;
        loop {
            if idx == n {
                return None;
            }
            if current[idx] < uppers[idx] {
                current[idx] += 1;
                break;
            }
            current[idx] = lowers[idx];
            idx += 1;
        }
    }
}

/// Counts all satisfying assignments within the box (used in tests to verify
/// the solver does not miss solutions that exist).
pub fn count_feasible(program: &IntegerProgram, box_bound: u64) -> u64 {
    let n = program.num_vars();
    if n == 0 {
        return u64::from(program.is_satisfied_by(&Assignment::zeros(0)));
    }
    let lowers: Vec<i128> = program
        .vars()
        .iter()
        .map(|v| v.lower.to_i64().map(i128::from).unwrap_or(0))
        .collect();
    let uppers: Vec<i128> = program
        .vars()
        .iter()
        .enumerate()
        .map(|(j, v)| {
            let cap = lowers[j].max(0) + box_bound as i128;
            match &v.upper {
                Some(u) => u.to_i64().map(i128::from).unwrap_or(cap).min(cap),
                None => cap,
            }
        })
        .collect();
    let mut current = lowers.clone();
    let mut count = 0u64;
    loop {
        let assignment = Assignment::new(current.iter().map(|&v| BigInt::from(v as i64)).collect());
        if program.is_satisfied_by(&assignment) {
            count += 1;
        }
        let mut idx = 0;
        loop {
            if idx == n {
                return count;
            }
            if current[idx] < uppers[idx] {
                current[idx] += 1;
                break;
            }
            current[idx] = lowers[idx];
            idx += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinExpr;
    use crate::rational::Rational;

    #[test]
    fn finds_solution_in_box() {
        let mut p = IntegerProgram::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        let mut e = LinExpr::var(x);
        e.add_term(y, Rational::from_int(2i64));
        p.add_eq(e, Rational::from_int(4i64), "x+2y=4");
        let a = enumerate_feasible(&p, 5).expect("feasible in box");
        assert!(p.is_satisfied_by(&a));
    }

    #[test]
    fn reports_no_solution_in_box() {
        let mut p = IntegerProgram::new();
        let x = p.add_var("x");
        p.add_ge(LinExpr::var(x), Rational::from_int(100i64), "x>=100");
        assert!(enumerate_feasible(&p, 5).is_none());
    }

    #[test]
    fn counts_solutions() {
        // x + y = 3 with x, y in [0, 3]: 4 solutions.
        let mut p = IntegerProgram::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        let mut e = LinExpr::var(x);
        e.add_term(y, Rational::one());
        p.add_eq(e, Rational::from_int(3i64), "sum");
        assert_eq!(count_feasible(&p, 3), 4);
    }

    #[test]
    fn respects_conditionals() {
        // y <= 0 and x > 0 -> y > 0 forces x = 0; in box [0,2]^2 the solutions
        // are (0,0) only.
        let mut p = IntegerProgram::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.add_le(LinExpr::var(y), Rational::zero(), "y<=0");
        p.add_conditional(x, y, "x→y");
        assert_eq!(count_feasible(&p, 2), 1);
    }
}
