//! Branch-and-bound integer feasibility solver.
//!
//! The consistency procedures of the paper reduce an XML specification to the
//! question "does this system of linear integer constraints (plus conditional
//! constraints `x > 0 → y > 0`) have a non-negative integer solution?".  This
//! module answers that question with a classic LP-relaxation branch-and-bound
//! search over the exact [`crate::simplex`] engine.
//!
//! Conditional constraints can be treated in two ways, mirroring the paper:
//!
//! * [`ConditionalMode::Branch`] — case analysis `(x = 0) ∨ (y ≥ 1)`, i.e.
//!   the subset enumeration of Theorem 4.1 organised as branching;
//! * [`ConditionalMode::BigConstant`] — the paper's single-system rewriting
//!   `c · y ≥ x` with `c` taken from the Papadimitriou bound.
//!
//! The solver prefers small solutions (it minimises the sum of all variables
//! at every LP relaxation), which keeps synthesized witness documents small.

use crate::bignum::BigInt;
use crate::bounds::program_big_constant;
use crate::linear::{Assignment, CmpOp, IntegerProgram, VarId};
use crate::rational::Rational;
use crate::simplex::{self, LpOutcome, LpProblem, LpRow};

/// How conditional constraints `x > 0 → y > 0` are handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConditionalMode {
    /// Branch on `(x = 0) ∨ (y ≥ 1)` (default; usually much faster).
    Branch,
    /// Rewrite as `c · y ≥ x` with the Papadimitriou-derived big constant
    /// (the paper's Theorem 4.1 encoding, kept for fidelity and ablation).
    BigConstant,
}

/// Solver configuration.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Maximum number of branch-and-bound nodes before giving up with
    /// [`SolveOutcome::Unknown`].
    pub max_nodes: usize,
    /// Treatment of conditional constraints.
    pub conditional_mode: ConditionalMode,
    /// Optional global upper bound applied to every variable that has none.
    /// `None` leaves unbounded variables unbounded (the LP relaxation and the
    /// small-solution preference keep practical searches finite).
    pub global_upper_bound: Option<BigInt>,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            max_nodes: 100_000,
            conditional_mode: ConditionalMode::Branch,
            global_upper_bound: None,
        }
    }
}

/// Result of an integer feasibility check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveOutcome {
    /// A satisfying integer assignment was found.
    Feasible(Assignment),
    /// The system has no non-negative integer solution.
    Infeasible,
    /// The search hit its resource limit before reaching a conclusion.
    Unknown(String),
}

impl SolveOutcome {
    /// Returns the assignment if feasible.
    pub fn assignment(&self) -> Option<&Assignment> {
        match self {
            SolveOutcome::Feasible(a) => Some(a),
            _ => None,
        }
    }

    /// Returns `true` iff the outcome is [`SolveOutcome::Feasible`].
    pub fn is_feasible(&self) -> bool {
        matches!(self, SolveOutcome::Feasible(_))
    }

    /// Returns `true` iff the outcome is [`SolveOutcome::Infeasible`].
    pub fn is_infeasible(&self) -> bool {
        matches!(self, SolveOutcome::Infeasible)
    }
}

/// Search statistics, reported alongside outcomes for the bench harness.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
    /// LP relaxations solved.
    pub lp_calls: usize,
    /// Nodes pruned by LP infeasibility.
    pub pruned_infeasible: usize,
}

/// Branch-and-bound ILP feasibility solver.
#[derive(Debug, Clone, Default)]
pub struct IlpSolver {
    config: SolverConfig,
}

/// One synthesized relaxation row: terms, comparison, right-hand side.
type ExtraRow = (Vec<(VarId, Rational)>, CmpOp, Rational);

/// Per-variable search-node state.
#[derive(Debug, Clone)]
struct Node {
    lower: Vec<BigInt>,
    upper: Vec<Option<BigInt>>,
}

impl IlpSolver {
    /// Creates a solver with the default configuration.
    pub fn new() -> IlpSolver {
        IlpSolver::default()
    }

    /// Creates a solver with an explicit configuration.
    pub fn with_config(config: SolverConfig) -> IlpSolver {
        IlpSolver { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Decides integer feasibility of `program`.
    pub fn solve(&self, program: &IntegerProgram) -> SolveOutcome {
        self.solve_with_stats(program).0
    }

    /// Decides integer feasibility and reports search statistics.
    pub fn solve_with_stats(&self, program: &IntegerProgram) -> (SolveOutcome, SolveStats) {
        let mut stats = SolveStats::default();
        let n = program.num_vars();

        // Trivial case: no variables.
        if n == 0 {
            let empty = Assignment::zeros(0);
            let ok = program.constraints().iter().all(|c| c.holds(&empty))
                && program.conditionals().iter().all(|c| c.holds(&empty));
            return (
                if ok {
                    SolveOutcome::Feasible(empty)
                } else {
                    SolveOutcome::Infeasible
                },
                stats,
            );
        }

        // Presolve: per-row gcd test on pure-integer equality rows.
        if let Some(reason) = gcd_infeasibility(program) {
            let _ = reason;
            return (SolveOutcome::Infeasible, stats);
        }

        // Extra rows for the big-constant treatment of conditionals.
        let mut extra_rows: Vec<ExtraRow> = Vec::new();
        if self.config.conditional_mode == ConditionalMode::BigConstant
            && program.num_conditionals() > 0
        {
            let c = Rational::from(program_big_constant(program));
            for cond in program.conditionals() {
                // c * consequent - antecedent >= 0
                extra_rows.push((
                    vec![
                        (cond.consequent, c.clone()),
                        (cond.antecedent, -Rational::one()),
                    ],
                    CmpOp::Ge,
                    Rational::zero(),
                ));
            }
        }

        // Root node bounds.
        let root = Node {
            lower: program.vars().iter().map(|v| v.lower.clone()).collect(),
            upper: program
                .vars()
                .iter()
                .map(|v| {
                    v.upper
                        .clone()
                        .or_else(|| self.config.global_upper_bound.clone())
                })
                .collect(),
        };

        let mut stack = vec![root];
        while let Some(node) = stack.pop() {
            if stats.nodes >= self.config.max_nodes {
                return (
                    SolveOutcome::Unknown(format!(
                        "node limit of {} reached after {} LP relaxations",
                        self.config.max_nodes, stats.lp_calls
                    )),
                    stats,
                );
            }
            stats.nodes += 1;

            // Quick bound sanity check.
            if node
                .lower
                .iter()
                .zip(&node.upper)
                .any(|(l, u)| matches!(u, Some(u) if u < l))
            {
                stats.pruned_infeasible += 1;
                continue;
            }

            // Solve the LP relaxation for this node.
            stats.lp_calls += 1;
            let lp = build_relaxation(program, &node, &extra_rows);
            let outcome = simplex::solve(&lp);
            let values = match outcome {
                LpOutcome::Infeasible => {
                    stats.pruned_infeasible += 1;
                    continue;
                }
                LpOutcome::Unbounded => {
                    // Feasibility objective (minimise sum of non-negative
                    // variables) cannot be unbounded; treat defensively as a
                    // vertex at the lower bounds.
                    vec![Rational::zero(); n]
                }
                LpOutcome::Optimal { values, .. } => values,
            };
            // Translate shifted LP values back to original variable space.
            let abs_values: Vec<Rational> = values
                .iter()
                .enumerate()
                .map(|(j, v)| v + &Rational::from(node.lower[j].clone()))
                .collect();

            // Find a fractional variable to branch on.
            if let Some(j) = abs_values.iter().position(|v| !v.is_integer()) {
                let v = &abs_values[j];
                let floor = v.floor();
                let ceil = v.ceil();
                // Explore the "down" child first (prefer small solutions):
                // push "up" first so "down" is popped next.
                let mut up = node.clone();
                let new_lower = if ceil > up.lower[j] {
                    ceil
                } else {
                    up.lower[j].clone()
                };
                up.lower[j] = new_lower;
                stack.push(up);
                let mut down = node.clone();
                let new_upper = match &down.upper[j] {
                    Some(u) if *u < floor => u.clone(),
                    _ => floor,
                };
                down.upper[j] = Some(new_upper);
                stack.push(down);
                continue;
            }

            // All values integral: candidate assignment.
            let candidate = Assignment::new(
                abs_values
                    .iter()
                    .map(|v| v.to_integer().expect("integral"))
                    .collect(),
            );

            // Check conditionals (only relevant in Branch mode; in BigConstant
            // mode they hold by construction but we verify anyway).
            let violated = program
                .conditionals()
                .iter()
                .position(|c| !c.holds(&candidate));
            if let Some(idx) = violated {
                let cond = &program.conditionals()[idx];
                // Case B: consequent >= 1.
                let mut pos = node.clone();
                if pos.lower[cond.consequent.index()] < BigInt::one() {
                    pos.lower[cond.consequent.index()] = BigInt::one();
                }
                stack.push(pos);
                // Case A: antecedent = 0.
                let mut zero = node.clone();
                zero.upper[cond.antecedent.index()] = Some(BigInt::zero());
                stack.push(zero);
                continue;
            }

            // Full verification against the original program (defensive).
            if program.is_satisfied_by(&candidate) {
                return (SolveOutcome::Feasible(candidate), stats);
            }
            // An integral LP vertex that fails verification indicates the node
            // constraints were weaker than the program (should not happen);
            // continue searching defensively.
        }

        (SolveOutcome::Infeasible, stats)
    }
}

/// Builds the LP relaxation of `program` at a node, substituting
/// `x_j = lower_j + x'_j` so the LP variables are all non-negative, and
/// adding `x'_j <= upper_j - lower_j` rows for bounded variables.
fn build_relaxation(program: &IntegerProgram, node: &Node, extra_rows: &[ExtraRow]) -> LpProblem {
    let n = program.num_vars();
    let mut rows = Vec::with_capacity(program.num_constraints() + n + extra_rows.len());

    let mut push_row =
        |terms: &mut dyn Iterator<Item = (VarId, Rational)>, op: CmpOp, rhs: Rational| {
            let mut coeffs = vec![Rational::zero(); n];
            let mut shift = Rational::zero();
            for (v, c) in terms {
                shift += &(&c * &Rational::from(node.lower[v.index()].clone()));
                coeffs[v.index()] = &coeffs[v.index()] + &c;
            }
            rows.push(LpRow {
                coeffs,
                op,
                rhs: &rhs - &shift,
            });
        };

    for c in program.constraints() {
        push_row(
            &mut c.expr.terms().map(|(v, coeff)| (v, coeff.clone())),
            c.op,
            c.rhs.clone(),
        );
    }
    for (terms, op, rhs) in extra_rows {
        push_row(&mut terms.iter().cloned(), *op, rhs.clone());
    }
    // Upper-bound rows.
    for j in 0..n {
        if let Some(u) = &node.upper[j] {
            let coeffs: Vec<Rational> = (0..n)
                .map(|k| {
                    if k == j {
                        Rational::one()
                    } else {
                        Rational::zero()
                    }
                })
                .collect();
            let gap = u - &node.lower[j];
            rows.push(LpRow {
                coeffs,
                op: CmpOp::Le,
                rhs: Rational::from(gap),
            });
        }
    }

    LpProblem {
        num_vars: n,
        rows,
        // Prefer small solutions: minimise the sum of all (shifted) variables.
        objective: vec![Rational::one(); n],
    }
}

/// Per-row gcd infeasibility test on equality rows whose coefficients and
/// right-hand side are integers: if `gcd(coefficients)` does not divide the
/// right-hand side, the row has no integer solution at all.
fn gcd_infeasibility(program: &IntegerProgram) -> Option<String> {
    for c in program.constraints() {
        if c.op != CmpOp::Eq {
            continue;
        }
        if !c.rhs.is_integer() || c.expr.terms().any(|(_, coeff)| !coeff.is_integer()) {
            continue;
        }
        if c.expr.is_empty() {
            if !c.rhs.is_zero() {
                return Some(format!("empty equality with non-zero rhs: {}", c));
            }
            continue;
        }
        let mut g = BigInt::zero();
        for (_, coeff) in c.expr.terms() {
            g = g.gcd(&coeff.numer().abs());
        }
        if g.is_zero() || g.is_one() {
            continue;
        }
        let rhs = c.rhs.numer().abs();
        let (_, r) = rhs.divrem(&g);
        if !r.is_zero() {
            return Some(format!("gcd test fails for [{}]", c.label));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinExpr;

    fn int(v: i64) -> Rational {
        Rational::from_int(v)
    }

    #[test]
    fn feasible_simple_system() {
        // x + y = 3, x >= 1, y >= 1.
        let mut p = IntegerProgram::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        let mut e = LinExpr::var(x);
        e.add_term(y, Rational::one());
        p.add_eq(e, int(3), "sum");
        p.add_ge(LinExpr::var(x), int(1), "x>=1");
        p.add_ge(LinExpr::var(y), int(1), "y>=1");
        let solver = IlpSolver::new();
        let outcome = solver.solve(&p);
        let a = outcome.assignment().expect("feasible");
        assert!(p.is_satisfied_by(a));
    }

    #[test]
    fn infeasible_by_lp() {
        // x <= 1 and x >= 2.
        let mut p = IntegerProgram::new();
        let x = p.add_var("x");
        p.add_le(LinExpr::var(x), int(1), "le");
        p.add_ge(LinExpr::var(x), int(2), "ge");
        assert!(IlpSolver::new().solve(&p).is_infeasible());
    }

    #[test]
    fn infeasible_by_integrality() {
        // 2x = 3 is LP-feasible (x = 3/2) but integer-infeasible.
        let mut p = IntegerProgram::new();
        let x = p.add_var("x");
        p.add_eq(LinExpr::term(int(2), x), int(3), "parity");
        assert!(IlpSolver::new().solve(&p).is_infeasible());
    }

    #[test]
    fn infeasible_parity_two_vars() {
        // 2x - 2y = 1: caught by the gcd presolve.
        let mut p = IntegerProgram::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        let mut e = LinExpr::term(int(2), x);
        e.add_term(y, int(-2));
        p.add_eq(e, int(1), "parity");
        assert!(IlpSolver::new().solve(&p).is_infeasible());
    }

    #[test]
    fn branching_finds_integer_point() {
        // x + 2y = 5, x <= 3 => (x,y) in {(1,2),(3,1)}; LP vertex may be
        // fractional depending on the objective.
        let mut p = IntegerProgram::new();
        let x = p.add_var_bounded("x", BigInt::zero(), Some(BigInt::from(3i64)));
        let y = p.add_var("y");
        let mut e = LinExpr::var(x);
        e.add_term(y, int(2));
        p.add_eq(e, int(5), "sum");
        let a = IlpSolver::new().solve(&p);
        let a = a.assignment().expect("feasible");
        assert!(p.is_satisfied_by(a));
    }

    #[test]
    fn conditional_branching() {
        // x >= 2, x > 0 -> y > 0, y + x = 2 forces y = 0: infeasible.
        let mut p = IntegerProgram::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.add_ge(LinExpr::var(x), int(2), "x>=2");
        let mut e = LinExpr::var(x);
        e.add_term(y, Rational::one());
        p.add_eq(e, int(2), "x+y=2");
        p.add_conditional(x, y, "x→y");
        assert!(IlpSolver::new().solve(&p).is_infeasible());

        // Relax the equality to x + y = 3: now x=2, y=1 works.
        let mut p2 = IntegerProgram::new();
        let x = p2.add_var("x");
        let y = p2.add_var("y");
        p2.add_ge(LinExpr::var(x), int(2), "x>=2");
        let mut e = LinExpr::var(x);
        e.add_term(y, Rational::one());
        p2.add_eq(e, int(3), "x+y=3");
        p2.add_conditional(x, y, "x→y");
        let outcome = IlpSolver::new().solve(&p2);
        let a = outcome.assignment().expect("feasible");
        assert!(p2.is_satisfied_by(a));
    }

    #[test]
    fn conditional_big_constant_mode_agrees() {
        let build = || {
            let mut p = IntegerProgram::new();
            let x = p.add_var("x");
            let y = p.add_var("y");
            let z = p.add_var("z");
            p.add_ge(LinExpr::var(x), int(1), "x>=1");
            let mut e = LinExpr::var(y);
            e.add_term(z, Rational::one());
            p.add_le(e, int(4), "y+z<=4");
            p.add_conditional(x, y, "x→y");
            p.add_conditional(y, z, "y→z");
            p
        };
        let p = build();
        let branch = IlpSolver::new().solve(&p);
        let bigc = IlpSolver::with_config(SolverConfig {
            conditional_mode: ConditionalMode::BigConstant,
            ..SolverConfig::default()
        })
        .solve(&p);
        assert!(branch.is_feasible());
        assert!(bigc.is_feasible());
        assert!(p.is_satisfied_by(branch.assignment().unwrap()));
        assert!(p.is_satisfied_by(bigc.assignment().unwrap()));
    }

    #[test]
    fn prefers_small_solutions() {
        // x >= 1 with no other constraints: expect exactly 1.
        let mut p = IntegerProgram::new();
        let x = p.add_var("x");
        p.add_ge(LinExpr::var(x), int(1), "x>=1");
        let outcome = IlpSolver::new().solve(&p);
        assert_eq!(outcome.assignment().unwrap().get(x), &BigInt::from(1i64));
    }

    #[test]
    fn node_limit_yields_unknown() {
        // With a zero node budget the solver must give up rather than guess,
        // even on a trivially feasible system.
        let mut p = IntegerProgram::new();
        let x = p.add_var("x");
        p.add_ge(LinExpr::var(x), int(1), "x>=1");
        let solver = IlpSolver::with_config(SolverConfig {
            max_nodes: 0,
            ..Default::default()
        });
        match solver.solve(&p) {
            SolveOutcome::Unknown(_) => {}
            other => panic!("expected Unknown, got {other:?}"),
        }
    }

    #[test]
    fn empty_program_is_feasible() {
        let p = IntegerProgram::new();
        assert!(IlpSolver::new().solve(&p).is_feasible());
    }

    #[test]
    fn respects_variable_upper_bounds() {
        let mut p = IntegerProgram::new();
        let x = p.add_var_bounded("x", BigInt::zero(), Some(BigInt::from(2i64)));
        p.add_ge(LinExpr::var(x), int(3), "x>=3");
        assert!(IlpSolver::new().solve(&p).is_infeasible());
    }

    #[test]
    fn stats_reported() {
        let mut p = IntegerProgram::new();
        let x = p.add_var("x");
        p.add_ge(LinExpr::var(x), int(1), "x>=1");
        let (outcome, stats) = IlpSolver::new().solve_with_stats(&p);
        assert!(outcome.is_feasible());
        assert!(stats.nodes >= 1);
        assert!(stats.lp_calls >= 1);
    }
}
