//! Arbitrary-precision signed integers.
//!
//! The consistency encodings of Fan & Libkin reduce XML specifications to
//! integer-linear feasibility problems.  Solving those exactly with the
//! simplex method requires exact rational arithmetic whose numerators and
//! denominators can grow well beyond machine words (pivoting multiplies
//! coefficients), and the Papadimitriou solution bound `n (m a)^{2m+1}` used
//! by the paper's big-constant encoding is astronomically large even for tiny
//! systems.  This module provides the minimal big-integer arithmetic the rest
//! of the crate needs: sign-magnitude representation with little-endian
//! `u64` limbs.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};
use std::str::FromStr;

/// Sign of a [`BigInt`]. Zero is always represented with [`Sign::Zero`] and an
/// empty magnitude so that every value has a unique representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Positive,
}

impl Sign {
    fn flip(self) -> Sign {
        match self {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        }
    }
}

/// An arbitrary-precision signed integer.
///
/// Invariants:
/// * `mag` has no trailing zero limbs;
/// * `mag.is_empty()` iff `sign == Sign::Zero`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    /// Little-endian magnitude limbs.
    mag: Vec<u64>,
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

impl BigInt {
    /// The integer zero.
    pub fn zero() -> BigInt {
        BigInt {
            sign: Sign::Zero,
            mag: Vec::new(),
        }
    }

    /// The integer one.
    pub fn one() -> BigInt {
        BigInt::from(1i64)
    }

    /// Returns `true` iff this integer is zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Returns `true` iff this integer is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Positive
    }

    /// Returns `true` iff this integer is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// Returns `true` iff this integer equals one.
    pub fn is_one(&self) -> bool {
        self.sign == Sign::Positive && self.mag.len() == 1 && self.mag[0] == 1
    }

    /// The sign of the integer.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        let mut r = self.clone();
        if r.sign == Sign::Negative {
            r.sign = Sign::Positive;
        }
        r
    }

    fn from_mag(sign: Sign, mut mag: Vec<u64>) -> BigInt {
        while mag.last() == Some(&0) {
            mag.pop();
        }
        if mag.is_empty() {
            BigInt::zero()
        } else {
            BigInt { sign, mag }
        }
    }

    /// Number of bits in the magnitude (0 for zero).
    pub fn bits(&self) -> u64 {
        match self.mag.last() {
            None => 0,
            Some(&top) => (self.mag.len() as u64 - 1) * 64 + (64 - top.leading_zeros() as u64),
        }
    }

    /// Converts to `i64` if the value fits.
    pub fn to_i64(&self) -> Option<i64> {
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive => {
                if self.mag.len() > 1 {
                    return None;
                }
                i64::try_from(self.mag[0]).ok()
            }
            Sign::Negative => {
                if self.mag.len() > 1 {
                    return None;
                }
                let m = self.mag[0];
                if m == 1u64 << 63 {
                    Some(i64::MIN)
                } else {
                    i64::try_from(m).ok().map(|v| -v)
                }
            }
        }
    }

    /// Converts to `u64` if the value fits (non-negative and small enough).
    pub fn to_u64(&self) -> Option<u64> {
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive if self.mag.len() == 1 => Some(self.mag[0]),
            _ => None,
        }
    }

    /// Approximate conversion to `f64` (used only for reporting / branching
    /// heuristics, never for exact decisions).
    pub fn to_f64(&self) -> f64 {
        let mut v = 0.0f64;
        for &limb in self.mag.iter().rev() {
            v = v * 18446744073709551616.0 + limb as f64;
        }
        match self.sign {
            Sign::Negative => -v,
            _ => v,
        }
    }

    fn cmp_mag(a: &[u64], b: &[u64]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for i in (0..a.len()).rev() {
            match a[i].cmp(&b[i]) {
                Ordering::Equal => {}
                o => return o,
            }
        }
        Ordering::Equal
    }

    fn add_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.len() {
            let x = long[i];
            let y = if i < short.len() { short[i] } else { 0 };
            let (s1, c1) = x.overflowing_add(y);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = u64::from(c1) + u64::from(c2);
        }
        if carry > 0 {
            out.push(carry);
        }
        out
    }

    /// Requires `a >= b` in magnitude.
    fn sub_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        debug_assert!(BigInt::cmp_mag(a, b) != Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0u64;
        for i in 0..a.len() {
            let x = a[i];
            let y = if i < b.len() { b[i] } else { 0 };
            let (d1, b1) = x.overflowing_sub(y);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = u64::from(b1) + u64::from(b2);
        }
        debug_assert_eq!(borrow, 0);
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    fn mul_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &x) in a.iter().enumerate() {
            if x == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &y) in b.iter().enumerate() {
                let cur = out[i + j] as u128 + (x as u128) * (y as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + b.len();
            while carry > 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// Shift the magnitude left by one bit.
    fn shl1_mag(mag: &mut Vec<u64>) {
        let mut carry = 0u64;
        for limb in mag.iter_mut() {
            let new_carry = *limb >> 63;
            *limb = (*limb << 1) | carry;
            carry = new_carry;
        }
        if carry > 0 {
            mag.push(carry);
        }
    }

    /// Binary long division of magnitudes: returns `(quotient, remainder)`.
    fn divrem_mag(a: &[u64], b: &[u64]) -> (Vec<u64>, Vec<u64>) {
        assert!(!b.is_empty(), "division by zero");
        if BigInt::cmp_mag(a, b) == Ordering::Less {
            return (Vec::new(), a.to_vec());
        }
        // Single-limb divisor fast path.
        if b.len() == 1 {
            let d = b[0] as u128;
            let mut quot = vec![0u64; a.len()];
            let mut rem = 0u128;
            for i in (0..a.len()).rev() {
                let cur = (rem << 64) | a[i] as u128;
                quot[i] = (cur / d) as u64;
                rem = cur % d;
            }
            while quot.last() == Some(&0) {
                quot.pop();
            }
            let rem_vec = if rem == 0 {
                Vec::new()
            } else {
                vec![rem as u64]
            };
            return (quot, rem_vec);
        }
        // General case: bit-by-bit restoring division.
        let total_bits = (a.len() as u64) * 64;
        let mut quot = vec![0u64; a.len()];
        let mut rem: Vec<u64> = Vec::new();
        for bit in (0..total_bits).rev() {
            BigInt::shl1_mag(&mut rem);
            let limb = (bit / 64) as usize;
            let off = (bit % 64) as u32;
            if (a[limb] >> off) & 1 == 1 {
                if rem.is_empty() {
                    rem.push(1);
                } else {
                    rem[0] |= 1;
                }
            }
            if BigInt::cmp_mag(&rem, b) != Ordering::Less {
                rem = BigInt::sub_mag(&rem, b);
                quot[limb] |= 1u64 << off;
            }
        }
        while quot.last() == Some(&0) {
            quot.pop();
        }
        (quot, rem)
    }

    /// Truncated division with remainder: `self = q * other + r`, where `q`
    /// is truncated towards zero and `r` has the sign of `self`.
    pub fn divrem(&self, other: &BigInt) -> (BigInt, BigInt) {
        assert!(!other.is_zero(), "BigInt division by zero");
        if self.is_zero() {
            return (BigInt::zero(), BigInt::zero());
        }
        let (qm, rm) = BigInt::divrem_mag(&self.mag, &other.mag);
        let q_sign = if qm.is_empty() {
            Sign::Zero
        } else if self.sign == other.sign {
            Sign::Positive
        } else {
            Sign::Negative
        };
        let r_sign = if rm.is_empty() { Sign::Zero } else { self.sign };
        (BigInt::from_mag(q_sign, qm), BigInt::from_mag(r_sign, rm))
    }

    /// Euclidean division: quotient rounded towards negative infinity.
    pub fn div_floor(&self, other: &BigInt) -> BigInt {
        let (q, r) = self.divrem(other);
        if r.is_zero() {
            return q;
        }
        // Truncation and floor differ when signs of operands differ.
        if (self.is_negative()) != (other.is_negative()) {
            q - BigInt::one()
        } else {
            q
        }
    }

    /// Euclidean division: quotient rounded towards positive infinity.
    pub fn div_ceil(&self, other: &BigInt) -> BigInt {
        let (q, r) = self.divrem(other);
        if r.is_zero() {
            return q;
        }
        if (self.is_negative()) == (other.is_negative()) {
            q + BigInt::one()
        } else {
            q
        }
    }

    /// Greatest common divisor (always non-negative).
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        let mut a = self.abs();
        let mut b = other.abs();
        while !b.is_zero() {
            let (_, r) = a.divrem(&b);
            a = b;
            b = r.abs();
        }
        a
    }

    /// `self` raised to the power `exp`.
    pub fn pow(&self, mut exp: u64) -> BigInt {
        let mut base = self.clone();
        let mut acc = BigInt::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            base = &base * &base;
            exp >>= 1;
        }
        acc
    }

    /// Multiply by a machine-word constant in place (used by the decimal
    /// parser).
    fn mul_small(&mut self, m: u64) {
        if m == 0 || self.is_zero() {
            *self = BigInt::zero();
            return;
        }
        let mut carry = 0u128;
        for limb in self.mag.iter_mut() {
            let cur = (*limb as u128) * (m as u128) + carry;
            *limb = cur as u64;
            carry = cur >> 64;
        }
        while carry > 0 {
            self.mag.push(carry as u64);
            carry >>= 64;
        }
    }

    fn add_small(&mut self, a: u64) {
        if a == 0 {
            return;
        }
        if self.is_zero() {
            *self = BigInt::from(a);
            return;
        }
        debug_assert_eq!(self.sign, Sign::Positive);
        let mut carry = a;
        for limb in self.mag.iter_mut() {
            let (s, c) = limb.overflowing_add(carry);
            *limb = s;
            if !c {
                carry = 0;
                break;
            }
            carry = 1;
        }
        if carry > 0 {
            self.mag.push(carry);
        }
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> BigInt {
        match v.cmp(&0) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt {
                sign: Sign::Positive,
                mag: vec![v as u64],
            },
            Ordering::Less => BigInt {
                sign: Sign::Negative,
                mag: vec![v.unsigned_abs()],
            },
        }
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> BigInt {
        if v == 0 {
            BigInt::zero()
        } else {
            BigInt {
                sign: Sign::Positive,
                mag: vec![v],
            }
        }
    }
}

impl From<i32> for BigInt {
    fn from(v: i32) -> BigInt {
        BigInt::from(v as i64)
    }
}

impl From<u32> for BigInt {
    fn from(v: u32) -> BigInt {
        BigInt::from(v as u64)
    }
}

impl From<usize> for BigInt {
    fn from(v: usize) -> BigInt {
        BigInt::from(v as u64)
    }
}

impl From<i128> for BigInt {
    fn from(v: i128) -> BigInt {
        if v == 0 {
            return BigInt::zero();
        }
        let sign = if v > 0 {
            Sign::Positive
        } else {
            Sign::Negative
        };
        let m = v.unsigned_abs();
        let lo = m as u64;
        let hi = (m >> 64) as u64;
        BigInt::from_mag(sign, vec![lo, hi])
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        let rank = |s: Sign| match s {
            Sign::Negative => 0,
            Sign::Zero => 1,
            Sign::Positive => 2,
        };
        match rank(self.sign).cmp(&rank(other.sign)) {
            Ordering::Equal => {}
            o => return o,
        }
        match self.sign {
            Sign::Zero => Ordering::Equal,
            Sign::Positive => BigInt::cmp_mag(&self.mag, &other.mag),
            Sign::Negative => BigInt::cmp_mag(&other.mag, &self.mag),
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(mut self) -> BigInt {
        self.sign = self.sign.flip();
        self
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        -self.clone()
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, other: &BigInt) -> BigInt {
        match (self.sign, other.sign) {
            (Sign::Zero, _) => other.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt::from_mag(a, BigInt::add_mag(&self.mag, &other.mag)),
            _ => {
                // Differing signs: subtract the smaller magnitude from the larger.
                match BigInt::cmp_mag(&self.mag, &other.mag) {
                    Ordering::Equal => BigInt::zero(),
                    Ordering::Greater => {
                        BigInt::from_mag(self.sign, BigInt::sub_mag(&self.mag, &other.mag))
                    }
                    Ordering::Less => {
                        BigInt::from_mag(other.sign, BigInt::sub_mag(&other.mag, &self.mag))
                    }
                }
            }
        }
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, other: &BigInt) -> BigInt {
        self + &(-other.clone())
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, other: &BigInt) -> BigInt {
        if self.is_zero() || other.is_zero() {
            return BigInt::zero();
        }
        let sign = if self.sign == other.sign {
            Sign::Positive
        } else {
            Sign::Negative
        };
        BigInt::from_mag(sign, BigInt::mul_mag(&self.mag, &other.mag))
    }
}

impl Div for &BigInt {
    type Output = BigInt;
    fn div(self, other: &BigInt) -> BigInt {
        self.divrem(other).0
    }
}

impl Rem for &BigInt {
    type Output = BigInt;
    fn rem(self, other: &BigInt) -> BigInt {
        self.divrem(other).1
    }
}

macro_rules! forward_owned_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for BigInt {
            type Output = BigInt;
            fn $method(self, other: BigInt) -> BigInt {
                (&self).$method(&other)
            }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, other: &BigInt) -> BigInt {
                (&self).$method(other)
            }
        }
        impl $trait<BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, other: BigInt) -> BigInt {
                self.$method(&other)
            }
        }
    };
}

forward_owned_binop!(Add, add);
forward_owned_binop!(Sub, sub);
forward_owned_binop!(Mul, mul);
forward_owned_binop!(Div, div);
forward_owned_binop!(Rem, rem);

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, other: &BigInt) {
        *self = &*self + other;
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, other: &BigInt) {
        *self = &*self - other;
    }
}

impl MulAssign<&BigInt> for BigInt {
    fn mul_assign(&mut self, other: &BigInt) {
        *self = &*self * other;
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Convert by repeated division by 10^19 (largest power of ten in u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let chunk = BigInt::from(CHUNK);
        let mut cur = self.abs();
        let mut parts: Vec<u64> = Vec::new();
        while !cur.is_zero() {
            let (q, r) = cur.divrem(&chunk);
            parts.push(r.to_u64().unwrap_or(0));
            cur = q;
        }
        if self.is_negative() {
            write!(f, "-")?;
        }
        let mut first = true;
        for &p in parts.iter().rev() {
            if first {
                write!(f, "{p}")?;
                first = false;
            } else {
                write!(f, "{p:019}")?;
            }
        }
        Ok(())
    }
}

/// Error returned when parsing a [`BigInt`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigIntError {
    msg: String,
}

impl fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid integer literal: {}", self.msg)
    }
}

impl std::error::Error for ParseBigIntError {}

impl FromStr for BigInt {
    type Err = ParseBigIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let (negative, digits) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        if digits.is_empty() {
            return Err(ParseBigIntError {
                msg: "empty".to_string(),
            });
        }
        let mut acc = BigInt::zero();
        for ch in digits.chars() {
            let d = ch.to_digit(10).ok_or_else(|| ParseBigIntError {
                msg: format!("bad digit {ch:?}"),
            })?;
            acc.mul_small(10);
            acc.add_small(u64::from(d));
        }
        if negative && !acc.is_zero() {
            acc.sign = Sign::Negative;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bi(v: i64) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn zero_and_one() {
        assert!(BigInt::zero().is_zero());
        assert!(BigInt::one().is_one());
        assert!(!BigInt::one().is_zero());
        assert_eq!(BigInt::zero().to_i64(), Some(0));
        assert_eq!(BigInt::from(0i64), BigInt::zero());
    }

    #[test]
    fn addition_small() {
        assert_eq!(&bi(2) + &bi(3), bi(5));
        assert_eq!(&bi(-2) + &bi(3), bi(1));
        assert_eq!(&bi(2) + &bi(-3), bi(-1));
        assert_eq!(&bi(-2) + &bi(-3), bi(-5));
        assert_eq!(&bi(7) + &bi(-7), bi(0));
    }

    #[test]
    fn subtraction_small() {
        assert_eq!(&bi(10) - &bi(4), bi(6));
        assert_eq!(&bi(4) - &bi(10), bi(-6));
        assert_eq!(&bi(-4) - &bi(-10), bi(6));
    }

    #[test]
    fn multiplication_small() {
        assert_eq!(&bi(6) * &bi(7), bi(42));
        assert_eq!(&bi(-6) * &bi(7), bi(-42));
        assert_eq!(&bi(-6) * &bi(-7), bi(42));
        assert_eq!(&bi(0) * &bi(7), bi(0));
    }

    #[test]
    fn carry_propagation() {
        let max = BigInt::from(u64::MAX);
        let sum = &max + &BigInt::one();
        assert_eq!(sum.to_string(), "18446744073709551616");
        let prod = &max * &max;
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        assert_eq!(prod.to_string(), "340282366920938463426481119284349108225");
    }

    #[test]
    fn division_small() {
        let (q, r) = bi(17).divrem(&bi(5));
        assert_eq!((q, r), (bi(3), bi(2)));
        let (q, r) = bi(-17).divrem(&bi(5));
        assert_eq!((q, r), (bi(-3), bi(-2)));
        let (q, r) = bi(17).divrem(&bi(-5));
        assert_eq!((q, r), (bi(-3), bi(2)));
        let (q, r) = bi(-17).divrem(&bi(-5));
        assert_eq!((q, r), (bi(3), bi(-2)));
    }

    #[test]
    fn division_large() {
        let a: BigInt = "123456789012345678901234567890".parse().unwrap();
        let b: BigInt = "9876543210987".parse().unwrap();
        let (q, r) = a.divrem(&b);
        // Verify a = q*b + r and 0 <= r < b.
        assert_eq!(&(&q * &b) + &r, a);
        assert!(r >= BigInt::zero() && r < b);
    }

    #[test]
    fn floor_and_ceil_division() {
        assert_eq!(bi(7).div_floor(&bi(2)), bi(3));
        assert_eq!(bi(-7).div_floor(&bi(2)), bi(-4));
        assert_eq!(bi(7).div_ceil(&bi(2)), bi(4));
        assert_eq!(bi(-7).div_ceil(&bi(2)), bi(-3));
        assert_eq!(bi(8).div_floor(&bi(2)), bi(4));
        assert_eq!(bi(8).div_ceil(&bi(2)), bi(4));
    }

    #[test]
    fn gcd_values() {
        assert_eq!(bi(12).gcd(&bi(18)), bi(6));
        assert_eq!(bi(-12).gcd(&bi(18)), bi(6));
        assert_eq!(bi(0).gcd(&bi(5)), bi(5));
        assert_eq!(bi(5).gcd(&bi(0)), bi(5));
        assert_eq!(bi(7).gcd(&bi(13)), bi(1));
    }

    #[test]
    fn pow_values() {
        assert_eq!(bi(2).pow(10), bi(1024));
        assert_eq!(bi(10).pow(0), bi(1));
        assert_eq!(bi(3).pow(5), bi(243));
        assert_eq!(
            bi(2).pow(100).to_string(),
            "1267650600228229401496703205376"
        );
    }

    #[test]
    fn ordering() {
        assert!(bi(-5) < bi(-1));
        assert!(bi(-1) < bi(0));
        assert!(bi(0) < bi(1));
        assert!(bi(1) < bi(5));
        let big: BigInt = "99999999999999999999999".parse().unwrap();
        assert!(bi(i64::MAX) < big);
    }

    #[test]
    fn display_round_trip() {
        for s in [
            "0",
            "1",
            "-1",
            "18446744073709551616",
            "-340282366920938463463374607431768211456",
            "12345678901234567890123456789012345678901234567890",
        ] {
            let v: BigInt = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<BigInt>().is_err());
        assert!("12a3".parse::<BigInt>().is_err());
        assert!("--5".parse::<BigInt>().is_err());
    }

    #[test]
    fn to_i64_bounds() {
        assert_eq!(BigInt::from(i64::MAX).to_i64(), Some(i64::MAX));
        assert_eq!(BigInt::from(i64::MIN).to_i64(), Some(i64::MIN));
        let too_big = &BigInt::from(i64::MAX) + &BigInt::one();
        assert_eq!(too_big.to_i64(), None);
        let too_small = &BigInt::from(i64::MIN) - &BigInt::one();
        assert_eq!(too_small.to_i64(), None);
    }

    #[test]
    fn i128_conversion() {
        let v = BigInt::from(170141183460469231731687303715884105727i128);
        assert_eq!(v.to_string(), "170141183460469231731687303715884105727");
        let v = BigInt::from(-170141183460469231731687303715884105728i128);
        assert_eq!(v.to_string(), "-170141183460469231731687303715884105728");
    }

    #[test]
    fn bits_count() {
        assert_eq!(BigInt::zero().bits(), 0);
        assert_eq!(BigInt::one().bits(), 1);
        assert_eq!(bi(255).bits(), 8);
        assert_eq!(bi(256).bits(), 9);
        assert_eq!(BigInt::from(u64::MAX).bits(), 64);
        assert_eq!((&BigInt::from(u64::MAX) + &BigInt::one()).bits(), 65);
    }
}
