//! Exact two-phase primal simplex over rationals.
//!
//! This is the LP-relaxation engine underneath the branch-and-bound integer
//! solver.  It is a dense tableau implementation with Bland's anti-cycling
//! rule; all arithmetic is exact, so feasibility answers are never subject to
//! floating-point tolerance choices.

use crate::linear::CmpOp;
use crate::rational::Rational;

/// A single LP row `coeffs · x op rhs` over dense coefficients.
#[derive(Debug, Clone)]
pub struct LpRow {
    /// Dense coefficients, one per structural variable.
    pub coeffs: Vec<Rational>,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand side.
    pub rhs: Rational,
}

/// An LP over non-negative structural variables `x_j >= 0`.
#[derive(Debug, Clone)]
pub struct LpProblem {
    /// Number of structural variables.
    pub num_vars: usize,
    /// Constraint rows.
    pub rows: Vec<LpRow>,
    /// Objective coefficients (minimised). May be all zero for pure
    /// feasibility checks.
    pub objective: Vec<Rational>,
}

/// Result of solving an [`LpProblem`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpOutcome {
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
    /// An optimal vertex was found.
    Optimal {
        /// Optimal objective value.
        objective: Rational,
        /// Values of the structural variables at the optimum.
        values: Vec<Rational>,
    },
}

impl LpOutcome {
    /// Returns the structural solution if the outcome is optimal.
    pub fn values(&self) -> Option<&[Rational]> {
        match self {
            LpOutcome::Optimal { values, .. } => Some(values),
            _ => None,
        }
    }

    /// Returns `true` iff the LP has a feasible point.
    pub fn is_feasible(&self) -> bool {
        !matches!(self, LpOutcome::Infeasible)
    }
}

/// Dense simplex tableau.
struct Tableau {
    /// `rows x (cols + 1)`; the final column is the right-hand side.
    rows: Vec<Vec<Rational>>,
    /// Objective row (reduced costs); same width as `rows` entries.
    obj: Vec<Rational>,
    /// Basic variable (column index) of each row.
    basis: Vec<usize>,
    /// Total number of columns (excluding rhs).
    cols: usize,
}

impl Tableau {
    fn rhs(&self, r: usize) -> &Rational {
        &self.rows[r][self.cols]
    }

    /// Performs a pivot on `(row, col)`.
    fn pivot(&mut self, row: usize, col: usize) {
        let pivot_val = self.rows[row][col].clone();
        debug_assert!(!pivot_val.is_zero());
        let inv = pivot_val.recip();
        for v in self.rows[row].iter_mut() {
            *v = &*v * &inv;
        }
        let pivot_row = self.rows[row].clone();
        for (r, row_vec) in self.rows.iter_mut().enumerate() {
            if r == row {
                continue;
            }
            let factor = row_vec[col].clone();
            if factor.is_zero() {
                continue;
            }
            for (j, v) in row_vec.iter_mut().enumerate() {
                *v = &*v - &(&factor * &pivot_row[j]);
            }
        }
        let factor = self.obj[col].clone();
        if !factor.is_zero() {
            for (j, v) in self.obj.iter_mut().enumerate() {
                *v = &*v - &(&factor * &pivot_row[j]);
            }
        }
        self.basis[row] = col;
    }

    /// Runs the simplex iteration loop with Bland's rule until optimality or
    /// unboundedness.  Columns marked in `banned` are never chosen as
    /// entering columns (used to keep artificial variables out of the basis
    /// in phase 2).
    fn run(&mut self, banned: &[bool]) -> SimplexStatus {
        loop {
            // Entering column: smallest index with negative reduced cost.
            let entering = (0..self.cols).find(|&j| !banned[j] && self.obj[j].is_negative());
            let Some(col) = entering else {
                return SimplexStatus::Optimal;
            };
            // Ratio test: smallest rhs/coeff over rows with coeff > 0, ties by
            // smallest basic variable (Bland).
            let mut best: Option<(usize, Rational)> = None;
            for r in 0..self.rows.len() {
                let coeff = &self.rows[r][col];
                if !coeff.is_positive() {
                    continue;
                }
                let ratio = self.rhs(r) / coeff;
                match &best {
                    None => best = Some((r, ratio)),
                    Some((br, bratio)) => {
                        if ratio < *bratio || (ratio == *bratio && self.basis[r] < self.basis[*br])
                        {
                            best = Some((r, ratio));
                        }
                    }
                }
            }
            match best {
                None => return SimplexStatus::Unbounded,
                Some((row, _)) => self.pivot(row, col),
            }
        }
    }
}

#[derive(Debug, PartialEq, Eq)]
enum SimplexStatus {
    Optimal,
    Unbounded,
}

/// Solves an LP with the two-phase simplex method.
pub fn solve(problem: &LpProblem) -> LpOutcome {
    let n = problem.num_vars;
    let m = problem.rows.len();
    debug_assert!(problem.objective.len() == n || problem.objective.is_empty());

    // Count auxiliary columns: one slack per inequality, one artificial per
    // >=/= row (after normalising rhs >= 0).
    #[derive(Clone, Copy)]
    struct RowPlan {
        negate: bool,
        slack: Option<usize>,
        slack_sign: i32,
        artificial: Option<usize>,
    }
    let mut plans = Vec::with_capacity(m);
    let mut next_col = n;
    for row in &problem.rows {
        let negate = row.rhs.is_negative();
        let op = if negate {
            match row.op {
                CmpOp::Le => CmpOp::Ge,
                CmpOp::Ge => CmpOp::Le,
                CmpOp::Eq => CmpOp::Eq,
            }
        } else {
            row.op
        };
        let (slack, slack_sign, artificial) = match op {
            CmpOp::Le => {
                let s = next_col;
                next_col += 1;
                (Some(s), 1, None)
            }
            CmpOp::Ge => {
                let s = next_col;
                next_col += 1;
                let a = next_col;
                next_col += 1;
                (Some(s), -1, Some(a))
            }
            CmpOp::Eq => {
                let a = next_col;
                next_col += 1;
                (None, 0, Some(a))
            }
        };
        plans.push(RowPlan {
            negate,
            slack,
            slack_sign,
            artificial,
        });
    }
    let total_cols = next_col;

    // Build the tableau rows.
    let mut rows: Vec<Vec<Rational>> = Vec::with_capacity(m);
    let mut basis = Vec::with_capacity(m);
    let mut has_artificial = false;
    for (row, plan) in problem.rows.iter().zip(&plans) {
        let mut trow = vec![Rational::zero(); total_cols + 1];
        for (j, c) in row.coeffs.iter().enumerate() {
            trow[j] = if plan.negate { -c.clone() } else { c.clone() };
        }
        trow[total_cols] = if plan.negate {
            -row.rhs.clone()
        } else {
            row.rhs.clone()
        };
        if let Some(s) = plan.slack {
            trow[s] = if plan.slack_sign >= 0 {
                Rational::one()
            } else {
                -Rational::one()
            };
        }
        if let Some(a) = plan.artificial {
            trow[a] = Rational::one();
            basis.push(a);
            has_artificial = true;
        } else {
            basis.push(plan.slack.expect("<= rows always have a slack"));
        }
        rows.push(trow);
    }

    let mut tableau = Tableau {
        rows,
        obj: vec![Rational::zero(); total_cols + 1],
        basis,
        cols: total_cols,
    };

    let artificial_cols: Vec<bool> = {
        let mut v = vec![false; total_cols];
        for plan in &plans {
            if let Some(a) = plan.artificial {
                v[a] = true;
            }
        }
        v
    };
    let no_bans = vec![false; total_cols];

    // Phase 1: minimise the sum of artificial variables.
    if has_artificial {
        for plan in &plans {
            if let Some(a) = plan.artificial {
                tableau.obj[a] = Rational::one();
            }
        }
        // Make the objective row consistent with the starting basis (price out
        // the basic artificial columns).
        for r in 0..m {
            let b = tableau.basis[r];
            let factor = tableau.obj[b].clone();
            if factor.is_zero() {
                continue;
            }
            for j in 0..=total_cols {
                let delta = &factor * &tableau.rows[r][j];
                tableau.obj[j] = &tableau.obj[j] - &delta;
            }
        }
        match tableau.run(&no_bans) {
            SimplexStatus::Unbounded => {
                // Phase-1 objective is bounded below by 0; unbounded cannot
                // happen, but treat it defensively as infeasible.
                return LpOutcome::Infeasible;
            }
            SimplexStatus::Optimal => {}
        }
        // Phase-1 optimum is -obj[rhs].
        let phase1 = -tableau.obj[total_cols].clone();
        if phase1.is_positive() {
            return LpOutcome::Infeasible;
        }
        // Drive artificial variables out of the basis where possible.
        let is_artificial = |col: usize| plans.iter().any(|p| p.artificial == Some(col));
        for r in 0..m {
            if !is_artificial(tableau.basis[r]) {
                continue;
            }
            // The artificial is basic at value 0; pivot in any non-artificial
            // column with a non-zero entry in this row.
            let col = (0..total_cols).find(|&j| !is_artificial(j) && !tableau.rows[r][j].is_zero());
            if let Some(col) = col {
                tableau.pivot(r, col);
            }
            // If no such column exists, the row is redundant (all structural
            // coefficients are zero) and can stay with the artificial basic at
            // zero without affecting phase 2 (its row never changes because
            // all its non-artificial coefficients are zero).
        }
    }

    // Phase 2: minimise the real objective.
    for v in tableau.obj.iter_mut() {
        *v = Rational::zero();
    }
    if !problem.objective.is_empty() {
        for (j, c) in problem.objective.iter().enumerate() {
            tableau.obj[j] = c.clone();
        }
    }
    // Price out basic columns.
    for r in 0..m {
        let b = tableau.basis[r];
        let factor = tableau.obj[b].clone();
        if factor.is_zero() {
            continue;
        }
        for j in 0..=total_cols {
            let delta = &factor * &tableau.rows[r][j];
            tableau.obj[j] = &tableau.obj[j] - &delta;
        }
    }
    // Artificial columns must never re-enter the basis in phase 2: they are
    // passed to `run` as banned entering columns (their basic values are
    // zero, so excluding them does not cut off any feasible point).
    match tableau.run(&artificial_cols) {
        SimplexStatus::Unbounded => LpOutcome::Unbounded,
        SimplexStatus::Optimal => {
            let mut values = vec![Rational::zero(); n];
            for r in 0..m {
                let b = tableau.basis[r];
                if b < n {
                    values[b] = tableau.rhs(r).clone();
                }
            }
            let mut objective = Rational::zero();
            if !problem.objective.is_empty() {
                for (j, c) in problem.objective.iter().enumerate() {
                    objective += &(c * &values[j]);
                }
            }
            LpOutcome::Optimal { objective, values }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bignum::BigInt;

    fn r(n: i64) -> Rational {
        Rational::from_int(n)
    }

    fn rr(n: i64, d: i64) -> Rational {
        Rational::new(BigInt::from(n), BigInt::from(d))
    }

    fn row(coeffs: &[i64], op: CmpOp, rhs: i64) -> LpRow {
        LpRow {
            coeffs: coeffs.iter().map(|&c| r(c)).collect(),
            op,
            rhs: r(rhs),
        }
    }

    #[test]
    fn simple_maximisation_as_minimisation() {
        // maximise x + y  s.t. x + 2y <= 4, 3x + y <= 6  ==> minimise -(x+y)
        let p = LpProblem {
            num_vars: 2,
            rows: vec![row(&[1, 2], CmpOp::Le, 4), row(&[3, 1], CmpOp::Le, 6)],
            objective: vec![r(-1), r(-1)],
        };
        match solve(&p) {
            LpOutcome::Optimal { objective, values } => {
                // Optimum at x = 8/5, y = 6/5, value 14/5.
                assert_eq!(objective, rr(-14, 5));
                assert_eq!(values[0], rr(8, 5));
                assert_eq!(values[1], rr(6, 5));
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn feasibility_with_equalities() {
        // x + y = 3, x - y = 1  =>  x = 2, y = 1.
        let p = LpProblem {
            num_vars: 2,
            rows: vec![row(&[1, 1], CmpOp::Eq, 3), row(&[1, -1], CmpOp::Eq, 1)],
            objective: vec![],
        };
        match solve(&p) {
            LpOutcome::Optimal { values, .. } => {
                assert_eq!(values[0], r(2));
                assert_eq!(values[1], r(1));
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn detects_infeasibility() {
        // x <= 1, x >= 2.
        let p = LpProblem {
            num_vars: 1,
            rows: vec![row(&[1], CmpOp::Le, 1), row(&[1], CmpOp::Ge, 2)],
            objective: vec![],
        };
        assert_eq!(solve(&p), LpOutcome::Infeasible);
    }

    #[test]
    fn detects_infeasibility_with_equalities() {
        // x + y = 1, x + y = 2.
        let p = LpProblem {
            num_vars: 2,
            rows: vec![row(&[1, 1], CmpOp::Eq, 1), row(&[1, 1], CmpOp::Eq, 2)],
            objective: vec![],
        };
        assert_eq!(solve(&p), LpOutcome::Infeasible);
    }

    #[test]
    fn detects_unboundedness() {
        // minimise -x subject to x >= 1 (x unbounded above).
        let p = LpProblem {
            num_vars: 1,
            rows: vec![row(&[1], CmpOp::Ge, 1)],
            objective: vec![r(-1)],
        };
        assert_eq!(solve(&p), LpOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_is_normalised() {
        // -x <= -3  <=>  x >= 3; minimise x should give 3.
        let p = LpProblem {
            num_vars: 1,
            rows: vec![row(&[-1], CmpOp::Le, -3)],
            objective: vec![r(1)],
        };
        match solve(&p) {
            LpOutcome::Optimal { objective, values } => {
                assert_eq!(objective, r(3));
                assert_eq!(values[0], r(3));
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn degenerate_problem_terminates() {
        // A classic degenerate configuration; Bland's rule must terminate.
        let p = LpProblem {
            num_vars: 3,
            rows: vec![
                row(&[1, 1, 1], CmpOp::Le, 0),
                row(&[1, 0, 0], CmpOp::Le, 0),
                row(&[0, 1, 0], CmpOp::Le, 0),
            ],
            objective: vec![r(-1), r(-1), r(-1)],
        };
        match solve(&p) {
            LpOutcome::Optimal { objective, .. } => assert_eq!(objective, r(0)),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn redundant_equalities() {
        // x + y = 2 stated twice plus x = 1.
        let p = LpProblem {
            num_vars: 2,
            rows: vec![
                row(&[1, 1], CmpOp::Eq, 2),
                row(&[1, 1], CmpOp::Eq, 2),
                row(&[1, 0], CmpOp::Eq, 1),
            ],
            objective: vec![],
        };
        match solve(&p) {
            LpOutcome::Optimal { values, .. } => {
                assert_eq!(values[0], r(1));
                assert_eq!(values[1], r(1));
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn zero_rows_feasible() {
        let p = LpProblem {
            num_vars: 2,
            rows: vec![],
            objective: vec![r(1), r(1)],
        };
        match solve(&p) {
            LpOutcome::Optimal { objective, values } => {
                assert_eq!(objective, r(0));
                assert_eq!(values, vec![r(0), r(0)]);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn larger_lp() {
        // minimise x1 + 2 x2 + 3 x3
        // s.t. x1 + x2 >= 4, x2 + x3 >= 3, x1 + x3 = 5
        let p = LpProblem {
            num_vars: 3,
            rows: vec![
                row(&[1, 1, 0], CmpOp::Ge, 4),
                row(&[0, 1, 1], CmpOp::Ge, 3),
                row(&[1, 0, 1], CmpOp::Eq, 5),
            ],
            objective: vec![r(1), r(2), r(3)],
        };
        match solve(&p) {
            LpOutcome::Optimal { objective, values } => {
                // x1 = 5, x3 = 0, x2 = 3 gives 5 + 6 = 11; check optimality by
                // verifying constraints hold and objective equals 11.
                assert_eq!(objective, r(11));
                let x = &values;
                assert!(&x[0] + &x[1] >= r(4));
                assert!(&x[1] + &x[2] >= r(3));
                assert_eq!(&x[0] + &x[2], r(5));
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }
}
