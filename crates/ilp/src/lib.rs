//! # xic-ilp — exact integer linear programming substrate
//!
//! Fan & Libkin's consistency analysis for XML keys and foreign keys works by
//! *coding DTDs and unary constraints with linear constraints on the
//! integers* (their Theorem 4.1) and then asking whether the resulting system
//! has a non-negative integer solution.  The paper leans on linear integer
//! programming as a black box; this crate is that black box, built from
//! scratch:
//!
//! * [`bignum::BigInt`] / [`rational::Rational`] — exact arbitrary-precision
//!   arithmetic, so feasibility answers are never a rounding artefact;
//! * [`linear::IntegerProgram`] — the modelling layer used by `xic-core` to
//!   materialise the cardinality systems Ψ_D, C_Σ, Ψ(D,Σ) and Ψ'(D,Σ);
//! * [`simplex`] — an exact two-phase primal simplex for LP relaxations;
//! * [`solver::IlpSolver`] — branch-and-bound integer feasibility with both
//!   treatments of the paper's conditional constraints `x > 0 → y > 0`
//!   (case-splitting and the big-constant rewriting);
//! * [`bounds`] — Papadimitriou's solution-size bound, which the paper uses
//!   to justify the big-constant encoding;
//! * [`enumerate`] — a brute-force oracle used for differential testing.
//!
//! The crate is deliberately self-contained (no external numeric or solver
//! dependencies) so that the whole reproduction builds offline.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bignum;
pub mod bounds;
pub mod enumerate;
pub mod linear;
pub mod rational;
pub mod simplex;
pub mod solver;

pub use bignum::BigInt;
pub use linear::{Assignment, CmpOp, IntegerProgram, LinExpr, VarId};
pub use rational::Rational;
pub use solver::{ConditionalMode, IlpSolver, SolveOutcome, SolveStats, SolverConfig};

#[cfg(test)]
mod integration_tests {
    use super::*;

    /// The cardinality argument from the paper's introduction: the teachers
    /// DTD forces |ext(subject)| = 2·|ext(teacher)| with |ext(teacher)| ≥ 1,
    /// while Σ1 forces |ext(subject)| ≤ |ext(teacher)|.  The combined system
    /// must be infeasible.
    #[test]
    fn teachers_cardinality_argument() {
        let mut p = IntegerProgram::new();
        let teacher = p.add_var("ext(teacher)");
        let subject = p.add_var("ext(subject)");
        p.add_ge(LinExpr::var(teacher), Rational::one(), "teacher+ nonempty");
        let mut two_teachers = LinExpr::term(Rational::from_int(2i64), teacher);
        two_teachers.add_term(subject, -Rational::one());
        p.add_eq(two_teachers, Rational::zero(), "2|teacher| = |subject|");
        let mut diff = LinExpr::var(subject);
        diff.add_term(teacher, -Rational::one());
        p.add_le(diff, Rational::zero(), "|subject| <= |teacher|");
        assert!(IlpSolver::new().solve(&p).is_infeasible());
    }

    /// Differential test on a fixed mixed system: the branch-and-bound solver
    /// and the brute-force enumerator agree on feasibility.
    #[test]
    fn solver_agrees_with_enumeration() {
        let mut p = IntegerProgram::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        let z = p.add_var("z");
        let mut e1 = LinExpr::var(x);
        e1.add_term(y, Rational::from_int(2i64));
        p.add_eq(e1, Rational::from_int(5i64), "x+2y=5");
        let mut e2 = LinExpr::var(y);
        e2.add_term(z, Rational::from_int(3i64));
        p.add_le(e2, Rational::from_int(4i64), "y+3z<=4");
        p.add_conditional(x, z, "x→z");
        let bb = IlpSolver::new().solve(&p);
        let brute = enumerate::enumerate_feasible(&p, 6);
        assert_eq!(bb.is_feasible(), brute.is_some());
        if let Some(a) = bb.assignment() {
            assert!(p.is_satisfied_by(a));
        }
    }
}
