//! Exact rational numbers over [`BigInt`].
//!
//! The simplex method over the cardinality systems of Fan & Libkin must be
//! exact: a wrong sign on a reduced cost or a wrongly-detected infeasibility
//! changes a "consistent" answer into "inconsistent".  Floating point cannot
//! give that guarantee, so all LP relaxations in this crate are solved over
//! `Rational`.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

use crate::bignum::BigInt;

/// An exact rational number `num / den`.
///
/// Invariants: `den > 0`, `gcd(|num|, den) = 1`, and zero is `0/1`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    num: BigInt,
    den: BigInt,
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rational({self})")
    }
}

impl Rational {
    /// The rational zero.
    pub fn zero() -> Rational {
        Rational {
            num: BigInt::zero(),
            den: BigInt::one(),
        }
    }

    /// The rational one.
    pub fn one() -> Rational {
        Rational {
            num: BigInt::one(),
            den: BigInt::one(),
        }
    }

    /// Constructs `num / den`, normalising sign and reducing to lowest terms.
    ///
    /// # Panics
    /// Panics if `den` is zero.
    pub fn new(num: BigInt, den: BigInt) -> Rational {
        assert!(!den.is_zero(), "rational with zero denominator");
        let (mut num, mut den) = if den.is_negative() {
            (-num, -den)
        } else {
            (num, den)
        };
        if num.is_zero() {
            return Rational::zero();
        }
        let g = num.gcd(&den);
        if !g.is_one() {
            num = &num / &g;
            den = &den / &g;
        }
        Rational { num, den }
    }

    /// Constructs the rational from an integer.
    pub fn from_int(v: impl Into<BigInt>) -> Rational {
        Rational {
            num: v.into(),
            den: BigInt::one(),
        }
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// Returns `true` iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Returns `true` iff the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Returns `true` iff the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Returns `true` iff the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// Largest integer `<= self`.
    pub fn floor(&self) -> BigInt {
        self.num.div_floor(&self.den)
    }

    /// Smallest integer `>= self`.
    pub fn ceil(&self) -> BigInt {
        self.num.div_ceil(&self.den)
    }

    /// Rounds towards zero.
    pub fn trunc(&self) -> BigInt {
        self.num.divrem(&self.den).0
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the value is zero.
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rational::new(self.den.clone(), self.num.clone())
    }

    /// Approximate `f64` value (for reporting only).
    pub fn to_f64(&self) -> f64 {
        self.num.to_f64() / self.den.to_f64()
    }

    /// If the value is an integer, returns it.
    pub fn to_integer(&self) -> Option<BigInt> {
        if self.is_integer() {
            Some(self.num.clone())
        } else {
            None
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational::from_int(v)
    }
}

impl From<BigInt> for Rational {
    fn from(v: BigInt) -> Self {
        Rational {
            num: v,
            den: BigInt::one(),
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b    (b, d > 0)
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        -self.clone()
    }
}

impl Add for &Rational {
    type Output = Rational;
    fn add(self, other: &Rational) -> Rational {
        Rational::new(
            &(&self.num * &other.den) + &(&other.num * &self.den),
            &self.den * &other.den,
        )
    }
}

impl Sub for &Rational {
    type Output = Rational;
    fn sub(self, other: &Rational) -> Rational {
        Rational::new(
            &(&self.num * &other.den) - &(&other.num * &self.den),
            &self.den * &other.den,
        )
    }
}

impl Mul for &Rational {
    type Output = Rational;
    fn mul(self, other: &Rational) -> Rational {
        Rational::new(&self.num * &other.num, &self.den * &other.den)
    }
}

impl Div for &Rational {
    type Output = Rational;
    fn div(self, other: &Rational) -> Rational {
        assert!(!other.is_zero(), "rational division by zero");
        Rational::new(&self.num * &other.den, &self.den * &other.num)
    }
}

macro_rules! forward_owned_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for Rational {
            type Output = Rational;
            fn $method(self, other: Rational) -> Rational {
                (&self).$method(&other)
            }
        }
        impl $trait<&Rational> for Rational {
            type Output = Rational;
            fn $method(self, other: &Rational) -> Rational {
                (&self).$method(other)
            }
        }
        impl $trait<Rational> for &Rational {
            type Output = Rational;
            fn $method(self, other: Rational) -> Rational {
                self.$method(&other)
            }
        }
    };
}

forward_owned_binop!(Add, add);
forward_owned_binop!(Sub, sub);
forward_owned_binop!(Mul, mul);
forward_owned_binop!(Div, div);

impl AddAssign<&Rational> for Rational {
    fn add_assign(&mut self, other: &Rational) {
        *self = &*self + other;
    }
}

impl SubAssign<&Rational> for Rational {
    fn sub_assign(&mut self, other: &Rational) {
        *self = &*self - other;
    }
}

impl MulAssign<&Rational> for Rational {
    fn mul_assign(&mut self, other: &Rational) {
        *self = &*self * other;
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Error returned when parsing a [`Rational`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRationalError {
    msg: String,
}

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal: {}", self.msg)
    }
}

impl std::error::Error for ParseRationalError {}

impl FromStr for Rational {
    type Err = ParseRationalError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if let Some((n, d)) = s.split_once('/') {
            let num: BigInt = n.trim().parse().map_err(|e| ParseRationalError {
                msg: format!("{e}"),
            })?;
            let den: BigInt = d.trim().parse().map_err(|e| ParseRationalError {
                msg: format!("{e}"),
            })?;
            if den.is_zero() {
                return Err(ParseRationalError {
                    msg: "zero denominator".to_string(),
                });
            }
            Ok(Rational::new(num, den))
        } else {
            let num: BigInt = s.parse().map_err(|e| ParseRationalError {
                msg: format!("{e}"),
            })?;
            Ok(Rational::from(num))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::new(BigInt::from(n), BigInt::from(d))
    }

    #[test]
    fn normalisation() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, 7), Rational::zero());
        assert!(r(3, -3).is_negative());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(BigInt::one(), BigInt::zero());
    }

    #[test]
    fn arithmetic() {
        assert_eq!(&r(1, 2) + &r(1, 3), r(5, 6));
        assert_eq!(&r(1, 2) - &r(1, 3), r(1, 6));
        assert_eq!(&r(2, 3) * &r(3, 4), r(1, 2));
        assert_eq!(&r(2, 3) / &r(4, 3), r(1, 2));
        assert_eq!(-r(2, 3), r(-2, 3));
    }

    #[test]
    fn comparisons() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(7, 7) == Rational::one());
        assert!(r(5, 2) > Rational::from_int(2i64));
        assert!(r(5, 2) < Rational::from_int(3i64));
    }

    #[test]
    fn floor_ceil_trunc() {
        assert_eq!(r(7, 2).floor(), BigInt::from(3i64));
        assert_eq!(r(7, 2).ceil(), BigInt::from(4i64));
        assert_eq!(r(-7, 2).floor(), BigInt::from(-4i64));
        assert_eq!(r(-7, 2).ceil(), BigInt::from(-3i64));
        assert_eq!(r(-7, 2).trunc(), BigInt::from(-3i64));
        assert_eq!(r(4, 2).floor(), BigInt::from(2i64));
        assert_eq!(r(4, 2).ceil(), BigInt::from(2i64));
    }

    #[test]
    fn integrality() {
        assert!(r(4, 2).is_integer());
        assert!(!r(5, 2).is_integer());
        assert_eq!(r(4, 2).to_integer(), Some(BigInt::from(2i64)));
        assert_eq!(r(5, 2).to_integer(), None);
    }

    #[test]
    fn reciprocal() {
        assert_eq!(r(2, 3).recip(), r(3, 2));
        assert_eq!(r(-2, 3).recip(), r(-3, 2));
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn recip_zero_panics() {
        let _ = Rational::zero().recip();
    }

    #[test]
    fn parse_and_display() {
        assert_eq!("3/4".parse::<Rational>().unwrap(), r(3, 4));
        assert_eq!("-3/4".parse::<Rational>().unwrap(), r(-3, 4));
        assert_eq!("6/4".parse::<Rational>().unwrap().to_string(), "3/2");
        assert_eq!("5".parse::<Rational>().unwrap(), Rational::from_int(5i64));
        assert!("1/0".parse::<Rational>().is_err());
        assert!("x/2".parse::<Rational>().is_err());
    }

    #[test]
    fn assign_operators() {
        let mut x = r(1, 2);
        x += &r(1, 2);
        assert_eq!(x, Rational::one());
        x -= &r(1, 4);
        assert_eq!(x, r(3, 4));
        x *= &r(4, 3);
        assert_eq!(x, Rational::one());
    }
}
