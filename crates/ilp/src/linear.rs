//! Modelling layer: variables, linear expressions, constraints and integer
//! programs.
//!
//! The cardinality systems Ψ_D, C_Σ and Ψ(D,Σ) of the paper are built as
//! [`IntegerProgram`] values: every `|ext(τ)|` and `x^i_{τ,τ'}` becomes a
//! non-negative integer [`VarId`], the per-production equalities and the
//! constraint-derived (in)equalities become [`LinearConstraint`]s, and the
//! attribute-totality implications `|ext(τ)| > 0 → |ext(τ.l)| > 0` become
//! [`ConditionalConstraint`]s.

use std::collections::BTreeMap;
use std::fmt;

use crate::bignum::BigInt;
use crate::rational::Rational;

/// Identifier of a variable within one [`IntegerProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl VarId {
    /// Index into the program's variable table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A single integer variable.
#[derive(Debug, Clone)]
pub struct Variable {
    /// Human-readable name, used in diagnostics and the textual dump of the
    /// system (e.g. `ext(teacher)` or `occ1(subject,teach)`).
    pub name: String,
    /// Inclusive lower bound. All cardinality variables are non-negative.
    pub lower: BigInt,
    /// Optional inclusive upper bound.
    pub upper: Option<BigInt>,
}

/// Comparison operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr = rhs`
    Eq,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmpOp::Le => write!(f, "<="),
            CmpOp::Ge => write!(f, ">="),
            CmpOp::Eq => write!(f, "="),
        }
    }
}

/// A linear expression `Σ c_i · x_i` with rational coefficients.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinExpr {
    terms: BTreeMap<VarId, Rational>,
}

impl LinExpr {
    /// The empty (zero) expression.
    pub fn new() -> LinExpr {
        LinExpr::default()
    }

    /// The expression consisting of a single variable with coefficient 1.
    pub fn var(v: VarId) -> LinExpr {
        let mut e = LinExpr::new();
        e.add_term(v, Rational::one());
        e
    }

    /// The expression `c · v`.
    pub fn term(c: impl Into<Rational>, v: VarId) -> LinExpr {
        let mut e = LinExpr::new();
        e.add_term(v, c.into());
        e
    }

    /// Adds `c · v` to the expression, merging with an existing term for `v`.
    pub fn add_term(&mut self, v: VarId, c: Rational) -> &mut Self {
        if c.is_zero() {
            return self;
        }
        let entry = self.terms.entry(v).or_default();
        *entry = &*entry + &c;
        if entry.is_zero() {
            self.terms.remove(&v);
        }
        self
    }

    /// Adds another expression to this one.
    pub fn add_expr(&mut self, other: &LinExpr) -> &mut Self {
        for (v, c) in &other.terms {
            self.add_term(*v, c.clone());
        }
        self
    }

    /// Subtracts another expression from this one.
    pub fn sub_expr(&mut self, other: &LinExpr) -> &mut Self {
        for (v, c) in &other.terms {
            self.add_term(*v, -c.clone());
        }
        self
    }

    /// Multiplies every coefficient by `c`.
    pub fn scale(&mut self, c: &Rational) -> &mut Self {
        if c.is_zero() {
            self.terms.clear();
            return self;
        }
        for coeff in self.terms.values_mut() {
            *coeff = &*coeff * c;
        }
        self
    }

    /// Iterates over the `(variable, coefficient)` terms.
    pub fn terms(&self) -> impl Iterator<Item = (VarId, &Rational)> {
        self.terms.iter().map(|(v, c)| (*v, c))
    }

    /// Number of non-zero terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` iff the expression has no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Coefficient of `v` (zero if absent).
    pub fn coeff(&self, v: VarId) -> Rational {
        self.terms.get(&v).cloned().unwrap_or_default()
    }

    /// Evaluates the expression under an integer assignment.
    pub fn eval(&self, assignment: &Assignment) -> Rational {
        let mut acc = Rational::zero();
        for (v, c) in &self.terms {
            acc += &(c * &Rational::from(assignment.get(*v).clone()));
        }
        acc
    }

    /// Evaluates the expression under a rational assignment indexed by
    /// variable position.
    pub fn eval_rational(&self, values: &[Rational]) -> Rational {
        let mut acc = Rational::zero();
        for (v, c) in &self.terms {
            acc += &(c * &values[v.index()]);
        }
        acc
    }
}

/// A linear constraint `expr op rhs`.
#[derive(Debug, Clone)]
pub struct LinearConstraint {
    /// Left-hand side.
    pub expr: LinExpr,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand side constant.
    pub rhs: Rational,
    /// Optional provenance label (which DTD rule / which XML constraint
    /// produced this row), used in diagnostics and explanations.
    pub label: String,
}

impl LinearConstraint {
    /// Checks whether the constraint holds under an integer assignment.
    pub fn holds(&self, assignment: &Assignment) -> bool {
        let lhs = self.expr.eval(assignment);
        match self.op {
            CmpOp::Le => lhs <= self.rhs,
            CmpOp::Ge => lhs >= self.rhs,
            CmpOp::Eq => lhs == self.rhs,
        }
    }
}

impl fmt::Display for LinearConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in self.expr.terms() {
            if first {
                write!(f, "{c}·x{}", v.0)?;
                first = false;
            } else {
                write!(f, " + {c}·x{}", v.0)?;
            }
        }
        if first {
            write!(f, "0")?;
        }
        write!(f, " {} {}", self.op, self.rhs)
    }
}

/// A conditional constraint `antecedent > 0  →  consequent > 0`.
///
/// These are exactly the `|ext(τ)| > 0 → |ext(τ.l)| > 0` rows of Ψ(D,Σ); the
/// paper eliminates them either by case analysis over subsets or by the
/// big-constant rewriting `c · consequent ≥ antecedent`.  The solver supports
/// both treatments (see [`crate::solver::ConditionalMode`]).
#[derive(Debug, Clone)]
pub struct ConditionalConstraint {
    /// The variable whose positivity triggers the implication.
    pub antecedent: VarId,
    /// The variable that must then be positive.
    pub consequent: VarId,
    /// Provenance label.
    pub label: String,
}

impl ConditionalConstraint {
    /// Checks whether the implication holds under an integer assignment.
    pub fn holds(&self, assignment: &Assignment) -> bool {
        !assignment.get(self.antecedent).is_positive()
            || assignment.get(self.consequent).is_positive()
    }
}

/// A complete integer program: variables, linear constraints and conditional
/// constraints.  All variables are integer-valued.
#[derive(Debug, Clone, Default)]
pub struct IntegerProgram {
    vars: Vec<Variable>,
    constraints: Vec<LinearConstraint>,
    conditionals: Vec<ConditionalConstraint>,
}

impl IntegerProgram {
    /// Creates an empty program.
    pub fn new() -> IntegerProgram {
        IntegerProgram::default()
    }

    /// Adds a fresh non-negative integer variable and returns its id.
    pub fn add_var(&mut self, name: impl Into<String>) -> VarId {
        self.add_var_bounded(name, BigInt::zero(), None)
    }

    /// Adds a fresh integer variable with the given bounds.
    pub fn add_var_bounded(
        &mut self,
        name: impl Into<String>,
        lower: BigInt,
        upper: Option<BigInt>,
    ) -> VarId {
        let id = VarId(u32::try_from(self.vars.len()).expect("too many variables"));
        self.vars.push(Variable {
            name: name.into(),
            lower,
            upper,
        });
        id
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of linear constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Number of conditional constraints.
    pub fn num_conditionals(&self) -> usize {
        self.conditionals.len()
    }

    /// The variable table.
    pub fn vars(&self) -> &[Variable] {
        &self.vars
    }

    /// Mutable access to a variable (used by the solver to tighten bounds).
    pub fn var_mut(&mut self, v: VarId) -> &mut Variable {
        &mut self.vars[v.index()]
    }

    /// The linear constraints.
    pub fn constraints(&self) -> &[LinearConstraint] {
        &self.constraints
    }

    /// The conditional constraints.
    pub fn conditionals(&self) -> &[ConditionalConstraint] {
        &self.conditionals
    }

    /// Adds a generic linear constraint.
    pub fn add_constraint(
        &mut self,
        expr: LinExpr,
        op: CmpOp,
        rhs: impl Into<Rational>,
        label: impl Into<String>,
    ) {
        self.constraints.push(LinearConstraint {
            expr,
            op,
            rhs: rhs.into(),
            label: label.into(),
        });
    }

    /// Adds `expr <= rhs`.
    pub fn add_le(&mut self, expr: LinExpr, rhs: impl Into<Rational>, label: impl Into<String>) {
        self.add_constraint(expr, CmpOp::Le, rhs, label);
    }

    /// Adds `expr >= rhs`.
    pub fn add_ge(&mut self, expr: LinExpr, rhs: impl Into<Rational>, label: impl Into<String>) {
        self.add_constraint(expr, CmpOp::Ge, rhs, label);
    }

    /// Adds `expr = rhs`.
    pub fn add_eq(&mut self, expr: LinExpr, rhs: impl Into<Rational>, label: impl Into<String>) {
        self.add_constraint(expr, CmpOp::Eq, rhs, label);
    }

    /// Adds the equality `lhs_var = rhs_expr`.
    pub fn add_var_eq_expr(&mut self, lhs: VarId, rhs: LinExpr, label: impl Into<String>) {
        let mut expr = LinExpr::var(lhs);
        expr.sub_expr(&rhs);
        self.add_eq(expr, Rational::zero(), label);
    }

    /// Adds the conditional constraint `antecedent > 0 → consequent > 0`.
    pub fn add_conditional(
        &mut self,
        antecedent: VarId,
        consequent: VarId,
        label: impl Into<String>,
    ) {
        self.conditionals.push(ConditionalConstraint {
            antecedent,
            consequent,
            label: label.into(),
        });
    }

    /// Checks whether a full integer assignment satisfies every bound, linear
    /// constraint and conditional constraint of the program.
    pub fn is_satisfied_by(&self, assignment: &Assignment) -> bool {
        self.violation(assignment).is_none()
    }

    /// Returns a human-readable description of the first violated
    /// bound/constraint, or `None` if the assignment is feasible.
    pub fn violation(&self, assignment: &Assignment) -> Option<String> {
        if assignment.len() != self.vars.len() {
            return Some(format!(
                "assignment has {} values but program has {} variables",
                assignment.len(),
                self.vars.len()
            ));
        }
        for (i, var) in self.vars.iter().enumerate() {
            let v = assignment.get(VarId(i as u32));
            if *v < var.lower {
                return Some(format!(
                    "{} = {} below lower bound {}",
                    var.name, v, var.lower
                ));
            }
            if let Some(u) = &var.upper {
                if v > u {
                    return Some(format!("{} = {} above upper bound {}", var.name, v, u));
                }
            }
        }
        for c in &self.constraints {
            if !c.holds(assignment) {
                return Some(format!("violated [{}]: {}", c.label, c));
            }
        }
        for c in &self.conditionals {
            if !c.holds(assignment) {
                return Some(format!(
                    "violated conditional [{}]: x{} > 0 → x{} > 0",
                    c.label, c.antecedent.0, c.consequent.0
                ));
            }
        }
        None
    }

    /// Largest absolute value among all integer coefficients and right-hand
    /// sides once the system is scaled to integer coefficients.  This is the
    /// `a` of the Papadimitriou bound.
    pub fn max_abs_coefficient(&self) -> BigInt {
        let mut a = BigInt::one();
        for c in &self.constraints {
            // Scale the row to integers: multiply by lcm of denominators.
            let mut lcm = BigInt::one();
            for (_, coeff) in c.expr.terms() {
                let d = coeff.denom();
                let g = lcm.gcd(d);
                lcm = &(&lcm / &g) * d;
            }
            let g = lcm.gcd(c.rhs.denom());
            lcm = &(&lcm / &g) * c.rhs.denom();
            for (_, coeff) in c.expr.terms() {
                let scaled = (coeff * &Rational::from(lcm.clone())).numer().abs();
                if scaled > a {
                    a = scaled;
                }
            }
            let scaled_rhs = (&c.rhs * &Rational::from(lcm.clone())).numer().abs();
            if scaled_rhs > a {
                a = scaled_rhs;
            }
        }
        a
    }

    /// Renders the program as a human-readable multi-line string (used by the
    /// `spec_linter` example and in debugging output).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "variables ({}):", self.vars.len());
        for (i, v) in self.vars.iter().enumerate() {
            let upper = v
                .upper
                .as_ref()
                .map(|u| u.to_string())
                .unwrap_or_else(|| "∞".into());
            let _ = writeln!(out, "  x{i} = {}  ∈ [{}, {}]", v.name, v.lower, upper);
        }
        let _ = writeln!(out, "constraints ({}):", self.constraints.len());
        for c in &self.constraints {
            let _ = writeln!(out, "  {}    [{}]", c, c.label);
        }
        if !self.conditionals.is_empty() {
            let _ = writeln!(out, "conditionals ({}):", self.conditionals.len());
            for c in &self.conditionals {
                let _ = writeln!(
                    out,
                    "  x{} > 0 → x{} > 0    [{}]",
                    c.antecedent.0, c.consequent.0, c.label
                );
            }
        }
        out
    }
}

/// An integer assignment to all variables of a program, indexed by [`VarId`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    values: Vec<BigInt>,
}

impl Assignment {
    /// Creates an assignment from a vector of values (indexed by variable).
    pub fn new(values: Vec<BigInt>) -> Assignment {
        Assignment { values }
    }

    /// An all-zero assignment over `n` variables.
    pub fn zeros(n: usize) -> Assignment {
        Assignment {
            values: vec![BigInt::zero(); n],
        }
    }

    /// Value of a variable.
    pub fn get(&self, v: VarId) -> &BigInt {
        &self.values[v.index()]
    }

    /// Sets the value of a variable.
    pub fn set(&mut self, v: VarId, value: BigInt) {
        self.values[v.index()] = value;
    }

    /// Number of variables covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` iff the assignment covers no variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The underlying values, indexed by variable position.
    pub fn values(&self) -> &[BigInt] {
        &self.values
    }

    /// Convenience accessor returning the value as `u64` (cardinalities in
    /// practical witnesses always fit).
    pub fn get_u64(&self, v: VarId) -> Option<u64> {
        self.get(v).to_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::new(BigInt::from(n), BigInt::from(d))
    }

    #[test]
    fn expr_building_merges_terms() {
        let x = VarId(0);
        let y = VarId(1);
        let mut e = LinExpr::var(x);
        e.add_term(x, Rational::one());
        e.add_term(y, r(1, 2));
        assert_eq!(e.coeff(x), Rational::from_int(2i64));
        assert_eq!(e.coeff(y), r(1, 2));
        e.add_term(y, r(-1, 2));
        assert_eq!(e.len(), 1);
        assert!(e.coeff(y).is_zero());
    }

    #[test]
    fn expr_scale_and_combine() {
        let x = VarId(0);
        let y = VarId(1);
        let mut e = LinExpr::var(x);
        e.add_expr(&LinExpr::term(Rational::from_int(3i64), y));
        e.scale(&Rational::from_int(2i64));
        assert_eq!(e.coeff(x), Rational::from_int(2i64));
        assert_eq!(e.coeff(y), Rational::from_int(6i64));
        let mut f = e.clone();
        f.sub_expr(&e);
        assert!(f.is_empty());
    }

    #[test]
    fn constraint_holds() {
        let mut prog = IntegerProgram::new();
        let x = prog.add_var("x");
        let y = prog.add_var("y");
        let mut e = LinExpr::var(x);
        e.add_term(y, Rational::from_int(2i64));
        prog.add_le(e, Rational::from_int(10i64), "cap");
        let mut a = Assignment::zeros(2);
        a.set(x, BigInt::from(4i64));
        a.set(y, BigInt::from(3i64));
        assert!(prog.is_satisfied_by(&a));
        a.set(y, BigInt::from(4i64));
        assert!(!prog.is_satisfied_by(&a));
        assert!(prog.violation(&a).unwrap().contains("cap"));
    }

    #[test]
    fn conditional_holds() {
        let mut prog = IntegerProgram::new();
        let x = prog.add_var("x");
        let y = prog.add_var("y");
        prog.add_conditional(x, y, "x→y");
        let mut a = Assignment::zeros(2);
        assert!(prog.is_satisfied_by(&a));
        a.set(x, BigInt::from(1i64));
        assert!(!prog.is_satisfied_by(&a));
        a.set(y, BigInt::from(5i64));
        assert!(prog.is_satisfied_by(&a));
    }

    #[test]
    fn bounds_checked() {
        let mut prog = IntegerProgram::new();
        let x = prog.add_var_bounded("x", BigInt::from(1i64), Some(BigInt::from(3i64)));
        let mut a = Assignment::zeros(1);
        assert!(!prog.is_satisfied_by(&a));
        a.set(x, BigInt::from(3i64));
        assert!(prog.is_satisfied_by(&a));
        a.set(x, BigInt::from(4i64));
        assert!(!prog.is_satisfied_by(&a));
    }

    #[test]
    fn max_abs_coefficient_scales_rationals() {
        let mut prog = IntegerProgram::new();
        let x = prog.add_var("x");
        let y = prog.add_var("y");
        let mut e = LinExpr::term(r(1, 2), x);
        e.add_term(y, r(1, 3));
        prog.add_le(e, r(7, 1), "row");
        // Scaled by 6: 3x + 2y <= 42, so a = 42.
        assert_eq!(prog.max_abs_coefficient(), BigInt::from(42i64));
    }

    #[test]
    fn render_mentions_names() {
        let mut prog = IntegerProgram::new();
        let x = prog.add_var("ext(teacher)");
        prog.add_ge(LinExpr::var(x), Rational::one(), "nonempty");
        let s = prog.render();
        assert!(s.contains("ext(teacher)"));
        assert!(s.contains("nonempty"));
    }
}
