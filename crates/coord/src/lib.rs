//! # xic-coord — multi-process sharded validation
//!
//! PR 9 landed every single-process ingredient of distributed validation:
//! the touch-graph [`xic_constraints::ShardPlan`], shard-tagged
//! [`xic_engine::BatchDelta`]s, scoped sessions
//! ([`xic_engine::CorpusSession::scope_to_shards`]) and shard-filtered wire
//! sync.  This crate is the multi-process half: a [`Coordinator`] that
//! reads a [`xic_engine::CompiledSpec`]'s shard plan, spawns one
//! `xic serve` child per shard *group* (`workers` processes over K shards,
//! shard *s* on group `s % workers`), and exposes the same client-facing
//! session surface — open / apply / close / commit — as a single server.
//!
//! **Routing.** Every edit batch is applied to a coordinator-side mirror
//! tree first; the resulting [`xic_xml::EditEffect`]s map to dirty shards
//! through the spec's incremental layout (the exact marks each worker's
//! index makes), and the batch is delivered only to the groups owning
//! those shards.  Group 0 is the *structural authority* and receives every
//! batch — structural `T ⊨ D` validation depends on attributes and text,
//! so no edit may bypass it.  Opens and closes broadcast.  Groups a batch
//! cannot affect enqueue it instead, and the queue is flushed, in order,
//! before the group's next delivery, so every worker applies the same
//! per-document op sequence (identical arenas, identical `NodeId`s).
//!
//! **Merging.** Each worker runs its session scoped to its shards, so its
//! commit deltas are wire-v2 projected frames; the
//! [`xic_engine::ReportMerger`] recombines them — Σ violations unioned by
//! shard partition, structural errors and faults taken from the authority
//! once (broadcast copies deduplicated), per-document clean state and
//! corpus totals recomputed — into merged [`xic_engine::BatchDelta`]s and
//! reports equal to a monolithic [`xic_engine::CorpusSession`]'s, held to
//! that by the `coord_agreement` differential suite.
//!
//! **Supervision.** Every delivered event is journaled per group.  A
//! worker whose transport dies is killed, respawned (fresh `--addr-file`
//! handshake) and resynced by replaying its journal — identical traffic,
//! deterministic sessions — before the in-flight call is retried; the
//! restart budget (`max_restarts`) exhausted, the coordinator rejects
//! with [`CoordError::WorkerLost`] instead of acknowledging a partial
//! verdict (recover-or-reject).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod coordinator;
mod worker;

pub use coordinator::{CoordConfig, Coordinator};

use std::fmt;

use xic_engine::WireFault;

/// Everything that can go wrong coordinating shard workers.  The
/// [`CoordError::exit_code`] mapping preserves the CLI taxonomy: `2`
/// protocol/document, `3` resource, `4` contained fault or a lost worker.
#[derive(Debug)]
pub enum CoordError {
    /// A file or process operation failed.
    Io {
        /// What was being accessed.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The spec files did not compile.
    Spec(String),
    /// A document was rejected (parse failure, unknown handle, bad edit).
    Document(String),
    /// A worker answered with a structured fault record; its code carries
    /// the exit taxonomy unchanged.
    Fault(WireFault),
    /// A worker answered, but not with what the protocol (or determinism)
    /// requires — e.g. a resync replay diverging from the original run.
    Protocol(String),
    /// A shard worker could not be spawned or never completed the
    /// `--addr-file` handshake.
    WorkerSpawn(String),
    /// A worker crashed more times than the restart budget allows; the
    /// coordinator rejects rather than risk a wrong or partial verdict.
    WorkerLost {
        /// The shard group whose worker is gone.
        group: usize,
        /// Restarts attempted before giving up.
        attempts: usize,
        /// The last transport failure observed.
        cause: String,
    },
}

impl CoordError {
    /// The process exit code this error maps to, mirroring the CLI
    /// taxonomy (`2` error, `3` resource rejection, `4` contained fault).
    pub fn exit_code(&self) -> i32 {
        match self {
            CoordError::Fault(fault) => i32::from(fault.code),
            CoordError::WorkerLost { .. } => 4,
            _ => 2,
        }
    }
}

impl fmt::Display for CoordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordError::Io { context, source } => {
                write!(f, "cannot access `{context}`: {source}")
            }
            CoordError::Spec(msg) => write!(f, "specification error: {msg}"),
            CoordError::Document(msg) => write!(f, "document error: {msg}"),
            CoordError::Fault(fault) => write!(f, "worker fault: {fault}"),
            CoordError::Protocol(msg) => write!(f, "coordination protocol error: {msg}"),
            CoordError::WorkerSpawn(msg) => write!(f, "worker spawn failed: {msg}"),
            CoordError::WorkerLost {
                group,
                attempts,
                cause,
            } => write!(
                f,
                "shard worker {group} lost after {attempts} restart(s): {cause}"
            ),
        }
    }
}

impl std::error::Error for CoordError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoordError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}
