//! Shard-worker child processes: spawn `xic serve` scoped to a shard
//! group, discover its ephemeral port through the `--addr-file`
//! handshake, and connect a wire client to it.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use xic_engine::SpecId;
use xic_server::Client;

use crate::CoordError;

/// How long a freshly spawned `xic serve` gets to bind its listener and
/// write the address file before the spawn is declared dead.
const SPAWN_TIMEOUT: Duration = Duration::from_secs(20);

/// The inputs a (re)spawn needs; owned by the coordinator so a crashed
/// worker can be relaunched with the same spec arguments at any time.
#[derive(Debug, Clone)]
pub(crate) struct WorkerSpec {
    /// The `xic` binary to exec.
    pub xic_bin: PathBuf,
    /// `--dtd` file path handed to the child verbatim.
    pub dtd: PathBuf,
    /// `--root` override, when one was given.
    pub root: Option<String>,
    /// `--constraints` file path, when constraints exist.
    pub constraints: Option<PathBuf>,
    /// Scratch directory for address files.
    pub scratch: PathBuf,
    /// The session name every worker hosts.
    pub session: String,
    /// The compiled spec's identity, asserted by the wire handshake.
    pub spec_id: SpecId,
}

/// One shard-group worker: the child process plus the connected client.
pub(crate) struct Worker {
    /// The child `xic serve` process.
    pub child: Child,
    /// The connected wire client.
    pub client: Client,
    /// How many times this worker has been restarted after a crash.
    pub restarts: usize,
}

impl Worker {
    /// Kills the child outright — the crash-injection hook the chaos tests
    /// use, and the cleanup path on drop/teardown.
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        self.kill();
    }
}

fn io_err(context: &str, source: std::io::Error) -> CoordError {
    CoordError::Io {
        context: context.to_string(),
        source,
    }
}

/// Spawns one `xic serve` child scoped to `shards`, waits for the
/// `--addr-file` handshake, and connects.  `generation` makes the address
/// file unique per (group, respawn), so a stale file from a killed child
/// can never be mistaken for the new one.
pub(crate) fn spawn_worker(
    spec: &WorkerSpec,
    group: usize,
    shards: &[u32],
    generation: usize,
) -> Result<(Child, Client), CoordError> {
    let addr_file = spec
        .scratch
        .join(format!("coord-worker-{group}-gen{generation}.addr"));
    let _ = std::fs::remove_file(&addr_file);
    std::fs::create_dir_all(&spec.scratch)
        .map_err(|e| io_err(&spec.scratch.display().to_string(), e))?;

    let mut command = Command::new(&spec.xic_bin);
    command
        .arg("serve")
        .arg("--dtd")
        .arg(&spec.dtd)
        .arg("--listen")
        .arg("127.0.0.1:0")
        .arg("--addr-file")
        .arg(&addr_file)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some(root) = &spec.root {
        command.arg("--root").arg(root);
    }
    if let Some(constraints) = &spec.constraints {
        command.arg("--constraints").arg(constraints);
    }
    if !shards.is_empty() {
        let list = shards
            .iter()
            .map(u32::to_string)
            .collect::<Vec<_>>()
            .join(",");
        command.arg("--scope-shards").arg(list);
    }

    let mut child = command
        .spawn()
        .map_err(|e| io_err(&spec.xic_bin.display().to_string(), e))?;

    let addr = match await_addr(&addr_file, &mut child) {
        Ok(addr) => addr,
        Err(err) => {
            let _ = child.kill();
            let _ = child.wait();
            return Err(err);
        }
    };

    match connect(addr, spec) {
        Ok(client) => Ok((child, client)),
        Err(err) => {
            let _ = child.kill();
            let _ = child.wait();
            Err(err)
        }
    }
}

/// Polls the address file until the child has written a parseable socket
/// address (the write is a single small `fs::write`, so a partial read
/// fails to parse and the poll retries).
fn await_addr(addr_file: &Path, child: &mut Child) -> Result<SocketAddr, CoordError> {
    let start = Instant::now();
    loop {
        if let Ok(text) = std::fs::read_to_string(addr_file) {
            if let Ok(addr) = text.trim().parse::<SocketAddr>() {
                return Ok(addr);
            }
        }
        if let Ok(Some(status)) = child.try_wait() {
            return Err(CoordError::WorkerSpawn(format!(
                "shard worker exited during startup with {status}"
            )));
        }
        if start.elapsed() > SPAWN_TIMEOUT {
            return Err(CoordError::WorkerSpawn(format!(
                "shard worker wrote no address to {} within {SPAWN_TIMEOUT:?}",
                addr_file.display()
            )));
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Connects to a freshly announced worker.  The server binds before it
/// writes the address file, so one attempt normally suffices; a short
/// retry loop absorbs scheduler hiccups on loaded machines.
fn connect(addr: SocketAddr, spec: &WorkerSpec) -> Result<Client, CoordError> {
    let start = Instant::now();
    loop {
        match Client::connect_tcp(addr, spec.spec_id, &spec.session) {
            Ok(client) => return Ok(client),
            Err(err) => {
                if start.elapsed() > SPAWN_TIMEOUT {
                    return Err(CoordError::WorkerSpawn(format!(
                        "cannot connect to shard worker at {addr}: {err}"
                    )));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}
