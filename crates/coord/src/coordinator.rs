//! The coordinator: route edit batches to shard-group workers, fan out
//! commits, merge the projected verdicts (see crate docs for the model).

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::Arc;

use xic_constraints::{IncrementalLayout, ShardPlan};
use xic_engine::{BatchDelta, BatchReport, CompiledSpec, DocHandle, Engine, ReportMerger};
use xic_server::{Client, ClientError};
use xic_telemetry::RegistrySnapshot;
use xic_xml::{EditEffect, EditOp, XmlTree};

use crate::worker::{spawn_worker, Worker, WorkerSpec};
use crate::CoordError;

/// How a [`Coordinator`] is launched: the spec files every worker compiles
/// (identity is the content hash, so coordinator and children agree on the
/// wire `SpecId` by construction), the process fan-out, and the
/// crash-restart budget.
#[derive(Debug, Clone)]
pub struct CoordConfig {
    /// The `xic` binary to spawn shard workers from.
    pub xic_bin: PathBuf,
    /// The DTD file (passed to children verbatim).
    pub dtd: PathBuf,
    /// Root element override (`--root`).
    pub root: Option<String>,
    /// The constraint file; `None` means an empty Σ (one unscoped worker).
    pub constraints: Option<PathBuf>,
    /// Worker processes to spread the shard plan over (clamped to the
    /// number of shards; at least one process always runs).
    pub workers: usize,
    /// Scratch directory for the `--addr-file` handshake.
    pub scratch: PathBuf,
    /// The session name hosted on every worker.
    pub session: String,
    /// Per-worker crash-restart budget: a worker that fails more than this
    /// many times makes the coordinator reject (never a partial verdict).
    pub max_restarts: usize,
}

/// A routed event, as delivered to (and journaled for) one worker.  The
/// journal is the resync source: a restarted worker is replayed its exact
/// delivered traffic, in order, before the coordinator acknowledges
/// anything further on its shards.
#[derive(Debug, Clone)]
enum Event {
    Open {
        handle: u64,
        label: String,
        source: String,
    },
    Apply {
        handle: u64,
        ops: Vec<EditOp>,
    },
    Close {
        handle: u64,
    },
    Commit,
}

/// The coordinator's own copy of one open document: the tree it routes
/// against (edits are applied here first, and their [`EditEffect`]s mapped
/// to dirty shards through the spec's incremental layout).
#[derive(Debug)]
struct MirrorDoc {
    tree: XmlTree,
    label: String,
}

/// Per-commit-round routing state, reset by [`Coordinator::commit`].
#[derive(Debug, Default)]
struct Round {
    /// An open happened: the round is broadcast (every group commits).
    broadcast: bool,
    /// Documents opened or edited since the last commit (minus closes) —
    /// the monolithic session's dirty set, for `rechecked_docs`.
    dirty_docs: BTreeSet<u64>,
    /// Shards each document's edits dirtied since the last commit — the
    /// tag a non-broadcast merged change carries.
    dirty_shards: BTreeMap<u64, Vec<u32>>,
    /// Groups that received an apply this round (they must commit).
    participants: BTreeSet<usize>,
}

/// Multi-process sharded validation with a single-session face: documents
/// open, edit batches apply, commits fan out to one `xic serve` child per
/// shard group and the projected per-shard deltas merge back into
/// [`BatchDelta`]s and reports identical to a monolithic
/// [`xic_engine::CorpusSession`] over the same traffic.
pub struct Coordinator {
    spec: CompiledSpec,
    worker_spec: WorkerSpec,
    max_restarts: usize,
    /// Shards per group; `groups.len()` == number of workers.
    groups: Vec<Vec<u32>>,
    workers: Vec<Worker>,
    /// Per-group delivered-traffic journal (the resync source).
    journals: Vec<Vec<Event>>,
    /// Per-group FIFO of applies not yet delivered (they dirtied none of
    /// the group's shards); flushed, in order, before any later delivery
    /// so every worker applies the same per-document op sequence.
    pending: Vec<Vec<Event>>,
    docs: BTreeMap<u64, MirrorDoc>,
    merger: ReportMerger,
    round: Round,
    /// The merged delta stream, in `seq` order.
    deltas: Vec<BatchDelta>,
    /// Monotonic spawn counter (unique address files across respawns).
    generation: usize,
}

impl Coordinator {
    /// Compiles the spec from the configured files, partitions its
    /// [`ShardPlan`] over `config.workers` groups (shard *s* goes to group
    /// `s % groups`), and spawns one scoped `xic serve` child per group.
    /// Group 0 is the *structural authority*: it receives every edit batch
    /// (structural `T ⊨ D` validation depends on attributes, so no batch
    /// may bypass it) and the merge takes structural errors and faults
    /// from its frames alone.
    pub fn launch(config: CoordConfig) -> Result<Coordinator, CoordError> {
        let read = |path: &PathBuf| {
            std::fs::read_to_string(path).map_err(|source| CoordError::Io {
                context: path.display().to_string(),
                source,
            })
        };
        let dtd_src = read(&config.dtd)?;
        let sigma_src = match &config.constraints {
            Some(path) => read(path)?,
            None => String::new(),
        };
        let spec = CompiledSpec::from_sources(&dtd_src, config.root.as_deref(), &sigma_src)
            .map_err(|e| CoordError::Spec(e.to_string()))?;

        // Shard workers are `xic serve` processes, and the server refuses
        // to host an inconsistent spec (every session would report
        // violations forever).  Check up front so the refusal is one clean
        // spec error instead of N identical worker-spawn failures.
        if Engine::new().consistency(&spec).decision() == Some(false) {
            return Err(CoordError::Spec(format!(
                "refusing to coordinate an inconsistent spec: {}",
                spec.id()
            )));
        }

        let num_shards = spec.shard_plan().num_shards();
        let group_count = config.workers.max(1).min(num_shards.max(1));
        let mut groups: Vec<Vec<u32>> = vec![Vec::new(); group_count];
        for shard in spec.shard_plan().all_shards() {
            groups[shard as usize % group_count].push(shard);
        }

        let worker_spec = WorkerSpec {
            xic_bin: config.xic_bin,
            dtd: config.dtd,
            root: config.root,
            constraints: config.constraints,
            scratch: config.scratch,
            session: config.session,
            spec_id: spec.id(),
        };

        let mut workers = Vec::with_capacity(group_count);
        let mut generation = 0;
        for (group, shards) in groups.iter().enumerate() {
            generation += 1;
            let (child, client) = spawn_worker(&worker_spec, group, shards, generation)?;
            workers.push(Worker {
                child,
                client,
                restarts: 0,
            });
        }

        let merger = ReportMerger::new(Arc::clone(spec.shard_plan()));
        Ok(Coordinator {
            spec,
            worker_spec,
            max_restarts: config.max_restarts,
            journals: vec![Vec::new(); group_count],
            pending: vec![Vec::new(); group_count],
            groups,
            workers,
            docs: BTreeMap::new(),
            merger,
            round: Round::default(),
            deltas: Vec::new(),
            generation,
        })
    }

    /// The compiled spec the coordinator routes against.
    pub fn spec(&self) -> &CompiledSpec {
        &self.spec
    }

    /// Number of shard-group workers.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// The shards group `group` owns.
    pub fn group_shards(&self, group: usize) -> &[u32] {
        &self.groups[group]
    }

    /// Opens a document on every worker (opens broadcast: all sessions
    /// must mint the same handle, and a new document is checked against
    /// every shard).  Returns the corpus-wide handle.
    pub fn open_doc(&mut self, label: &str, source: &str) -> Result<u64, CoordError> {
        let tree = self
            .spec
            .parse_document(source)
            .map_err(|e| CoordError::Document(format!("open `{label}`: {e}")))?;

        // Group 0 mints the canonical handle; every other worker has seen
        // the identical open sequence, so its handle must agree.
        let handle = self.call_worker(0, |client| client.open_doc(label, source))?;
        self.journals[0].push(Event::Open {
            handle,
            label: label.to_owned(),
            source: source.to_owned(),
        });
        for group in 1..self.groups.len() {
            self.deliver(
                group,
                Event::Open {
                    handle,
                    label: label.to_owned(),
                    source: source.to_owned(),
                },
            )?;
        }

        self.docs.insert(
            handle,
            MirrorDoc {
                tree,
                label: label.to_owned(),
            },
        );
        self.merger.open(DocHandle::from_raw(handle), label);
        self.round.broadcast = true;
        self.round.dirty_docs.insert(handle);
        Ok(handle)
    }

    /// Applies an edit batch: the ops run on the coordinator's mirror tree
    /// first, their effects map to dirty shards through the incremental
    /// layout (exactly the marks each worker's index will make), and the
    /// batch is delivered to the groups owning those shards plus the
    /// structural authority.  Groups the batch cannot affect only enqueue
    /// it, to be flushed before their next delivery.
    pub fn apply(&mut self, handle: u64, ops: &[EditOp]) -> Result<(), CoordError> {
        let layout = Arc::clone(self.spec.incremental_layout());
        let plan = Arc::clone(self.spec.shard_plan());
        let doc = self.docs.get_mut(&handle).ok_or_else(|| {
            CoordError::Document(format!("apply: no open document with handle {handle}"))
        })?;

        let mut batch_shards: BTreeSet<u32> = BTreeSet::new();
        let mut failed: Option<(usize, String)> = None;
        let mut applied = 0;
        for (index, op) in ops.iter().enumerate() {
            match doc.tree.apply_edit(op) {
                Ok(effect) => {
                    shards_of_effect(&layout, &plan, &effect, &mut batch_shards);
                    applied = index + 1;
                }
                Err(e) => {
                    // Mirror the monolithic session: the prefix before the
                    // failing op stays applied, the rest is dropped.
                    failed = Some((index, e.to_string()));
                    break;
                }
            }
        }
        let delivered_ops = &ops[..applied];

        // The monolithic session marks the document dirty before applying
        // the batch, so even a fully rejected batch triggers a recheck —
        // the (possibly empty) applied prefix is delivered the same way.
        self.round.dirty_docs.insert(handle);
        self.round
            .dirty_shards
            .entry(handle)
            .or_default()
            .extend(batch_shards.iter().copied());

        let owners: BTreeSet<usize> = std::iter::once(0)
            .chain(batch_shards.iter().map(|&s| s as usize % self.groups.len()))
            .collect();
        let event = Event::Apply {
            handle,
            ops: delivered_ops.to_vec(),
        };
        for group in 0..self.groups.len() {
            if owners.contains(&group) {
                self.flush_pending(group)?;
                self.deliver(group, event.clone())?;
                self.round.participants.insert(group);
            } else {
                self.pending[group].push(event.clone());
            }
        }

        match failed {
            Some((index, message)) => Err(CoordError::Document(format!(
                "apply to handle {handle}: op {index} rejected: {message}"
            ))),
            None => Ok(()),
        }
    }

    /// Closes a document everywhere.  Pending (undelivered) applies for it
    /// are dropped first — the worker closes the document without ever
    /// applying them, which is indistinguishable once it is gone.  Returns
    /// the label; the close is announced by the next merged delta.
    pub fn close_doc(&mut self, handle: u64) -> Result<String, CoordError> {
        let doc = self.docs.remove(&handle).ok_or_else(|| {
            CoordError::Document(format!("close: no open document with handle {handle}"))
        })?;
        for queue in &mut self.pending {
            queue.retain(|event| !matches!(event, Event::Apply { handle: h, .. } if *h == handle));
        }
        for group in 0..self.groups.len() {
            self.deliver(group, Event::Close { handle })?;
        }
        self.merger.close(DocHandle::from_raw(handle));
        self.round.dirty_docs.remove(&handle);
        self.round.dirty_shards.remove(&handle);
        Ok(doc.label)
    }

    /// Commits the round: every participating group's worker commits, its
    /// projected [`xic_engine::DocChange`] frames are absorbed, and the
    /// merged [`BatchDelta`] — equal to what one monolithic session would
    /// have announced — is minted and recorded.
    ///
    /// Participants are the groups whose shards the round's edits dirtied
    /// plus the structural authority; a round containing an open is
    /// broadcast (a new document is checked against every shard).  A
    /// worker that dies mid-commit is restarted and resynced from its
    /// journal before the commit is retried; if its restart budget is
    /// exhausted the whole commit is rejected — never partially merged.
    pub fn commit(&mut self) -> Result<BatchDelta, CoordError> {
        let participants: Vec<usize> = if self.round.broadcast {
            (0..self.groups.len()).collect()
        } else {
            self.round.participants.iter().copied().collect()
        };
        for group in participants {
            if self.round.broadcast {
                self.flush_pending(group)?;
            }
            let delta = self.call_worker(group, Client::commit)?;
            self.journals[group].push(Event::Commit);
            let authority = group == 0;
            let shards = self.groups[group].clone();
            for change in &delta.changes {
                self.merger.absorb(&shards, authority, change);
            }
        }

        let round = std::mem::take(&mut self.round);
        let merged = self
            .merger
            .commit(round.dirty_docs.len(), &round.dirty_shards);
        self.deltas.push(merged.clone());
        Ok(merged)
    }

    /// The merged corpus report — shaped exactly like the monolithic
    /// [`xic_engine::CorpusSession::report`].
    pub fn report(&self) -> BatchReport {
        self.merger.report()
    }

    /// The merged delta stream so far, in `seq` order (replayable through
    /// a stock [`xic_engine::CorpusReplica`]).
    pub fn deltas(&self) -> &[BatchDelta] {
        &self.deltas
    }

    /// The last merged sequence number.
    pub fn last_seq(&self) -> u64 {
        self.merger.last_seq()
    }

    /// Open documents.
    pub fn num_docs(&self) -> usize {
        self.merger.num_docs()
    }

    /// Snapshots one worker's metrics registry (the bench reads each
    /// worker's `incremental.constraints_rechecked` from here).
    pub fn worker_stats(&mut self, group: usize) -> Result<RegistrySnapshot, CoordError> {
        self.call_worker(group, Client::stats)
    }

    /// How many times worker `group` has been restarted.
    pub fn worker_restarts(&self, group: usize) -> usize {
        self.workers[group].restarts
    }

    /// Crash-injection hook for the chaos tests: kills worker `group`'s
    /// process outright, without telling the coordinator.  The next call
    /// that needs the worker finds a dead connection and runs the
    /// restart-and-resync path.
    pub fn kill_worker(&mut self, group: usize) {
        self.workers[group].kill();
    }

    /// Gracefully shuts every worker down (wire shutdown, then reap).
    pub fn shutdown(mut self) {
        for worker in &mut self.workers {
            let _ = worker.client.shutdown();
            worker.kill();
        }
    }

    // ------------------------------------------------------------------
    // Delivery, supervision, resync
    // ------------------------------------------------------------------

    /// Runs one wire call against worker `group`, restarting and resyncing
    /// it on transport failure.  Structured server faults and protocol
    /// surprises are not crashes: they propagate (taxonomy intact) without
    /// burning restart budget.
    fn call_worker<T>(
        &mut self,
        group: usize,
        mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, CoordError> {
        loop {
            match op(&mut self.workers[group].client) {
                Ok(value) => return Ok(value),
                Err(ClientError::Fault(fault)) => return Err(CoordError::Fault(fault)),
                Err(ClientError::Protocol(detail)) => {
                    return Err(CoordError::Protocol(format!("worker {group}: {detail}")))
                }
                Err(transport) => self.restart_worker(group, &transport.to_string())?,
            }
        }
    }

    /// Restarts a crashed worker and replays its journal — its exact
    /// delivered traffic, in order — so its session state matches what the
    /// dead process held.  Journaled commits are re-issued and their
    /// deltas discarded (they were merged when first acknowledged; the
    /// replayed session recomputes the same ones deterministically).
    fn restart_worker(&mut self, group: usize, cause: &str) -> Result<(), CoordError> {
        loop {
            let attempts = self.workers[group].restarts + 1;
            if attempts > self.max_restarts {
                return Err(CoordError::WorkerLost {
                    group,
                    attempts: self.workers[group].restarts,
                    cause: cause.to_string(),
                });
            }
            self.workers[group].restarts = attempts;
            self.workers[group].kill();
            self.generation += 1;
            let (child, client) = spawn_worker(
                &self.worker_spec,
                group,
                &self.groups[group],
                self.generation,
            )?;
            self.workers[group].child = child;
            self.workers[group].client = client;
            match replay(&mut self.workers[group].client, &self.journals[group]) {
                Ok(()) => return Ok(()),
                // The respawned worker died during replay too: another
                // crash, another unit of restart budget.
                Err(ReplayFailure::Transport) => continue,
                Err(ReplayFailure::Diverged(detail)) => {
                    return Err(CoordError::Protocol(format!(
                        "worker {group} resync diverged: {detail}"
                    )))
                }
            }
        }
    }

    /// Delivers one event to a worker (with crash recovery) and journals
    /// it on success.
    fn deliver(&mut self, group: usize, event: Event) -> Result<(), CoordError> {
        match &event {
            Event::Open {
                handle,
                label,
                source,
            } => {
                let expected = *handle;
                let minted = self.call_worker(group, |client| client.open_doc(label, source))?;
                if minted != expected {
                    return Err(CoordError::Protocol(format!(
                        "worker {group} minted handle {minted} for an open every \
                         other worker minted {expected} for"
                    )));
                }
            }
            Event::Apply { handle, ops } => {
                let (handle, ops) = (*handle, ops.clone());
                self.call_worker(group, |client| client.apply(handle, &ops))?;
            }
            Event::Close { handle } => {
                let handle = *handle;
                self.call_worker(group, |client| client.close_doc(handle))?;
            }
            Event::Commit => unreachable!("commits are issued by commit(), not deliver()"),
        }
        self.journals[group].push(event);
        Ok(())
    }

    /// Flushes a group's pending applies, in order, ahead of a delivery
    /// that needs its session current.
    fn flush_pending(&mut self, group: usize) -> Result<(), CoordError> {
        let queued = std::mem::take(&mut self.pending[group]);
        for event in queued {
            self.deliver(group, event)?;
        }
        Ok(())
    }
}

/// Why a journal replay against a freshly respawned worker failed.
enum ReplayFailure {
    /// The transport died again — another crash.
    Transport,
    /// The worker answered, but differently from the original run: the
    /// resync cannot be trusted, so the coordinator rejects.
    Diverged(String),
}

/// Replays a journal against a fresh worker session.  Every event was
/// acknowledged once before, so any structured fault now means the replay
/// diverged.
fn replay(client: &mut Client, journal: &[Event]) -> Result<(), ReplayFailure> {
    let transport = |_: ClientError| ReplayFailure::Transport;
    for event in journal {
        match event {
            Event::Open {
                handle,
                label,
                source,
            } => {
                let minted = match client.open_doc(label, source) {
                    Ok(minted) => minted,
                    Err(ClientError::Fault(fault)) => {
                        return Err(ReplayFailure::Diverged(format!(
                            "open `{label}` re-faulted: {fault}"
                        )))
                    }
                    Err(e) => return Err(transport(e)),
                };
                if minted != *handle {
                    return Err(ReplayFailure::Diverged(format!(
                        "open `{label}` re-minted handle {minted}, originally {handle}"
                    )));
                }
            }
            Event::Apply { handle, ops } => match client.apply(*handle, ops) {
                Ok(_) => {}
                Err(ClientError::Fault(fault)) => {
                    return Err(ReplayFailure::Diverged(format!(
                        "apply to {handle} re-faulted: {fault}"
                    )))
                }
                Err(e) => return Err(transport(e)),
            },
            Event::Close { handle } => match client.close_doc(*handle) {
                Ok(_) => {}
                Err(ClientError::Fault(fault)) => {
                    return Err(ReplayFailure::Diverged(format!(
                        "close of {handle} re-faulted: {fault}"
                    )))
                }
                Err(e) => return Err(transport(e)),
            },
            Event::Commit => match client.commit() {
                Ok(_) => {}
                Err(ClientError::Fault(fault)) => {
                    return Err(ReplayFailure::Diverged(format!(
                        "commit re-faulted: {fault}"
                    )))
                }
                Err(e) => return Err(transport(e)),
            },
        }
    }
    Ok(())
}

/// Maps one applied edit's effect to the shards it dirties — exactly the
/// marks [`xic_constraints::IncrementalIndex::apply`] makes: an attribute
/// write that displaces an identical value is a no-op, element insertion
/// and removal dirty by type, text is invisible.
fn shards_of_effect(
    layout: &IncrementalLayout,
    plan: &ShardPlan,
    effect: &EditEffect,
    out: &mut BTreeSet<u32>,
) {
    match effect {
        EditEffect::AttrSet {
            ty, attr, old, new, ..
        } => {
            if *old == Some(*new) {
                return;
            }
            for &check in layout.checks_touched_by_attr(*ty, *attr) {
                out.insert(plan.shard_of_check(check));
            }
        }
        EditEffect::ElementAdded { ty, .. } => {
            for &check in layout.checks_touched_by_ty(*ty) {
                out.insert(plan.shard_of_check(check));
            }
        }
        EditEffect::TextAdded { .. } => {}
        EditEffect::SubtreeRemoved { elements, .. } => {
            for &(_, ty) in elements {
                for &check in layout.checks_touched_by_ty(ty) {
                    out.insert(plan.shard_of_check(check));
                }
            }
        }
    }
}
