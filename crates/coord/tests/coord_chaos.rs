//! Chaos suite: shard workers are killed at the nastiest moments — between
//! routed applies and the commit, mid-round on the structural authority,
//! repeatedly — and the coordinator must either *recover* (respawn the
//! worker, replay its journal, re-ask, and produce a merged verdict
//! byte-identical to the monolithic oracle's) or *reject* (restart budget
//! exhausted → [`CoordError::WorkerLost`], exit code 4) — never
//! acknowledge a wrong or partial verdict.

use std::path::{Path, PathBuf};

use xic_coord::{CoordConfig, CoordError, Coordinator};
use xic_engine::{CompiledSpec, CorpusReplica, CorpusSession};
use xic_xml::EditOp;

/// Two independent unary keys on unrelated element types: the touch graph
/// splits them into two shards, so a two-worker coordinator gives each
/// worker one shard (group 0 doubling as the structural authority).
const DTD: &str = "<!ELEMENT r (a*, b*)>\n\
                   <!ELEMENT a EMPTY>\n\
                   <!ATTLIST a id CDATA #REQUIRED>\n\
                   <!ELEMENT b EMPTY>\n\
                   <!ATTLIST b id CDATA #REQUIRED>\n";
const SIGMA: &str = "a[id] -> a\nb[id] -> b\n";
const DOC: &str = "<r><a id=\"a1\"/><a id=\"a2\"/><b id=\"b1\"/><b id=\"b2\"/></r>";

fn xic_bin() -> PathBuf {
    if let Ok(path) = std::env::var("XIC_BIN") {
        return PathBuf::from(path);
    }
    let exe = std::env::current_exe().expect("test executable path");
    for dir in exe.ancestors().skip(1) {
        let candidate = dir.join(format!("xic{}", std::env::consts::EXE_SUFFIX));
        if candidate.is_file() {
            return candidate;
        }
    }
    panic!("cannot locate the `xic` binary; build `xic-cli` or set XIC_BIN");
}

fn launch(scratch: &Path, max_restarts: usize) -> Coordinator {
    std::fs::create_dir_all(scratch).expect("scratch dir");
    let dtd_path = scratch.join("spec.dtd");
    let sigma_path = scratch.join("spec.sigma");
    std::fs::write(&dtd_path, DTD).expect("write dtd");
    std::fs::write(&sigma_path, SIGMA).expect("write sigma");
    Coordinator::launch(CoordConfig {
        xic_bin: xic_bin(),
        dtd: dtd_path,
        root: Some("r".to_string()),
        constraints: Some(sigma_path),
        workers: 2,
        scratch: scratch.to_path_buf(),
        session: "chaos".to_string(),
        max_restarts,
    })
    .expect("coordinator launches")
}

fn spec() -> CompiledSpec {
    CompiledSpec::from_sources(DTD, Some("r"), SIGMA).expect("spec compiles")
}

/// `SetAttr` ops that drive `a[id]` (shard of one group) and `b[id]` (the
/// other) in and out of collision, as `(a_ops, b_ops)` batches per round.
fn edit_rounds(spec: &CompiledSpec) -> Vec<Vec<EditOp>> {
    let tree = spec.parse_document(DOC).expect("doc parses");
    let elems: Vec<_> = tree.elements().collect();
    let mut a_nodes = Vec::new();
    let mut b_nodes = Vec::new();
    for &node in &elems {
        let ty = tree.element_type(node).unwrap();
        match spec.dtd().type_name(ty) {
            "a" => a_nodes.push(node),
            "b" => b_nodes.push(node),
            _ => {}
        }
    }
    let attr_of = |node| spec.dtd().attrs_of(tree.element_type(node).unwrap())[0];
    let set = |node, value: &str| EditOp::SetAttr {
        element: node,
        attr: attr_of(node),
        value: value.to_string(),
    };
    vec![
        // Round 1: collide the `a` key only (routes to one group + authority).
        vec![set(a_nodes[1], "a1")],
        // Round 2: collide `b`, clear `a` (routes everywhere).
        vec![set(b_nodes[1], "b1"), set(a_nodes[1], "a9")],
        // Round 3: clear `b` (back to clean).
        vec![set(b_nodes[1], "b9")],
    ]
}

/// Runs the scripted rounds against a monolithic oracle, returning the
/// delta stream and final report to hold the chaos runs to.
fn oracle_run(spec: &CompiledSpec) -> (Vec<xic_engine::BatchDelta>, xic_engine::BatchReport) {
    let mut session = CorpusSession::new(spec);
    let handle = session.open_source("doc", DOC).expect("oracle opens");
    let mut deltas = vec![session.commit()];
    for ops in edit_rounds(spec) {
        session.apply(handle, &ops).expect("oracle applies");
        deltas.push(session.commit());
    }
    (deltas, session.report())
}

/// Kill one worker before each commit (rotating through the groups, so
/// both the structural authority and a plain shard worker die mid-round):
/// every merged delta must still equal the monolithic oracle's, and the
/// restarted workers must have been resynced from their journals.
#[test]
fn killed_workers_recover_and_agree() {
    let spec = spec();
    let (oracle_deltas, oracle_report) = oracle_run(&spec);

    let scratch = std::env::temp_dir().join(format!("xic-coord-chaos-{}", std::process::id()));
    let mut coordinator = launch(&scratch, 4);
    assert_eq!(coordinator.num_groups(), 2, "two shards over two workers");

    let handle = coordinator.open_doc("doc", DOC).expect("coord opens");
    assert_eq!(coordinator.commit().expect("open commit"), oracle_deltas[0]);

    for (round, ops) in edit_rounds(&spec).into_iter().enumerate() {
        // The apply is routed first; the kill lands between routing and
        // commit, so the commit call itself finds the dead worker.
        coordinator.apply(handle, &ops).expect("coord applies");
        let victim = round % coordinator.num_groups();
        coordinator.kill_worker(victim);
        let merged = coordinator.commit().expect("commit recovers");
        assert_eq!(
            merged,
            oracle_deltas[round + 1],
            "round {round}: merged delta diverged after killing worker {victim}"
        );
    }

    assert_eq!(
        coordinator.report(),
        oracle_report,
        "post-chaos report diverged"
    );
    assert!(
        coordinator.worker_restarts(0) >= 1,
        "the killed authority was never restarted"
    );
    assert!(
        coordinator.worker_restarts(1) >= 1,
        "the killed shard worker was never restarted"
    );

    // The merged stream is still a pristine journal: a stock replica
    // replays it to the oracle's report.
    let mut replica = CorpusReplica::new(spec.id());
    for delta in coordinator.deltas() {
        replica
            .apply_delta(delta)
            .expect("replica accepts merged deltas");
    }
    assert_eq!(replica.report(), oracle_report);

    coordinator.shutdown();
    let _ = std::fs::remove_dir_all(&scratch);
}

/// A worker killed *between* commits (idle) is just as recoverable: the
/// next round's routing finds the dead transport and resyncs before any
/// delivery is acknowledged.
#[test]
fn killed_idle_worker_recovers_on_next_delivery() {
    let spec = spec();
    let (oracle_deltas, oracle_report) = oracle_run(&spec);

    let scratch = std::env::temp_dir().join(format!("xic-coord-idle-{}", std::process::id()));
    let mut coordinator = launch(&scratch, 2);
    let handle = coordinator.open_doc("doc", DOC).expect("coord opens");
    assert_eq!(coordinator.commit().expect("open commit"), oracle_deltas[0]);

    // Kill while idle; the next apply (round 1 routes to the authority
    // plus one shard group) walks into the corpse.
    coordinator.kill_worker(0);
    for (round, ops) in edit_rounds(&spec).into_iter().enumerate() {
        coordinator.apply(handle, &ops).expect("coord applies");
        let merged = coordinator.commit().expect("commit recovers");
        assert_eq!(merged, oracle_deltas[round + 1], "round {round} diverged");
    }
    assert_eq!(coordinator.report(), oracle_report);
    coordinator.shutdown();
    let _ = std::fs::remove_dir_all(&scratch);
}

/// Restart budget zero: the first crash is fatal.  The coordinator answers
/// [`CoordError::WorkerLost`] (exit code 4 — the contained-fault lane of
/// the CLI taxonomy), acknowledges nothing for the doomed round, and the
/// previously acknowledged merged stream stays valid.
#[test]
fn exhausted_restart_budget_rejects_instead_of_guessing() {
    let spec = spec();
    let (oracle_deltas, _) = oracle_run(&spec);

    let scratch = std::env::temp_dir().join(format!("xic-coord-budget-{}", std::process::id()));
    let mut coordinator = launch(&scratch, 0);
    let handle = coordinator.open_doc("doc", DOC).expect("coord opens");
    let first = coordinator.commit().expect("open commit");
    assert_eq!(first, oracle_deltas[0]);
    let acknowledged = coordinator.deltas().to_vec();

    coordinator.kill_worker(1);
    let rounds = edit_rounds(&spec);
    // Round 2 routes to both groups, so the dead worker is unavoidable
    // whether it is hit during the apply delivery or the commit fan-out.
    let err = match coordinator.apply(handle, &rounds[1]) {
        Err(err) => err,
        Ok(()) => coordinator
            .commit()
            .expect_err("a dead worker with no restart budget cannot yield a verdict"),
    };
    assert!(
        matches!(err, CoordError::WorkerLost { group: 1, .. }),
        "expected WorkerLost for group 1, got: {err}"
    );
    assert_eq!(
        err.exit_code(),
        4,
        "lost workers keep the contained-fault exit code"
    );

    // Nothing was acknowledged for the failed round, and what *was*
    // acknowledged is still a consistent, replayable prefix.
    assert_eq!(coordinator.deltas(), acknowledged.as_slice());
    let mut replica = CorpusReplica::new(spec.id());
    for delta in coordinator.deltas() {
        replica
            .apply_delta(delta)
            .expect("acknowledged prefix replays");
    }
    assert_eq!(replica.report(), coordinator.report());

    coordinator.shutdown();
    let _ = std::fs::remove_dir_all(&scratch);
}
