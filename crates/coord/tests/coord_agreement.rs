//! Differential coordinator-agreement suite: the multi-process fan-out is
//! an *implementation* of the corpus-session contract, never a semantic
//! fork.  For every document-bearing `xic-gen` workload family a
//! [`Coordinator`] (two `xic serve` shard workers) and a monolithic
//! [`CorpusSession`] oracle are driven with the identical edit script, and
//! after **every** commit:
//!
//! 1. the merged [`xic_engine::BatchDelta`] is equal — witnesses included —
//!    to the monolithic one (same sources, same ops, same arenas);
//! 2. the merged delta's [`xic_engine::DeltaSummary`] tallies equal the
//!    monolithic ones (the broadcast-dedup regression: structural errors
//!    and faults are counted once, not once per shard worker);
//!
//! and at the end of the script the coordinator's merged report equals the
//! oracle's, and the merged delta stream replays through a stock
//! [`CorpusReplica`] to the same report.
//!
//! `PROPTEST_CASES` pins the case count for the CI coord-smoke job.

use std::collections::BTreeMap;
use std::path::PathBuf;

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use xic_coord::{CoordConfig, CoordError, Coordinator};
use xic_engine::{CompiledSpec, CorpusReplica, CorpusSession, Engine};
use xic_gen::{
    fixed_dtd_growing_sigma, inconsistent_fanout_family, keys_only_family, negation_family,
    primary_key_family, random_document, unary_consistency_family, DocGenConfig, SpecInstance,
};
use xic_xml::{write_document, EditOp};

/// Locates the `xic` binary the coordinator spawns shard workers from:
/// `XIC_BIN` when set, otherwise the sibling of the test executable's
/// `target/{debug,release}` directory (built alongside workspace tests).
fn xic_bin() -> PathBuf {
    if let Ok(path) = std::env::var("XIC_BIN") {
        return PathBuf::from(path);
    }
    let exe = std::env::current_exe().expect("test executable path");
    for dir in exe.ancestors().skip(1) {
        let candidate = dir.join(format!("xic{}", std::env::consts::EXE_SUFFIX));
        if candidate.is_file() {
            return candidate;
        }
    }
    panic!("cannot locate the `xic` binary; build `xic-cli` or set XIC_BIN");
}

/// One rendered member of each differential workload family (E3a, E3b,
/// E4, E5, E6, E9), as the *source text* the coordinator, its workers and
/// the oracle all compile — identical text, identical `SpecId`.
fn family_sources(seed: u64) -> Vec<(String, String, String, String)> {
    let mut instances: Vec<SpecInstance> = Vec::new();
    instances.extend(unary_consistency_family(&[4]));
    instances.extend(inconsistent_fanout_family(&[2]));
    instances.extend(primary_key_family(&[5], seed));
    instances.extend(fixed_dtd_growing_sigma(4, &[4], seed));
    instances.extend(keys_only_family(&[5], seed));
    instances.extend(negation_family(&[3], seed));
    instances
        .into_iter()
        .map(|s| {
            let root = s.dtd.type_name(s.dtd.root()).to_string();
            let sigma_src = s.sigma.render(&s.dtd);
            (s.label.clone(), s.dtd.render(), root, sigma_src)
        })
        .collect()
}

/// Deterministic splitmix-style generator so the same seed always builds
/// the same edit script (the vendored proptest shim supplies seeds, not a
/// reusable rng handle).
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// One scripted step: open carries the serialized source (what actually
/// crosses the wire), edits carry ops valid for the *re-parsed* tree so
/// the oracle, the coordinator's mirror and every worker — all of which
/// parse the same bytes — agree on every `NodeId`.
enum Action {
    Open(String, String),
    Edit(String, Vec<EditOp>),
    Close(String),
}

/// Builds a deterministic multi-commit script for `spec` from `seed`:
/// opens spread over several commits, attribute churn from a 3-value pool
/// (small enough to create and then clear key collisions), and one close.
/// Every edit is a `SetAttr`, so node ids stay stable and the same script
/// drives the coordinator and the monolithic oracle identically.  Returns
/// `None` when the DTD admits no generated documents.
fn build_script(spec: &CompiledSpec, seed: u64) -> Option<Vec<Vec<Action>>> {
    let dtd = spec.dtd();
    let mut docs = Vec::new();
    for attempt in 0..24u64 {
        if docs.len() == 4 {
            break;
        }
        let Some(tree) = random_document(
            dtd,
            &DocGenConfig {
                seed: seed.wrapping_add(attempt),
                value_pool: 3,
                ..Default::default()
            },
        ) else {
            continue;
        };
        // Serialize, then re-parse: node ids picked below must be the ids
        // every party allocates when it parses the wire bytes.
        let source = write_document(&tree, dtd);
        let Ok(reparsed) = spec.parse_document(&source) else {
            continue;
        };
        docs.push((format!("doc-{}", docs.len()), source, reparsed));
    }
    if docs.is_empty() {
        return None;
    }

    let mut rng = Mix(seed ^ 0xd1f7);
    let mut churn = |docs: &[(String, String, xic_xml::XmlTree)], count: usize| -> Vec<Action> {
        let mut actions = Vec::new();
        for _ in 0..count {
            let (label, _, tree) = &docs[rng.below(docs.len())];
            let elems: Vec<_> = tree.elements().collect();
            let mut ops = Vec::new();
            for _ in 0..8 {
                let node = elems[rng.below(elems.len())];
                let Some(ty) = tree.element_type(node) else {
                    continue;
                };
                let attrs = dtd.attrs_of(ty);
                if attrs.is_empty() {
                    continue;
                }
                ops.push(EditOp::SetAttr {
                    element: node,
                    attr: attrs[rng.below(attrs.len())],
                    value: format!("v{}", rng.below(3)),
                });
                if ops.len() == 2 {
                    break;
                }
            }
            if !ops.is_empty() {
                actions.push(Action::Edit(label.clone(), ops));
            }
        }
        actions
    };

    let mut steps = Vec::new();
    // Commit 1: most documents open together.
    let split = docs.len().div_ceil(2);
    steps.push(
        docs[..split]
            .iter()
            .map(|(l, s, _)| Action::Open(l.clone(), s.clone()))
            .collect(),
    );
    // Commit 2: churn the open half, open the rest (a mixed round: the
    // open makes it broadcast even though the edits routed narrowly).
    let mut step = churn(&docs[..split], 2);
    step.extend(
        docs[split..]
            .iter()
            .map(|(l, s, _)| Action::Open(l.clone(), s.clone())),
    );
    steps.push(step);
    // Commit 3: close the first document (merger drops it, the merged
    // delta must announce it), churn the survivors.
    let mut step = vec![Action::Close(docs[0].0.clone())];
    step.extend(churn(&docs[1..], 2));
    steps.push(step);
    // Commit 4: more churn, including no-op rewrites that leave reports
    // unchanged (merged deltas may come out empty).
    steps.push(churn(&docs[1..], 3));
    Some(steps)
}

/// Writes the spec sources to a scratch directory and launches a
/// coordinator over them.
fn launch(
    scratch: &std::path::Path,
    dtd_src: &str,
    root: &str,
    sigma_src: &str,
    workers: usize,
    max_restarts: usize,
) -> Coordinator {
    std::fs::create_dir_all(scratch).expect("scratch dir");
    let dtd_path = scratch.join("spec.dtd");
    let sigma_path = scratch.join("spec.sigma");
    std::fs::write(&dtd_path, dtd_src).expect("write dtd");
    std::fs::write(&sigma_path, sigma_src).expect("write sigma");
    Coordinator::launch(CoordConfig {
        xic_bin: xic_bin(),
        dtd: dtd_path,
        root: Some(root.to_string()),
        constraints: Some(sigma_path),
        workers,
        scratch: scratch.to_path_buf(),
        session: "agree".to_string(),
        max_restarts,
    })
    .expect("coordinator launches")
}

/// Drives one family case: the coordinator and the monolithic oracle run
/// the same script, compared after every commit; the merged stream then
/// replays through a stock replica.
fn run_case(
    label: &str,
    dtd_src: &str,
    root: &str,
    sigma_src: &str,
    seed: u64,
) -> Result<(), TestCaseError> {
    let spec = CompiledSpec::from_sources(dtd_src, Some(root), sigma_src)
        .unwrap_or_else(|e| panic!("{label}: rendered spec does not recompile: {e}"));
    let Some(steps) = build_script(&spec, seed) else {
        return Ok(());
    };

    let scratch = std::env::temp_dir().join(format!(
        "xic-coord-agree-{}-{seed}-{label}",
        std::process::id()
    ));

    // An inconsistent spec cannot be hosted: `xic serve` refuses it, so
    // the coordinator must refuse it too — up front, as one clean spec
    // error, not a per-worker spawn failure.
    if Engine::new().consistency(&spec).decision() == Some(false) {
        std::fs::create_dir_all(&scratch).expect("scratch dir");
        let dtd_path = scratch.join("spec.dtd");
        let sigma_path = scratch.join("spec.sigma");
        std::fs::write(&dtd_path, dtd_src).expect("write dtd");
        std::fs::write(&sigma_path, sigma_src).expect("write sigma");
        let Err(err) = Coordinator::launch(CoordConfig {
            xic_bin: xic_bin(),
            dtd: dtd_path,
            root: Some(root.to_string()),
            constraints: Some(sigma_path),
            workers: 2,
            scratch: scratch.clone(),
            session: "agree".to_string(),
            max_restarts: 1,
        }) else {
            panic!("{label}: inconsistent specs must be refused");
        };
        prop_assert!(
            matches!(&err, CoordError::Spec(msg) if msg.contains("inconsistent")),
            "{}: wrong refusal: {}",
            label,
            err
        );
        prop_assert_eq!(
            err.exit_code(),
            2,
            "{}: refusal must stay a code-2 spec error",
            label
        );
        let _ = std::fs::remove_dir_all(&scratch);
        return Ok(());
    }

    let mut coordinator = launch(&scratch, dtd_src, root, sigma_src, 2, 1);
    prop_assert_eq!(
        coordinator.spec().id(),
        spec.id(),
        "{}: coordinator compiled a different spec than the oracle",
        label
    );

    let mut oracle = CorpusSession::new(&spec);
    let mut handles: BTreeMap<String, u64> = BTreeMap::new();
    for step in &steps {
        for action in step {
            match action {
                Action::Open(doc, source) => {
                    let merged = coordinator.open_doc(doc, source).expect("coord open");
                    let mono = oracle.open_source(doc, source).expect("oracle open");
                    prop_assert_eq!(
                        merged,
                        mono.raw(),
                        "{}: coordinator minted a different handle",
                        label
                    );
                    handles.insert(doc.clone(), merged);
                }
                Action::Edit(doc, ops) => {
                    coordinator.apply(handles[doc], ops).expect("coord apply");
                    let handle = oracle.handle_by_label(doc).unwrap();
                    oracle.apply(handle, ops).expect("oracle apply");
                }
                Action::Close(doc) => {
                    let closed = coordinator.close_doc(handles[doc]).expect("coord close");
                    prop_assert_eq!(&closed, doc, "{}: close returned a foreign label", label);
                    let handle = oracle.handle_by_label(doc).unwrap();
                    oracle.close(handle).expect("oracle close");
                    handles.remove(doc);
                }
            }
        }
        let merged = coordinator.commit().expect("coord commit");
        let mono = oracle.commit();
        prop_assert_eq!(
            &merged,
            &mono,
            "{}: merged delta diverged from the monolithic one",
            label
        );
        // Regression: summaries tally the *merged* delta — structural
        // errors a broadcast fanned out to every worker count once.
        prop_assert_eq!(
            merged.summary(),
            mono.summary(),
            "{}: merged delta summary diverged",
            label
        );
    }

    prop_assert_eq!(
        coordinator.report(),
        oracle.report(),
        "{}: merged report diverged from the monolithic oracle",
        label
    );

    // The merged stream is a valid journal: a stock (unsharded) replica
    // replays it to the oracle's report.
    let mut replica = CorpusReplica::new(spec.id());
    for delta in coordinator.deltas() {
        replica
            .apply_delta(delta)
            .unwrap_or_else(|e| panic!("{label}: replica rejected a merged delta: {e}"));
    }
    prop_assert_eq!(
        replica.report(),
        oracle.report(),
        "{}: replayed merged stream diverged",
        label
    );

    coordinator.shutdown();
    let _ = std::fs::remove_dir_all(&scratch);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The coordinator's merged deltas, summaries, report and replayable
    /// stream agree with a monolithic session over every workload family.
    #[test]
    fn coordinator_agrees_with_the_monolithic_oracle(seed in 0u64..4096) {
        for (label, dtd_src, root, sigma_src) in family_sources(seed | 1) {
            run_case(&label, &dtd_src, &root, &sigma_src, seed)?;
        }
    }
}

/// A rejected edit batch routes like the monolithic session: the prefix
/// before the failing op stays applied, the document still rechecks, and
/// the next merged delta matches the oracle's.
#[test]
fn rejected_batches_agree_with_the_oracle() {
    let dtd_src = "<!ELEMENT r (a*)>\n<!ELEMENT a EMPTY>\n<!ATTLIST a id CDATA #REQUIRED>\n";
    let sigma_src = "a[id] -> a\n";
    let spec = CompiledSpec::from_sources(dtd_src, Some("r"), sigma_src).unwrap();
    let source = "<r><a id=\"x\"/><a id=\"x\"/></r>";

    let scratch = std::env::temp_dir().join(format!("xic-coord-reject-{}", std::process::id()));
    let mut coordinator = launch(&scratch, dtd_src, "r", sigma_src, 2, 1);
    let mut oracle = CorpusSession::new(&spec);

    let handle = coordinator.open_doc("doc", source).unwrap();
    let mono = oracle.open_source("doc", source).unwrap();
    assert_eq!(coordinator.commit().unwrap(), oracle.commit());

    let tree = spec.parse_document(source).unwrap();
    let elems: Vec<_> = tree.elements().collect();
    let id = spec.dtd().attrs_of(tree.element_type(elems[1]).unwrap())[0];
    // Op 0 is fine (clears the collision), op 1 targets a node the
    // document does not have: the batch is rejected after the prefix.
    let ops = vec![
        EditOp::SetAttr {
            element: elems[1],
            attr: id,
            value: "y".to_string(),
        },
        EditOp::SetAttr {
            element: xic_xml::NodeId(u32::MAX),
            attr: id,
            value: "z".to_string(),
        },
    ];
    let coord_err = coordinator.apply(handle, &ops).unwrap_err();
    assert_eq!(
        coord_err.exit_code(),
        2,
        "rejected edits are code-2 document errors"
    );
    oracle.apply(mono, &ops).unwrap_err();

    assert_eq!(
        coordinator.commit().unwrap(),
        oracle.commit(),
        "post-rejection merged delta diverged (prefix must stay applied, doc must recheck)"
    );
    assert_eq!(coordinator.report(), oracle.report());
    coordinator.shutdown();
    let _ = std::fs::remove_dir_all(&scratch);
}
