//! Timed, labeled, optionally nested spans feeding the trace ring buffer.

use std::cell::Cell;
use std::collections::VecDeque;
use std::time::Instant;

use crate::metrics::MetricsRegistry;

thread_local! {
    /// Per-thread span nesting depth (spans on different threads don't nest).
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// One completed span in the trace timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// The span label.
    pub name: String,
    /// Start time in nanoseconds since the registry was created.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth at entry (0 = top-level) on the recording thread.
    pub depth: u32,
}

/// A timed, labeled scope.  Created by [`MetricsRegistry::span`] (or
/// [`Span::enter`]); on drop it records its duration into the histogram
/// `span.<name>` and appends a [`TraceEvent`] to the registry's ring buffer.
///
/// Spans nest lexically per thread: a span opened while another is live on
/// the same thread records `depth + 1`, which is what lets the JSON timeline
/// be rendered as a flame-style trace.
///
/// When the registry's timing switch is off (or the crate is compiled with
/// the `off` feature) the span is inert: no clock sample, nothing recorded.
#[must_use = "a span measures the scope it is held in; dropping it immediately records nothing useful"]
#[derive(Debug)]
pub struct Span<'r> {
    inner: Option<SpanInner<'r>>,
}

#[derive(Debug)]
struct SpanInner<'r> {
    registry: &'r MetricsRegistry,
    name: String,
    start: Instant,
    start_ns: u64,
    depth: u32,
}

impl<'r> Span<'r> {
    /// Opens a span on `registry`.  Equivalent to `registry.span(name)`.
    pub fn enter(registry: &'r MetricsRegistry, name: &str) -> Span<'r> {
        if !registry.timing_enabled() {
            return Span { inner: None };
        }
        let depth = DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth + 1);
            depth
        });
        Span {
            inner: Some(SpanInner {
                registry,
                name: name.to_string(),
                start: Instant::now(),
                start_ns: registry.elapsed_ns(),
                depth,
            }),
        }
    }

    /// Whether the span is live (timing was enabled when it was opened).
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        DEPTH.with(|d| d.set(inner.depth));
        let dur_ns = u64::try_from(inner.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        inner
            .registry
            .histogram(&format!("span.{}", inner.name))
            .record(dur_ns);
        inner.registry.push_trace(TraceEvent {
            name: inner.name,
            start_ns: inner.start_ns,
            dur_ns,
            depth: inner.depth,
        });
    }
}

/// Fixed-capacity ring of completed trace events; oldest dropped first.
#[derive(Debug)]
pub(crate) struct TraceRing {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceRing {
    pub(crate) fn new(capacity: usize) -> TraceRing {
        TraceRing {
            events: VecDeque::with_capacity(capacity.min(64)),
            capacity,
            dropped: 0,
        }
    }

    pub(crate) fn push(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    pub(crate) fn events(&self) -> Vec<TraceEvent> {
        self.events.iter().cloned().collect()
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }

    pub(crate) fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

#[cfg(all(test, not(feature = "off")))]
mod tests {
    use super::*;

    #[test]
    fn span_records_histogram_and_trace() {
        let reg = MetricsRegistry::new();
        {
            let span = reg.span("phase");
            assert!(span.is_recording());
        }
        let snap = reg.snapshot();
        let h = snap.histogram("span.phase").expect("span histogram");
        assert_eq!(h.count, 1);
        assert_eq!(reg.trace_events().len(), 1);
        assert_eq!(reg.trace_dropped(), 0);
    }

    #[test]
    fn disabled_timing_makes_spans_inert() {
        let reg = MetricsRegistry::new();
        reg.set_timing(false);
        {
            let span = reg.span("ghost");
            assert!(!span.is_recording());
        }
        assert!(reg.trace_events().is_empty());
        assert!(reg.snapshot().histograms.is_empty());
    }

    #[test]
    fn depth_tracks_nesting_and_recovers() {
        let reg = MetricsRegistry::new();
        {
            let _a = reg.span("a");
            {
                let _b = reg.span("b");
            }
            {
                let _c = reg.span("c");
            }
        }
        let depths: Vec<(String, u32)> = reg
            .trace_events()
            .into_iter()
            .map(|e| (e.name, e.depth))
            .collect();
        assert_eq!(
            depths,
            vec![
                ("b".to_string(), 1),
                ("c".to_string(), 1),
                ("a".to_string(), 0)
            ]
        );
    }

    #[test]
    fn ring_drops_oldest() {
        let mut ring = TraceRing::new(2);
        for i in 0..4 {
            ring.push(TraceEvent {
                name: format!("e{i}"),
                start_ns: i,
                dur_ns: 1,
                depth: 0,
            });
        }
        let names: Vec<String> = ring.events().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["e2".to_string(), "e3".to_string()]);
        assert_eq!(ring.dropped(), 2);
        ring.clear();
        assert!(ring.events().is_empty());
        assert_eq!(ring.dropped(), 0);
    }
}
