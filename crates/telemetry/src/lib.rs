//! # xic-telemetry — metrics and structured tracing for the engine stack
//!
//! A zero-dependency (std-only, like the rest of the workspace) telemetry
//! layer shared by every crate in the engine: a thread-safe
//! [`MetricsRegistry`] owning named [`Counter`]s, [`Gauge`]s and
//! log-bucketed latency [`Histogram`]s (p50/p90/p99/max), plus a lightweight
//! span API ([`Span::enter`]) whose timed, labeled, optionally nested scopes
//! feed an in-memory ring-buffer trace dumpable as a JSON timeline.
//!
//! Design points, in decreasing order of importance:
//!
//! * **Hot-path cost is one relaxed atomic op.** Counters and gauges are
//!   single atomics; a histogram record is three atomic adds and one
//!   `fetch_max` into a fixed 65-bucket log₂ table — no allocation, no
//!   locking, no floating point.  Instrument handles (`Arc<Counter>` etc.)
//!   are resolved by name once at component construction and then used
//!   lock-free.
//! * **Clock sampling is gated at runtime.** Everything that would call
//!   [`std::time::Instant::now`] goes through
//!   [`MetricsRegistry::start_timer`], which
//!   returns `None` when timing is disabled
//!   ([`MetricsRegistry::set_timing`]) — so latency instrumentation costs a
//!   single relaxed load when switched off.  Counters and gauges are *not*
//!   gated: they are cheap and the engine's statistics APIs
//!   (`VerdictCache::stats`) are defined in terms of them.
//! * **A compile-time kill switch.** Building with the `off` feature turns
//!   every instrument into a no-op (counters included) and every snapshot
//!   empty; it exists solely as the control arm of the overhead benchmark.
//!
//! ```
//! use xic_telemetry::MetricsRegistry;
//!
//! let registry = MetricsRegistry::new();
//! let edits = registry.counter("session.edits");
//! edits.add(3);
//!
//! let commit_ns = registry.histogram("corpus.commit_ns");
//! if let Some(timer) = registry.start_timer() {
//!     // ... the work being measured ...
//!     commit_ns.record_elapsed(timer);
//! }
//!
//! {
//!     let _span = registry.span("compile.glushkov");
//!     // ... the compile phase runs inside the span ...
//! }
//!
//! let snapshot = registry.snapshot();
//! if registry.timing_enabled() {
//!     // In an ordinary build; under the `off` control-arm feature every
//!     // instrument is a no-op and the snapshot is empty.
//!     assert_eq!(snapshot.counter("session.edits"), Some(3));
//!     assert_eq!(snapshot.histograms.len(), 2); // commit_ns + span.compile.glushkov
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod faults;
mod metrics;
mod span;

pub use metrics::{
    Counter, CounterSnapshot, Gauge, GaugeSnapshot, Histogram, HistogramSnapshot, MetricsRegistry,
    RegistrySnapshot,
};
pub use span::{Span, TraceEvent};

use std::sync::{Arc, OnceLock};

/// The process-wide registry: deep layers (parser timing, index builds,
/// journal I/O) that have no component to hang a registry handle on record
/// here, and the CLI's `--metrics` / `xic stats` surfaces snapshot it.
///
/// Components that want isolation (unit tests, multi-tenant services)
/// construct their own [`MetricsRegistry`] instead; nothing in this crate
/// forces the global.
pub fn global() -> &'static Arc<MetricsRegistry> {
    static GLOBAL: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(MetricsRegistry::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_is_shared() {
        global().counter("test.global").add(2);
        global().counter("test.global").add(3);
        #[cfg(not(feature = "off"))]
        assert_eq!(global().counter("test.global").get(), 5);
        #[cfg(feature = "off")]
        assert_eq!(global().counter("test.global").get(), 0);
    }
}
