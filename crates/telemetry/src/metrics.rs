//! Instruments (counters, gauges, log-bucketed histograms) and the registry
//! that names and owns them.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use crate::span::{Span, TraceEvent, TraceRing};

/// Number of log₂ buckets: bucket 0 holds the value 0, bucket `i ≥ 1` holds
/// values in `[2^(i-1), 2^i - 1]`, up to `i = 64` for `u64::MAX`.
const BUCKETS: usize = 65;

/// Trace events retained in the ring buffer (oldest dropped first).
const TRACE_CAPACITY: usize = 1024;

/// A monotonically increasing event counter.
///
/// One relaxed atomic add per [`Counter::add`]; reads never block writers.
/// Obtained from [`MetricsRegistry::counter`]; clones of the returned `Arc`
/// all point at the same underlying value.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub(crate) fn new() -> Counter {
        Counter::default()
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(not(feature = "off"))]
        self.value.fetch_add(n, Ordering::Relaxed);
        #[cfg(feature = "off")]
        let _ = n;
    }

    /// Adds 1 to the counter.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous level (queue depth, open documents, dirty-set
/// size).  Unlike a [`Counter`] it can move both ways and is usually `set`
/// rather than accumulated.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub(crate) fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the gauge to an absolute level.
    #[inline]
    pub fn set(&self, v: i64) {
        #[cfg(not(feature = "off"))]
        self.value.store(v, Ordering::Relaxed);
        #[cfg(feature = "off")]
        let _ = v;
    }

    /// Moves the gauge by a signed delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        #[cfg(not(feature = "off"))]
        self.value.fetch_add(delta, Ordering::Relaxed);
        #[cfg(feature = "off")]
        let _ = delta;
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A log₂-bucketed histogram of `u64` samples (latencies in nanoseconds,
/// sizes in records — any non-negative magnitude).
///
/// Recording is lock-free: one atomic add into the sample's bucket, plus
/// count/sum adds and a `fetch_max`.  Quantiles are *estimates* read off the
/// bucket boundaries: the reported quantile is the upper bound of the bucket
/// containing the exact rank, so it is always within one power-of-two bucket
/// of the true order statistic (and `max` is exact).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// The bucket index a value falls into.
#[inline]
#[cfg_attr(feature = "off", allow(dead_code))]
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// The representative (upper bound) of a bucket, used as the quantile
/// estimate.
fn bucket_upper(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

impl Histogram {
    pub(crate) fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        #[cfg(not(feature = "off"))]
        {
            self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
            self.max.fetch_max(v, Ordering::Relaxed);
        }
        #[cfg(feature = "off")]
        let _ = v;
    }

    /// Records the nanoseconds elapsed since `start` (a timer obtained from
    /// [`MetricsRegistry::start_timer`]).
    #[inline]
    pub fn record_elapsed(&self, start: Instant) {
        self.record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample recorded (exact, not bucketed); 0 when empty.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The estimated `q`-quantile (`q` in `[0, 1]`): the upper bound of the
    /// bucket holding the sample of rank `⌈q·count⌉`.  Returns 0 when no
    /// samples were recorded.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        self.max()
    }

    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.to_string(),
            count: self.count(),
            sum: self.sum(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }
}

/// Point-in-time value of one named counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// The instrument name.
    pub name: String,
    /// The counter value at snapshot time.
    pub value: u64,
}

/// Point-in-time level of one named gauge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// The instrument name.
    pub name: String,
    /// The gauge level at snapshot time.
    pub value: i64,
}

/// Point-in-time summary of one named histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// The instrument name.
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Estimated median (upper bound of the median's bucket).
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
    /// Exact maximum sample.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A consistent-enough point-in-time view of every instrument in a registry,
/// sorted by name.  ("Consistent enough": each instrument is read atomically,
/// but the snapshot does not freeze concurrent writers between instruments —
/// fine for statistics, not a transaction.)
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegistrySnapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// The value of a counter by name, if it exists.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The level of a gauge by name, if it exists.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// The summary of a histogram by name, if it exists.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Pretty-prints the snapshot as aligned text (the `xic stats` format).
    /// Histogram columns are rendered in microseconds when the instrument
    /// name ends in `_ns`, raw otherwise.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for c in &self.counters {
                out.push_str(&format!("  {:<40} {:>12}\n", c.name, c.value));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for g in &self.gauges {
                out.push_str(&format!("  {:<40} {:>12}\n", g.name, g.value));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str(&format!(
                "histograms{:<31} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
                ":", "count", "p50", "p90", "p99", "max"
            ));
            for h in &self.histograms {
                let cell = |v: u64| {
                    if h.name.ends_with("_ns") {
                        format!("{:.1}us", v as f64 / 1e3)
                    } else {
                        v.to_string()
                    }
                };
                out.push_str(&format!(
                    "  {:<40} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
                    h.name,
                    h.count,
                    cell(h.p50),
                    cell(h.p90),
                    cell(h.p99),
                    cell(h.max),
                ));
            }
        }
        if out.is_empty() {
            out.push_str("no instruments registered\n");
        }
        out
    }
}

/// The thread-safe home of named instruments plus the span trace buffer.
///
/// Instrument lookups (`counter`/`gauge`/`histogram`) take a read lock on
/// the name table and are meant to run **once per component**, at
/// construction; the returned `Arc` handles are then lock-free.  Looking up
/// by name twice returns handles to the same instrument, which is how
/// separately-constructed components aggregate into shared totals.
#[derive(Debug)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    trace: Mutex<TraceRing>,
    /// Runtime switch for clock sampling (see [`MetricsRegistry::start_timer`]).
    timing: AtomicBool,
    /// The zero point of the trace timeline.
    epoch: Instant,
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// An empty registry with timing enabled.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
            trace: Mutex::new(TraceRing::new(TRACE_CAPACITY)),
            timing: AtomicBool::new(true),
            epoch: Instant::now(),
        }
    }

    fn named<T>(table: &RwLock<BTreeMap<String, Arc<T>>>, name: &str, make: fn() -> T) -> Arc<T> {
        #[cfg(feature = "off")]
        {
            let _ = (table, name);
            Arc::new(make())
        }
        #[cfg(not(feature = "off"))]
        {
            if let Some(found) = table.read().expect("registry poisoned").get(name) {
                return Arc::clone(found);
            }
            let mut table = table.write().expect("registry poisoned");
            Arc::clone(
                table
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(make())),
            )
        }
    }

    /// The counter registered under `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        MetricsRegistry::named(&self.counters, name, Counter::new)
    }

    /// The gauge registered under `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        MetricsRegistry::named(&self.gauges, name, Gauge::new)
    }

    /// The histogram registered under `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        MetricsRegistry::named(&self.histograms, name, Histogram::new)
    }

    /// Enables or disables clock sampling ([`MetricsRegistry::start_timer`]
    /// and spans).  Counters and gauges are unaffected: they stay live so
    /// statistics APIs built on them keep their meaning.
    pub fn set_timing(&self, enabled: bool) {
        self.timing.store(enabled, Ordering::Relaxed);
    }

    /// Whether clock sampling is currently enabled (always `false` when the
    /// crate is compiled with the `off` feature).
    pub fn timing_enabled(&self) -> bool {
        #[cfg(feature = "off")]
        {
            false
        }
        #[cfg(not(feature = "off"))]
        {
            self.timing.load(Ordering::Relaxed)
        }
    }

    /// Samples the clock for a latency measurement, or returns `None` when
    /// timing is disabled.  The canonical call-site shape costs one relaxed
    /// load when off:
    ///
    /// ```
    /// # let registry = xic_telemetry::MetricsRegistry::new();
    /// # let work = || 42;
    /// let timer = registry.start_timer();
    /// let result = work();
    /// if let Some(t) = timer {
    ///     registry.histogram("work_ns").record_elapsed(t);
    /// }
    /// ```
    #[inline]
    pub fn start_timer(&self) -> Option<Instant> {
        if self.timing_enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Nanoseconds since the registry was created (the trace timeline zero).
    pub(crate) fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    pub(crate) fn push_trace(&self, event: TraceEvent) {
        self.trace.lock().expect("trace ring poisoned").push(event);
    }

    /// Opens a timed, labeled span.  The span records itself when dropped:
    /// a sample into the histogram `span.<name>` and an event in the trace
    /// ring buffer.  Inert (no clock sample, nothing recorded) when timing
    /// is disabled.
    pub fn span(&self, name: &str) -> Span<'_> {
        Span::enter(self, name)
    }

    /// The retained trace events, oldest first.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.trace.lock().expect("trace ring poisoned").events()
    }

    /// Events dropped from the ring buffer because it was full.
    pub fn trace_dropped(&self) -> u64 {
        self.trace.lock().expect("trace ring poisoned").dropped()
    }

    /// Clears the trace ring buffer (instrument values are untouched).
    pub fn clear_trace(&self) {
        self.trace.lock().expect("trace ring poisoned").clear();
    }

    /// Dumps the retained trace as a JSON timeline: an array of
    /// `{"name", "start_ns", "dur_ns", "depth"}` objects ordered by
    /// completion time, with `start_ns` relative to registry creation.
    pub fn trace_json(&self) -> String {
        let events = self.trace_events();
        let mut out = String::from("[");
        for (i, ev) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"start_ns\":{},\"dur_ns\":{},\"depth\":{}}}",
                escape_json(&ev.name),
                ev.start_ns,
                ev.dur_ns,
                ev.depth
            ));
        }
        out.push(']');
        out
    }

    /// A point-in-time snapshot of every instrument, sorted by name.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let counters = self
            .counters
            .read()
            .expect("registry poisoned")
            .iter()
            .map(|(name, c)| CounterSnapshot {
                name: name.clone(),
                value: c.get(),
            })
            .collect();
        let gauges = self
            .gauges
            .read()
            .expect("registry poisoned")
            .iter()
            .map(|(name, g)| GaugeSnapshot {
                name: name.clone(),
                value: g.get(),
            })
            .collect();
        let histograms = self
            .histograms
            .read()
            .expect("registry poisoned")
            .iter()
            .map(|(name, h)| h.snapshot(name))
            .collect();
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(all(test, not(feature = "off")))]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once() {
        let reg = MetricsRegistry::new();
        reg.counter("a").add(2);
        reg.counter("a").add(3);
        reg.gauge("g").set(7);
        reg.gauge("g").add(-2);
        assert_eq!(reg.counter("a").get(), 5);
        assert_eq!(reg.gauge("g").get(), 5);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a"), Some(5));
        assert_eq!(snap.gauge("g"), Some(5));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
        // The representative of a bucket lies in the bucket.
        for i in 0..BUCKETS {
            assert_eq!(bucket_of(bucket_upper(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn histogram_quantiles_are_bucket_upper_bounds() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("h");
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.max(), 1000);
        // rank(0.5 * 5) = 3 → the sample 3 lives in bucket [2,3].
        assert_eq!(h.quantile(0.5), 3);
        // rank ⌈0.99·5⌉ = 5 → 1000 lives in bucket [512,1023].
        assert_eq!(h.quantile(0.99), 1023);
        assert_eq!(h.quantile(0.0), 1); // rank clamps to 1
        let snap = reg.snapshot();
        assert_eq!(snap.histogram("h").unwrap().max, 1000);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!((h.count(), h.sum(), h.max()), (0, 0, 0));
    }

    #[test]
    fn timing_toggle_gates_timers() {
        let reg = MetricsRegistry::new();
        assert!(reg.start_timer().is_some());
        reg.set_timing(false);
        assert!(reg.start_timer().is_none());
        assert!(!reg.timing_enabled());
        reg.set_timing(true);
        assert!(reg.start_timer().is_some());
    }

    #[test]
    fn render_text_mentions_each_instrument() {
        let reg = MetricsRegistry::new();
        reg.counter("c.one").inc();
        reg.gauge("g.level").set(-3);
        reg.histogram("h.lat_ns").record(1500);
        let text = reg.snapshot().render_text();
        assert!(text.contains("c.one"));
        assert!(text.contains("g.level"));
        assert!(text.contains("-3"));
        assert!(text.contains("h.lat_ns"));
        assert!(text.contains("us"), "ns histograms render in µs: {text}");
    }

    #[test]
    fn trace_json_escapes_and_orders() {
        let reg = MetricsRegistry::new();
        {
            let _outer = reg.span("outer");
            let _inner = reg.span("inner \"quoted\"");
        }
        let events = reg.trace_events();
        assert_eq!(events.len(), 2);
        // Inner drops first, so it precedes outer in completion order.
        assert_eq!(events[0].name, "inner \"quoted\"");
        assert_eq!(events[0].depth, 1);
        assert_eq!(events[1].name, "outer");
        assert_eq!(events[1].depth, 0);
        let json = reg.trace_json();
        assert!(json.starts_with('['));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"depth\":1"));
    }
}
