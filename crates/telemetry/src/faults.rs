//! Deterministic named failpoints for injected-fault testing.
//!
//! A failpoint is a named site in the engine (journal writes, cache inserts,
//! batch workers, commit rechecks) that asks this module "should I fail
//! now?" via [`hit`].  In ordinary builds the answer is a compile-time
//! `false`: the whole module collapses to no-ops unless the `faults` cargo
//! feature is enabled, so production binaries carry no branch, no lock and
//! no table lookup — the same kill-switch idiom as the `off` feature on the
//! metrics side.
//!
//! With the feature on, tests arm individual failpoints with [`configure`]:
//!
//! * [`FaultMode::Nth`] fires exactly once, on the n-th call — the tool for
//!   "the 3rd journal append fails" scenarios with byte-exact expectations.
//! * [`FaultMode::Probability`] fires pseudo-randomly from a caller-supplied
//!   seed (an xorshift64 stream, no global RNG state), so a proptest case
//!   that shrinks to a failing seed replays the identical fault sequence.
//!
//! What a fired failpoint *does* is decided at the call site: journal sites
//! surface an [`std::io::ErrorKind::Interrupted`] error (exercising the
//! retry path), batch sites panic (exercising containment).  This module
//! only answers the yes/no question and counts the answers — every fire
//! also bumps the `resilience.faults_injected` counter on the global
//! metrics registry so fault runs are visible in `--metrics` output.

#[cfg(feature = "faults")]
use std::collections::HashMap;
#[cfg(feature = "faults")]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "faults")]
use std::sync::{Mutex, OnceLock, PoisonError};

/// When an armed failpoint fires, relative to the calls made against it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Fire exactly once, on the n-th call (1-based) to [`hit`] after
    /// arming; every other call reports no fault.
    Nth(u64),
    /// Fire each call independently with probability `permille`/1000,
    /// drawn from a deterministic xorshift64 stream seeded by `seed`.
    /// The same seed always yields the same fire/no-fire sequence.
    Probability {
        /// Seed of the per-failpoint pseudo-random stream (0 is remapped
        /// to a fixed non-zero constant; xorshift has no zero state).
        seed: u64,
        /// Fire probability in thousandths (0 = never, 1000 = always).
        permille: u32,
    },
}

/// Whether failpoints are compiled in (`faults` cargo feature).
///
/// Useful for tests and benches that want to assert they are running the
/// arm they think they are.
#[inline]
pub const fn enabled() -> bool {
    cfg!(feature = "faults")
}

#[cfg(feature = "faults")]
struct FaultState {
    mode: FaultMode,
    calls: u64,
    fired: u64,
    rng: u64,
}

#[cfg(feature = "faults")]
fn table() -> &'static Mutex<HashMap<String, FaultState>> {
    static TABLE: OnceLock<Mutex<HashMap<String, FaultState>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

#[cfg(feature = "faults")]
static INJECTED: AtomicU64 = AtomicU64::new(0);

/// Arms the named failpoint, replacing any previous configuration and
/// resetting its call/fire counters.  No-op without the `faults` feature.
pub fn configure(name: &str, mode: FaultMode) {
    #[cfg(feature = "faults")]
    {
        let seed = match mode {
            // A zero seed would freeze the xorshift stream; remap it.
            FaultMode::Probability { seed: 0, .. } => 0x9E37_79B9_7F4A_7C15,
            FaultMode::Probability { seed, .. } => seed,
            FaultMode::Nth(_) => 0,
        };
        let mut table = table().lock().unwrap_or_else(PoisonError::into_inner);
        table.insert(
            name.to_owned(),
            FaultState {
                mode,
                calls: 0,
                fired: 0,
                rng: seed,
            },
        );
    }
    #[cfg(not(feature = "faults"))]
    {
        let _ = (name, mode);
    }
}

/// Disarms the named failpoint; subsequent [`hit`] calls report no fault.
/// No-op without the `faults` feature.
pub fn disarm(name: &str) {
    #[cfg(feature = "faults")]
    {
        let mut table = table().lock().unwrap_or_else(PoisonError::into_inner);
        table.remove(name);
    }
    #[cfg(not(feature = "faults"))]
    let _ = name;
}

/// Disarms every failpoint.  Tests call this between cases so an armed
/// probability stream cannot leak across scenarios.  No-op without the
/// `faults` feature.
pub fn reset() {
    #[cfg(feature = "faults")]
    {
        let mut table = table().lock().unwrap_or_else(PoisonError::into_inner);
        table.clear();
    }
}

/// Asks whether the named failpoint fires on this call.
///
/// Unarmed (or feature-off) failpoints always answer `false`.  Armed ones
/// advance their call counter / pseudo-random stream deterministically;
/// every `true` answer is counted (see [`injected`] and the
/// `resilience.faults_injected` global counter).
#[inline]
pub fn hit(name: &str) -> bool {
    #[cfg(feature = "faults")]
    {
        hit_armed(name)
    }
    #[cfg(not(feature = "faults"))]
    {
        let _ = name;
        false
    }
}

#[cfg(feature = "faults")]
fn hit_armed(name: &str) -> bool {
    let mut table = table().lock().unwrap_or_else(PoisonError::into_inner);
    let Some(state) = table.get_mut(name) else {
        return false;
    };
    state.calls += 1;
    let fire = match state.mode {
        FaultMode::Nth(n) => state.calls == n,
        FaultMode::Probability { permille, .. } => {
            // xorshift64: deterministic, allocation-free, per-failpoint.
            state.rng ^= state.rng << 13;
            state.rng ^= state.rng >> 7;
            state.rng ^= state.rng << 17;
            state.rng % 1000 < u64::from(permille)
        }
    };
    if fire {
        state.fired += 1;
        INJECTED.fetch_add(1, Ordering::Relaxed);
        drop(table); // never hold the fault table across the registry lock
        crate::global().counter("resilience.faults_injected").add(1);
    }
    fire
}

/// Total faults injected process-wide since start (or last [`reset_counts`]).
/// Always 0 without the `faults` feature.
pub fn injected() -> u64 {
    #[cfg(feature = "faults")]
    {
        INJECTED.load(Ordering::Relaxed)
    }
    #[cfg(not(feature = "faults"))]
    {
        0
    }
}

/// How many times the named failpoint has fired since it was armed.
/// Always 0 without the `faults` feature.
pub fn fired(name: &str) -> u64 {
    #[cfg(feature = "faults")]
    {
        let table = table().lock().unwrap_or_else(PoisonError::into_inner);
        table.get(name).map_or(0, |s| s.fired)
    }
    #[cfg(not(feature = "faults"))]
    {
        let _ = name;
        0
    }
}

/// Resets the process-wide injected-fault total (the per-failpoint counters
/// reset when a failpoint is re-[`configure`]d).  No-op without the
/// `faults` feature.
pub fn reset_counts() {
    #[cfg(feature = "faults")]
    INJECTED.store(0, Ordering::Relaxed);
}

#[cfg(all(test, feature = "faults"))]
mod tests {
    use super::*;

    #[test]
    fn nth_fires_exactly_once() {
        configure("test.nth", FaultMode::Nth(3));
        let fires: Vec<bool> = (0..6).map(|_| hit("test.nth")).collect();
        assert_eq!(fires, vec![false, false, true, false, false, false]);
        assert_eq!(fired("test.nth"), 1);
        disarm("test.nth");
    }

    #[test]
    fn probability_is_deterministic_per_seed() {
        configure(
            "test.prob",
            FaultMode::Probability {
                seed: 42,
                permille: 250,
            },
        );
        let first: Vec<bool> = (0..64).map(|_| hit("test.prob")).collect();
        configure(
            "test.prob",
            FaultMode::Probability {
                seed: 42,
                permille: 250,
            },
        );
        let second: Vec<bool> = (0..64).map(|_| hit("test.prob")).collect();
        assert_eq!(first, second);
        assert!(
            first.iter().any(|&f| f),
            "permille 250 over 64 draws should fire"
        );
        assert!(
            !first.iter().all(|&f| f),
            "permille 250 should not always fire"
        );
        disarm("test.prob");
    }

    #[test]
    fn unarmed_failpoints_never_fire() {
        assert!(!hit("test.never_armed"));
        assert_eq!(fired("test.never_armed"), 0);
    }

    #[test]
    fn zero_seed_is_remapped() {
        configure(
            "test.zero",
            FaultMode::Probability {
                seed: 0,
                permille: 500,
            },
        );
        let fires: Vec<bool> = (0..64).map(|_| hit("test.zero")).collect();
        assert!(
            fires.iter().any(|&f| f),
            "zero seed must not freeze the stream"
        );
        disarm("test.zero");
    }
}
