//! Histogram correctness under randomness and concurrency.
//!
//! * Property: log-bucket quantile estimates land in the same power-of-two
//!   bucket as the exact order statistic (i.e. they are within one bucket),
//!   never below it, and the quantiles are mutually ordered with an exact
//!   maximum.
//! * Concurrency smoke: threads hammering one shared registry lose no
//!   counts — every add, record and gauge move is accounted for.

#![cfg(not(feature = "off"))]

use std::sync::Arc;
use std::thread;

use proptest::collection::vec;
use proptest::prelude::*;
use xic_telemetry::MetricsRegistry;

/// The log₂ bucket a sample falls into — must mirror the crate's bucketing
/// (bucket 0 = the value 0, bucket i ≥ 1 = `[2^(i-1), 2^i - 1]`).
fn bucket_of(v: u64) -> u32 {
    64 - v.leading_zeros()
}

/// Exact `q`-quantile by sorting: the sample of rank `⌈q·n⌉` (1-based).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

fn sample_strategy() -> BoxedStrategy<u64> {
    prop_oneof![
        Just(0u64),
        0u64..16,
        0u64..4_096,
        0u64..1_000_000,
        // Bounded so a 300-sample sum stays far from u64 overflow while
        // still exercising high buckets.
        0u64..(1u64 << 50),
    ]
    .boxed()
}

proptest! {
    #[test]
    fn quantile_estimates_stay_within_one_bucket(
        samples in vec(sample_strategy(), 1..300),
    ) {
        let registry = MetricsRegistry::new();
        let histogram = registry.histogram("q");
        for &s in &samples {
            histogram.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();

        for q in [0.0, 0.25, 0.50, 0.90, 0.99, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let estimate = histogram.quantile(q);
            prop_assert_eq!(
                bucket_of(estimate),
                bucket_of(exact),
                "q={} exact={} estimate={}",
                q,
                exact,
                estimate
            );
            // The estimate is the bucket's upper bound, so it never
            // understates the true order statistic.
            prop_assert!(estimate >= exact);
        }

        let (p50, p90, p99) = (
            histogram.quantile(0.50),
            histogram.quantile(0.90),
            histogram.quantile(0.99),
        );
        prop_assert!(p50 <= p90 && p90 <= p99);
        prop_assert!(p99 <= histogram.quantile(1.0));
        prop_assert_eq!(histogram.max(), *sorted.last().unwrap());
        prop_assert_eq!(histogram.count(), samples.len() as u64);
        prop_assert_eq!(histogram.sum(), samples.iter().sum::<u64>());
    }
}

#[test]
fn concurrent_hammering_loses_no_counts() {
    const THREADS: u64 = 8;
    const OPS: u64 = 10_000;

    let registry = Arc::new(MetricsRegistry::new());
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let registry = Arc::clone(&registry);
        handles.push(thread::spawn(move || {
            // Resolve instruments inside the thread: name lookups must race
            // safely and still converge on one shared instrument.
            let counter = registry.counter("smoke.counter");
            let gauge = registry.gauge("smoke.gauge");
            let histogram = registry.histogram("smoke.hist");
            for i in 0..OPS {
                counter.inc();
                gauge.add(1);
                histogram.record(t * OPS + i);
            }
        }));
    }
    for handle in handles {
        handle.join().expect("worker panicked");
    }

    let total = THREADS * OPS;
    let snapshot = registry.snapshot();
    assert_eq!(snapshot.counter("smoke.counter"), Some(total));
    assert_eq!(snapshot.gauge("smoke.gauge"), Some(total as i64));
    let hist = snapshot.histogram("smoke.hist").expect("histogram exists");
    assert_eq!(hist.count, total);
    // Sum of 0..THREADS*OPS recorded exactly once each.
    assert_eq!(hist.sum, total * (total - 1) / 2);
    assert_eq!(hist.max, total - 1);
}
