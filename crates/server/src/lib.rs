//! # xic-server — the long-running validation service
//!
//! A std-only TCP (and Unix-socket) server hosting one [`xic_engine::Engine`]
//! with its shared verdict cache and a registry of named
//! [`xic_engine::CorpusSession`]s, speaking the delta-log wire protocol of
//! [`xic_engine::wire`]: length-framed PR 5 journal records in both
//! directions.  Clients ship edit-op batches up; the server ships
//! [`xic_engine::BatchDelta`] records down, and a stock
//! [`xic_engine::CorpusReplica`] consumes them to reconstruct
//! `CorpusSession::report()` exactly.
//!
//! The workspace is network-free by design, so there is no async runtime:
//! accept loops on non-blocking listeners feed a bounded worker pool of
//! `std::thread`s, and every named session runs as an **actor** — a
//! dedicated thread owning the `CorpusSession`, fed over a bounded command
//! channel — so one slow session never blocks another, and per-session
//! backpressure is a channel bound, not a lock queue.
//!
//! Resource governance and fault containment extend to the wire: admission
//! limits ([`xic_engine::Limits`]), session-count and backlog bounds reject
//! with **structured error records** (code 3, `resource:*`), contained
//! faults answer with code 4 (`fault:*`) — never a dropped connection.
//! Graceful drain persists every session's delta log to the state
//! directory, and a restarted server loads those logs as read-only
//! *replica sessions* that serve identical reports over `sync`.
//!
//! ```no_run
//! use std::sync::Arc;
//! use xic_engine::CompiledSpec;
//! use xic_server::{Client, Server, ServerConfig};
//!
//! let spec = Arc::new(
//!     CompiledSpec::from_sources(
//!         "<!ELEMENT school (teacher*)>\n\
//!          <!ELEMENT teacher EMPTY>\n\
//!          <!ATTLIST teacher name CDATA #REQUIRED>",
//!         Some("school"),
//!         "teacher.name -> teacher",
//!     )
//!     .unwrap(),
//! );
//! let server = Server::start(
//!     Arc::clone(&spec),
//!     ServerConfig {
//!         tcp: Some("127.0.0.1:0".parse().unwrap()),
//!         ..ServerConfig::default()
//!     },
//! )
//! .unwrap();
//! let addr = server.tcp_addr().unwrap();
//! let mut client = Client::connect_tcp(addr, spec.id(), "tenant-a").unwrap();
//! let doc = client.open_doc("d0", "<school/>").unwrap();
//! let delta = client.commit().unwrap();
//! assert_eq!(delta.seq, 1);
//! let _ = doc;
//! server.stop();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod actor;
mod client;
mod serve;

pub use client::{Client, ClientError};
pub use serve::{Server, ServerConfig, ServerReport};

use xic_engine::wire::WireFault;
use xic_telemetry::MetricsRegistry;

/// Registers every `server.*` instrument on `registry` so snapshots taken
/// before traffic arrives still render the full set at zero.
pub fn register_baseline(registry: &MetricsRegistry) {
    registry.counter("server.connections");
    registry.counter("server.requests");
    registry.counter("server.errors");
    registry.counter("server.torn_connections");
    registry.counter("server.rejected_admissions");
    registry.counter("server.evicted_sessions");
    registry.counter("server.drained_sessions");
    registry.gauge("server.sessions");
    registry.histogram("server.request_ns");
    registry.counter("shard.syncs");
}

/// Validates a session name for use as both a registry key and a delta-log
/// file stem: 1–64 characters from `[A-Za-z0-9._-]`, not starting with a
/// dot (no hidden files, no `..`).
pub(crate) fn validate_session_name(name: &str) -> Result<(), WireFault> {
    let ok = !name.is_empty()
        && name.len() <= 64
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
    if ok {
        Ok(())
    } else {
        Err(WireFault::new(
            2,
            "protocol",
            format!(
                "invalid session name {name:?}: expected 1-64 characters of [A-Za-z0-9._-], \
                 not starting with '.'"
            ),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::validate_session_name;

    #[test]
    fn session_names_are_validated() {
        for good in ["a", "tenant-1", "A_b.c-9", &"x".repeat(64)] {
            assert!(validate_session_name(good).is_ok(), "{good:?}");
        }
        for bad in ["", ".hidden", "..", "a/b", "a b", "é", &"x".repeat(65)] {
            assert!(validate_session_name(bad).is_err(), "{bad:?}");
        }
    }
}
