//! The server proper: non-blocking accept loops feeding a bounded worker
//! pool, the named-session registry, the janitor (idle eviction), and the
//! graceful drain that persists every session's delta log.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use xic_engine::wire::{
    read_request_monotonic, write_response, Request, Response, WireError, WireFault, WIRE_VERSION,
};
use xic_engine::{journal, CompiledSpec, Engine, Limits};
use xic_telemetry::{Counter, Gauge, Histogram, MetricsRegistry};

use crate::actor::{self, Cmd, Offer, SessionHandle};
use crate::validate_session_name;

/// How long to run the service and under what bounds.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// TCP listen address (`127.0.0.1:0` picks a free port).
    pub tcp: Option<SocketAddr>,
    /// Unix-socket listen path (removed on stop; stale files are replaced).
    pub unix: Option<PathBuf>,
    /// Admission limits threaded into every live session.
    pub limits: Limits,
    /// Maximum number of named sessions; further hellos are rejected with
    /// a code-3 `resource:max_sessions` record.
    pub max_sessions: usize,
    /// Bound of each session's command channel; a full channel answers
    /// code-3 `resource:session_backlog` instead of queueing unboundedly.
    pub session_backlog: usize,
    /// Bound of the accepted-connection queue feeding the worker pool.
    pub conn_backlog: usize,
    /// Worker threads (= concurrently served connections).
    pub workers: usize,
    /// Sessions idle longer than this are drained and evicted by the
    /// janitor. `None` disables eviction.
    pub idle_timeout: Option<Duration>,
    /// Where drained sessions persist their delta logs (`<name>.xicj`);
    /// existing logs there are loaded as read-only replica sessions at
    /// startup.  `None` disables persistence.
    pub state_dir: Option<PathBuf>,
    /// Whether shard-filtered sync subscriptions are served (`xic serve
    /// --shards`).  When disabled, a sync carrying a shard filter is
    /// answered with a structured code-2 `protocol:shards-disabled`
    /// record instead of a projected stream.
    pub shards: bool,
    /// When set, every live session is scoped to these shards with
    /// [`xic_engine::CorpusSession::scope_to_shards`] (`xic serve
    /// --scope-shards 0,3`): commits recompute only the scoped constraints
    /// and reports carry the shard projection — the per-worker half of a
    /// fanned-out commit, hosted by `xic-coord`.  Validated against the
    /// spec's shard plan at [`Server::start`].
    pub scope: Option<Vec<u32>>,
    /// The metrics registry (`None`: the process-global one).
    pub registry: Option<Arc<MetricsRegistry>>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            tcp: None,
            unix: None,
            limits: Limits::UNLIMITED,
            max_sessions: 16,
            session_backlog: 32,
            conn_backlog: 64,
            workers: 4,
            idle_timeout: None,
            state_dir: None,
            shards: false,
            scope: None,
            registry: None,
        }
    }
}

/// What a stopped server reports back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerReport {
    /// Sessions drained at shutdown.
    pub drained_sessions: usize,
    /// Deltas persisted to the state directory during the final drain.
    pub persisted_deltas: u64,
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
}

struct Instruments {
    connections: Arc<Counter>,
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    torn: Arc<Counter>,
    rejected: Arc<Counter>,
    evictions: Arc<Counter>,
    drains: Arc<Counter>,
    sessions: Arc<Gauge>,
    request_ns: Arc<Histogram>,
    shard_syncs: Arc<Counter>,
}

impl Instruments {
    fn on(registry: &MetricsRegistry) -> Instruments {
        Instruments {
            connections: registry.counter("server.connections"),
            requests: registry.counter("server.requests"),
            errors: registry.counter("server.errors"),
            torn: registry.counter("server.torn_connections"),
            rejected: registry.counter("server.rejected_admissions"),
            evictions: registry.counter("server.evicted_sessions"),
            drains: registry.counter("server.drained_sessions"),
            sessions: registry.gauge("server.sessions"),
            request_ns: registry.histogram("server.request_ns"),
            shard_syncs: registry.counter("shard.syncs"),
        }
    }
}

/// One accepted connection, transport-erased.
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(timeout),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(timeout),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

struct Shared {
    spec: Arc<CompiledSpec>,
    // Holds the service-wide verdict cache: consistency of the hosted spec
    // is memoized here once at startup, and `stats` snapshots include its
    // cache counters.
    #[allow(dead_code)]
    engine: Engine,
    config: ServerConfig,
    registry: Arc<MetricsRegistry>,
    sessions: RwLock<HashMap<String, Arc<SessionHandle>>>,
    shutdown: AtomicBool,
    instr: Instruments,
}

impl Shared {
    fn is_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// The running service.  Dropping it without [`Server::stop`] aborts the
/// threads without a drain; call `stop` (or let a wire `shutdown` land and
/// call [`Server::wait`]) for the graceful path.
pub struct Server {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
}

impl Server {
    /// Binds the configured listeners, loads any drained delta logs in the
    /// state directory as replica sessions, and starts the accept loops,
    /// worker pool and janitor.  Fails when no listener is configured or a
    /// bind fails.
    pub fn start(spec: Arc<CompiledSpec>, config: ServerConfig) -> io::Result<Server> {
        if config.tcp.is_none() && config.unix.is_none() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "server config names no listener (neither tcp nor unix)",
            ));
        }
        let registry = config
            .registry
            .clone()
            .unwrap_or_else(|| Arc::clone(xic_telemetry::global()));
        crate::register_baseline(&registry);
        xic_engine::register_baseline(&registry);
        let engine = Engine::with_registry(1024, Arc::clone(&registry));
        // Refuse to serve a spec whose constraints are unsatisfiable: every
        // session would report violations forever.  The verdict lands in
        // the shared cache either way.
        let verdict = engine.consistency(&spec);
        if verdict.decision() == Some(false) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("refusing to serve an inconsistent spec: {}", spec.id()),
            ));
        }

        // Validate the shard scope up front: `scope_to_shards` panics on an
        // out-of-range id, and it would do so inside a session actor thread
        // long after startup succeeded.
        if let Some(scope) = &config.scope {
            let num_shards = spec.shard_plan().num_shards();
            if let Some(&bad) = scope.iter().find(|&&s| (s as usize) >= num_shards) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "scope shard {bad} out of range: the spec's plan has {num_shards} shards"
                    ),
                ));
            }
        }

        // The drain path persists into the state directory; creating it up
        // front means a missing directory can never silently swallow a
        // session's delta log at shutdown.
        if let Some(dir) = &config.state_dir {
            std::fs::create_dir_all(dir)?;
        }

        let instr = Instruments::on(&registry);
        let sessions = load_replicas(&config, spec.id());
        instr.sessions.set(sessions.len() as i64);
        let shared = Arc::new(Shared {
            spec,
            engine,
            config,
            registry,
            sessions: RwLock::new(sessions),
            shutdown: AtomicBool::new(false),
            instr,
        });

        let mut threads = Vec::new();
        let (conn_tx, conn_rx) = sync_channel::<Conn>(shared.config.conn_backlog.max(1));
        let conn_rx = Arc::new(Mutex::new(conn_rx));

        let mut tcp_addr = None;
        if let Some(addr) = shared.config.tcp {
            let listener = TcpListener::bind(addr)?;
            listener.set_nonblocking(true)?;
            tcp_addr = Some(listener.local_addr()?);
            threads.push(spawn_named("xic-accept-tcp", {
                let shared = Arc::clone(&shared);
                let conn_tx = conn_tx.clone();
                move || accept_tcp(listener, &shared, &conn_tx)
            })?);
        }
        let mut unix_path = None;
        #[cfg(unix)]
        if let Some(path) = shared.config.unix.clone() {
            // A stale socket file from a crashed run would fail the bind.
            let _ = std::fs::remove_file(&path);
            let listener = UnixListener::bind(&path)?;
            listener.set_nonblocking(true)?;
            unix_path = Some(path);
            threads.push(spawn_named("xic-accept-unix", {
                let shared = Arc::clone(&shared);
                let conn_tx = conn_tx.clone();
                move || accept_unix(listener, &shared, &conn_tx)
            })?);
        }
        #[cfg(not(unix))]
        {
            unix_path = None;
        }
        drop(conn_tx);

        for i in 0..shared.config.workers.max(1) {
            threads.push(spawn_named(&format!("xic-worker-{i}"), {
                let shared = Arc::clone(&shared);
                let conn_rx = Arc::clone(&conn_rx);
                move || worker(&shared, &conn_rx)
            })?);
        }
        if shared.config.idle_timeout.is_some() {
            threads.push(spawn_named("xic-janitor", {
                let shared = Arc::clone(&shared);
                move || janitor(&shared)
            })?);
        }

        Ok(Server {
            shared,
            threads,
            tcp_addr,
            unix_path,
        })
    }

    /// The bound TCP address (the actual port when configured with port 0).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound Unix-socket path.
    pub fn unix_path(&self) -> Option<&std::path::Path> {
        self.unix_path.as_deref()
    }

    /// Whether a shutdown (wire or local) has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.is_down()
    }

    /// Requests shutdown and runs the graceful drain: stop accepting, let
    /// workers finish their connections, persist every session's delta
    /// log, join every thread.
    pub fn stop(self) -> ServerReport {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.wait()
    }

    /// Blocks until the server shuts down (a wire `shutdown` request, or a
    /// prior local request), then drains.  The terminal mode of
    /// `xic serve`.
    pub fn wait(self) -> ServerReport {
        for t in self.threads {
            let _ = t.join();
        }
        let mut drained = 0;
        let mut persisted = 0;
        let sessions: Vec<(String, Arc<SessionHandle>)> =
            self.shared.sessions.write().unwrap().drain().collect();
        for (_, handle) in sessions {
            if let Some(n) = handle.drain() {
                drained += 1;
                persisted += n;
                self.shared.instr.drains.inc();
            }
        }
        self.shared.instr.sessions.set(0);
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
        ServerReport {
            drained_sessions: drained,
            persisted_deltas: persisted,
            connections: self
                .shared
                .registry
                .snapshot()
                .counter("server.connections")
                .unwrap_or(0),
        }
    }
}

fn spawn_named(name: &str, f: impl FnOnce() + Send + 'static) -> io::Result<JoinHandle<()>> {
    std::thread::Builder::new().name(name.to_owned()).spawn(f)
}

fn load_replicas(
    config: &ServerConfig,
    spec: xic_engine::SpecId,
) -> HashMap<String, Arc<SessionHandle>> {
    let mut sessions = HashMap::new();
    let Some(dir) = &config.state_dir else {
        return sessions;
    };
    let Ok(entries) = std::fs::read_dir(dir) else {
        return sessions;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("xicj") {
            continue;
        }
        let Some(name) = path.file_stem().and_then(|s| s.to_str()) else {
            continue;
        };
        if validate_session_name(name).is_err() {
            continue;
        }
        match actor::spawn_replica(name.to_owned(), path.clone(), spec, config.session_backlog) {
            Ok(handle) => {
                sessions.insert(name.to_owned(), Arc::new(handle));
            }
            Err(err) => {
                eprintln!("xic-server: skipping {}: {err}", path.display());
            }
        }
    }
    sessions
}

fn accept_tcp(listener: TcpListener, shared: &Shared, conn_tx: &SyncSender<Conn>) {
    loop {
        if shared.is_down() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                if conn_tx.send(Conn::Tcp(stream)).is_err() {
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

#[cfg(unix)]
fn accept_unix(listener: UnixListener, shared: &Shared, conn_tx: &SyncSender<Conn>) {
    loop {
        if shared.is_down() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                if conn_tx.send(Conn::Unix(stream)).is_err() {
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

fn worker(shared: &Shared, conn_rx: &Arc<Mutex<Receiver<Conn>>>) {
    loop {
        let next = {
            let rx = conn_rx.lock().unwrap();
            rx.recv_timeout(Duration::from_millis(100))
        };
        match next {
            Ok(conn) => serve_conn(conn, shared),
            Err(RecvTimeoutError::Timeout) => {
                if shared.is_down() {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn janitor(shared: &Shared) {
    let Some(idle) = shared.config.idle_timeout else {
        return;
    };
    let tick = (idle / 4).max(Duration::from_millis(50));
    loop {
        std::thread::sleep(tick);
        if shared.is_down() {
            return;
        }
        let stale: Vec<String> = {
            let sessions = shared.sessions.read().unwrap();
            sessions
                .iter()
                .filter(|(_, h)| h.evictable(idle))
                .map(|(name, _)| name.clone())
                .collect()
        };
        for name in stale {
            let evicted = {
                // Re-check under the write lock: between the scan and here a
                // worker may have started a request (bumping `last_used` and
                // the in-flight count via `begin_request`), and draining the
                // actor then would strand that request's reply.
                let mut sessions = shared.sessions.write().unwrap();
                match sessions.get(&name) {
                    Some(h) if h.evictable(idle) => sessions.remove(&name),
                    _ => None,
                }
            };
            if let Some(handle) = evicted {
                // Drain persists the delta log (when configured) before the
                // actor exits, so eviction never loses committed history.
                let _ = handle.drain();
                shared.instr.evictions.inc();
            }
        }
        let len = shared.sessions.read().unwrap().len();
        shared.instr.sessions.set(len as i64);
    }
}

/// Sends a command to a session actor and awaits the rendezvous reply,
/// translating backpressure and eviction into wire faults.
fn dispatch<T>(
    handle: &SessionHandle,
    make: impl FnOnce(SyncSender<Result<T, WireFault>>) -> Cmd,
) -> Result<T, WireFault> {
    // Held across offer → reply so the janitor cannot drain the actor out
    // from under a request it has already admitted.
    let _in_flight = handle.begin_request();
    let (reply, rx) = sync_channel(1);
    match handle.offer(make(reply)) {
        Offer::Sent => {}
        Offer::Backpressure => {
            return Err(WireFault::new(
                3,
                "resource:session_backlog",
                "session command channel is full; retry after in-flight requests finish",
            ));
        }
        Offer::Gone => {
            return Err(WireFault::new(
                2,
                "session",
                "session was evicted or drained; reconnect to start a fresh one",
            ));
        }
    }
    rx.recv().map_err(|_| {
        WireFault::new(
            2,
            "session",
            "session actor stopped before answering; reconnect",
        )
    })?
}

fn session_meta(handle: &SessionHandle) -> Result<(u64, bool), WireFault> {
    let _in_flight = handle.begin_request();
    let (reply, rx) = sync_channel(1);
    match handle.offer(Cmd::Meta { reply }) {
        Offer::Sent => rx
            .recv()
            .map_err(|_| WireFault::new(2, "session", "session actor stopped during the hello")),
        _ => Err(WireFault::new(
            2,
            "session",
            "session unavailable during the hello; retry",
        )),
    }
}

fn get_or_create_session(shared: &Shared, name: &str) -> Result<Arc<SessionHandle>, WireFault> {
    if let Some(handle) = shared.sessions.read().unwrap().get(name) {
        return Ok(Arc::clone(handle));
    }
    let mut sessions = shared.sessions.write().unwrap();
    if let Some(handle) = sessions.get(name) {
        return Ok(Arc::clone(handle));
    }
    if shared.is_down() {
        return Err(WireFault::new(
            2,
            "session",
            "server is shutting down; no new sessions",
        ));
    }
    if sessions.len() >= shared.config.max_sessions {
        shared.instr.rejected.inc();
        return Err(WireFault::new(
            3,
            "resource:max_sessions",
            format!(
                "session limit of {} reached; close or evict a session first",
                shared.config.max_sessions
            ),
        ));
    }
    let handle = Arc::new(actor::spawn_live(
        name.to_owned(),
        Arc::clone(&shared.spec),
        shared.config.limits,
        Arc::clone(&shared.registry),
        shared.config.session_backlog,
        shared.config.state_dir.clone(),
        shared.config.scope.clone(),
    ));
    sessions.insert(name.to_owned(), Arc::clone(&handle));
    shared.instr.sessions.set(sessions.len() as i64);
    Ok(handle)
}

/// Reads one request, honoring the idle poll: `Ok(None)` means the
/// connection is over (clean close, torn frame, I/O error, or shutdown).
/// `last_seq` threads the connection's strictly monotonic request
/// sequence: a replayed or rewound frame is answered with a structured
/// `protocol:seq` fault and the connection is closed.
fn next_request(conn: &mut Conn, shared: &Shared, last_seq: &mut u64) -> Option<(u64, Request)> {
    loop {
        match read_request_monotonic(conn, last_seq) {
            Ok(Some(framed)) => return Some(framed),
            Ok(None) => return None,
            Err(WireError::Idle) => {
                if shared.is_down() {
                    return None;
                }
            }
            Err(WireError::Torn) => {
                shared.instr.torn.inc();
                return None;
            }
            Err(WireError::Io(_)) => return None,
            Err(err @ WireError::NonMonotonicSeq { .. }) => {
                shared.instr.errors.inc();
                let fault = WireFault::new(2, "protocol:seq", err.to_string());
                let _ = write_response(conn, 0, &Response::Error(fault));
                return None;
            }
            Err(err) => {
                // Corrupt, malformed, oversized or unknown frames get a
                // structured protocol error before the close.
                shared.instr.errors.inc();
                let fault = WireFault::new(2, "protocol", err.to_string());
                let _ = write_response(conn, 0, &Response::Error(fault));
                return None;
            }
        }
    }
}

fn serve_conn(mut conn: Conn, shared: &Shared) {
    shared.instr.connections.inc();
    if conn
        .set_read_timeout(Some(Duration::from_millis(250)))
        .is_err()
    {
        return;
    }

    // --- Hello: version + spec negotiation, session attach. ---
    let mut last_req_seq = 0u64;
    let Some((seq, req)) = next_request(&mut conn, shared, &mut last_req_seq) else {
        return;
    };
    let Request::Hello {
        format,
        wire,
        spec,
        session: session_name,
    } = req
    else {
        shared.instr.errors.inc();
        let fault = WireFault::new(2, "protocol", "first request must be a hello");
        let _ = write_response(&mut conn, seq, &Response::Error(fault));
        return;
    };
    let handshake = || -> Result<(), WireFault> {
        if format != journal::FORMAT_VERSION || wire != WIRE_VERSION {
            return Err(WireFault::new(
                2,
                "protocol",
                format!(
                    "version mismatch: client speaks format {format} / wire {wire}, \
                     server speaks format {} / wire {WIRE_VERSION}",
                    journal::FORMAT_VERSION
                ),
            ));
        }
        if spec != shared.spec.id() {
            return Err(WireFault::new(
                2,
                "spec-mismatch",
                format!(
                    "client spec {spec} does not match served spec {}; \
                     recompile against the server's (DTD, Sigma)",
                    shared.spec.id()
                ),
            ));
        }
        validate_session_name(&session_name)
    };
    if let Err(fault) = handshake() {
        shared.instr.errors.inc();
        let _ = write_response(&mut conn, seq, &Response::Error(fault));
        return;
    }
    // Sessions are created lazily on the first session-touching request,
    // so a stats-only or shutdown-only connection never mints one.  The
    // ack reports an existing session's position, or a fresh (0, live).
    let mut session: Option<Arc<SessionHandle>> =
        shared.sessions.read().unwrap().get(&session_name).cloned();
    let ack = match session.as_deref().map(session_meta).transpose() {
        Ok(meta) => {
            let (last_seq, replica) = meta.unwrap_or((0, false));
            Response::Hello(xic_engine::wire::HelloAck {
                format: journal::FORMAT_VERSION,
                wire: WIRE_VERSION,
                spec: shared.spec.id(),
                spec_known: true,
                last_seq,
                replica,
            })
        }
        Err(fault) => {
            shared.instr.errors.inc();
            let _ = write_response(&mut conn, seq, &Response::Error(fault));
            return;
        }
    };
    if write_response(&mut conn, seq, &ack).is_err() {
        return;
    }

    // --- Request loop. ---
    while let Some((seq, req)) = next_request(&mut conn, shared, &mut last_req_seq) {
        shared.instr.requests.inc();
        let start = Instant::now();
        let ok = handle_request(&mut conn, shared, &session_name, &mut session, seq, req);
        shared.instr.request_ns.record_elapsed(start);
        // Re-check the flag even after a served request: a client that
        // streams back-to-back requests never lets the read hit its idle
        // tick, and shutdown must not wait on it.
        if !ok || shared.is_down() {
            return;
        }
    }
}

/// Serves one request; `false` ends the connection.
fn handle_request(
    conn: &mut Conn,
    shared: &Shared,
    session_name: &str,
    session: &mut Option<Arc<SessionHandle>>,
    seq: u64,
    req: Request,
) -> bool {
    let respond = |conn: &mut Conn, resp: &Response| {
        if matches!(resp, Response::Error(_)) {
            shared.instr.errors.inc();
        }
        write_response(conn, seq, resp).is_ok()
    };
    // Lazily attaches (creating on first use) the connection's session.
    let attach = |session: &mut Option<Arc<SessionHandle>>| match session {
        Some(handle) => Ok(Arc::clone(handle)),
        None => {
            let handle = get_or_create_session(shared, session_name)?;
            *session = Some(Arc::clone(&handle));
            Ok(handle)
        }
    };
    match req {
        Request::Hello { .. } => {
            let fault = WireFault::new(2, "protocol", "unexpected second hello");
            respond(conn, &Response::Error(fault))
        }
        Request::OpenDoc { label, source } => {
            let resp = match attach(session).and_then(|s| {
                dispatch(&s, |reply| Cmd::Open {
                    label,
                    source,
                    reply,
                })
            }) {
                Ok(handle) => Response::Opened { handle },
                Err(fault) => Response::Error(fault),
            };
            respond(conn, &resp)
        }
        Request::Apply { handle, ops } => {
            let resp = match attach(session)
                .and_then(|s| dispatch(&s, |reply| Cmd::Apply { handle, ops, reply }))
            {
                Ok(queued_ops) => Response::Applied { queued_ops },
                Err(fault) => Response::Error(fault),
            };
            respond(conn, &resp)
        }
        Request::Commit => {
            let resp =
                match attach(session).and_then(|s| dispatch(&s, |reply| Cmd::Commit { reply })) {
                    Ok(delta) => Response::Delta(delta),
                    Err(fault) => Response::Error(fault),
                };
            respond(conn, &resp)
        }
        Request::Sync { after_seq, shard } => {
            if let Some(shard) = shard {
                if !shared.config.shards {
                    let fault = WireFault::new(
                        2,
                        "protocol:shards-disabled",
                        "this server does not serve shard-filtered sync (start it with --shards)",
                    );
                    return respond(conn, &Response::Error(fault));
                }
                let plan = shared.spec.shard_plan();
                if shard as usize >= plan.num_shards() {
                    let fault = WireFault::new(
                        2,
                        "protocol:shard-range",
                        format!(
                            "shard {shard} out of range: the spec's touch graph has {} shard(s)",
                            plan.num_shards()
                        ),
                    );
                    return respond(conn, &Response::Error(fault));
                }
            }
            match attach(session).and_then(|s| dispatch(&s, |reply| Cmd::Sync { after_seq, reply }))
            {
                Ok(deltas) => {
                    // A shard subscription sees only deltas tagged with its
                    // shard, each projected down to the shard's constraints
                    // — monotone but non-contiguous sequence numbers, which
                    // a shard-filtered replica accepts by design.
                    let deltas: Vec<_> = match shard {
                        None => deltas,
                        Some(shard) => {
                            shared.instr.shard_syncs.inc();
                            let plan = shared.spec.shard_plan();
                            deltas
                                .iter()
                                .filter_map(|d| d.project(plan, shard))
                                .collect()
                        }
                    };
                    let count = deltas.len() as u64;
                    for delta in deltas {
                        if !respond(conn, &Response::Delta(delta)) {
                            return false;
                        }
                    }
                    respond(conn, &Response::DeltaEnd { count })
                }
                Err(fault) => respond(conn, &Response::Error(fault)),
            }
        }
        Request::CloseDoc { handle } => {
            let resp = match attach(session)
                .and_then(|s| dispatch(&s, |reply| Cmd::Close { handle, reply }))
            {
                Ok(label) => Response::Closed { label },
                Err(fault) => Response::Error(fault),
            };
            respond(conn, &resp)
        }
        Request::Stats => respond(conn, &Response::Stats(shared.registry.snapshot())),
        Request::Shutdown => {
            let sessions = shared.sessions.read().unwrap().len() as u64;
            shared.shutdown.store(true, Ordering::SeqCst);
            respond(conn, &Response::ShuttingDown { sessions });
            false
        }
    }
}
