//! The blocking client: a thin typed wrapper over one connection,
//! pairing each request with its response and surfacing the server's
//! structured error records as [`ClientError::Fault`].

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::Path;

use xic_engine::wire::{
    read_response, write_request, HelloAck, Request, Response, WireError, WireFault,
};
use xic_engine::{BatchDelta, CorpusReplica, SpecId};
use xic_telemetry::RegistrySnapshot;
use xic_xml::EditOp;

/// Everything a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed.
    Io(io::Error),
    /// A frame could not be read or decoded.
    Wire(WireError),
    /// The server answered with a structured error record.  Its `code`
    /// mirrors the CLI exit taxonomy (2 protocol/document, 3 resource,
    /// 4 contained fault).
    Fault(WireFault),
    /// The server answered with the wrong response kind, or a delta could
    /// not be applied to the local replica.
    Protocol(String),
    /// The server closed the connection before answering.
    Closed,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Fault(fault) => write!(f, "server error: {fault}"),
            ClientError::Protocol(detail) => write!(f, "protocol error: {detail}"),
            ClientError::Closed => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> ClientError {
        ClientError::Wire(e)
    }
}

impl ClientError {
    /// The server-side fault record, when this error carries one.
    pub fn fault(&self) -> Option<&WireFault> {
        match self {
            ClientError::Fault(fault) => Some(fault),
            _ => None,
        }
    }
}

enum Transport {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for Transport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Transport::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Transport {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Transport::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Transport::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Transport::Unix(s) => s.flush(),
        }
    }
}

/// A blocking connection to an `xic serve` instance, attached to one named
/// session by the hello handshake.
pub struct Client {
    conn: Transport,
    hello: HelloAck,
    seq: u64,
}

impl Client {
    /// Connects over TCP and performs the hello handshake for `session`.
    pub fn connect_tcp(
        addr: SocketAddr,
        spec: SpecId,
        session: &str,
    ) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Client::handshake(Transport::Tcp(stream), spec, session)
    }

    /// Connects over a Unix socket and performs the hello handshake.
    #[cfg(unix)]
    pub fn connect_unix(
        path: impl AsRef<Path>,
        spec: SpecId,
        session: &str,
    ) -> Result<Client, ClientError> {
        let stream = UnixStream::connect(path)?;
        Client::handshake(Transport::Unix(stream), spec, session)
    }

    fn handshake(mut conn: Transport, spec: SpecId, session: &str) -> Result<Client, ClientError> {
        write_request(&mut conn, 1, &Request::hello(spec, session))?;
        match read_response(&mut conn)? {
            Some((_, Response::Hello(hello))) => Ok(Client {
                conn,
                hello,
                seq: 1,
            }),
            Some((_, Response::Error(fault))) => Err(ClientError::Fault(fault)),
            Some((_, other)) => Err(ClientError::Protocol(format!(
                "expected a hello ack, got {other:?}"
            ))),
            None => Err(ClientError::Closed),
        }
    }

    /// The negotiation result: versions, spec identity, the session's last
    /// committed sequence number, and whether it is a read-only replica.
    pub fn hello(&self) -> &HelloAck {
        &self.hello
    }

    fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.seq += 1;
        write_request(&mut self.conn, self.seq, req)?;
        self.read_one()
    }

    fn read_one(&mut self) -> Result<Response, ClientError> {
        match read_response(&mut self.conn)? {
            Some((_, Response::Error(fault))) => Err(ClientError::Fault(fault)),
            Some((_, resp)) => Ok(resp),
            None => Err(ClientError::Closed),
        }
    }

    fn unexpected<T>(got: Response) -> Result<T, ClientError> {
        Err(ClientError::Protocol(format!(
            "unexpected response {got:?}"
        )))
    }

    /// Opens `source` under `label` in the attached session, returning the
    /// document handle.
    pub fn open_doc(&mut self, label: &str, source: &str) -> Result<u64, ClientError> {
        match self.call(&Request::OpenDoc {
            label: label.to_owned(),
            source: source.to_owned(),
        })? {
            Response::Opened { handle } => Ok(handle),
            other => Client::unexpected(other),
        }
    }

    /// Applies an edit batch (all-or-nothing) to one open document,
    /// returning the session's queued-op depth.
    pub fn apply(&mut self, handle: u64, ops: &[EditOp]) -> Result<u64, ClientError> {
        match self.call(&Request::Apply {
            handle,
            ops: ops.to_vec(),
        })? {
            Response::Applied { queued_ops } => Ok(queued_ops),
            other => Client::unexpected(other),
        }
    }

    /// Commits the session and returns the new delta.  Once this returns,
    /// the commit is acknowledged: a graceful server drain persists it.
    pub fn commit(&mut self) -> Result<BatchDelta, ClientError> {
        match self.call(&Request::Commit)? {
            Response::Delta(delta) => Ok(delta),
            other => Client::unexpected(other),
        }
    }

    /// Fetches every retained delta with sequence number above
    /// `after_seq`, in order.
    pub fn sync(&mut self, after_seq: u64) -> Result<Vec<BatchDelta>, ClientError> {
        self.sync_inner(after_seq, None)
    }

    /// Fetches the shard-filtered delta stream above `after_seq`: only
    /// deltas tagged with `shard`, each projected down to that shard's
    /// constraints.  Requires the server to run with `--shards`.
    pub fn sync_shard(
        &mut self,
        after_seq: u64,
        shard: u32,
    ) -> Result<Vec<BatchDelta>, ClientError> {
        self.sync_inner(after_seq, Some(shard))
    }

    fn sync_inner(
        &mut self,
        after_seq: u64,
        shard: Option<u32>,
    ) -> Result<Vec<BatchDelta>, ClientError> {
        self.seq += 1;
        write_request(
            &mut self.conn,
            self.seq,
            &Request::Sync { after_seq, shard },
        )?;
        let mut deltas = Vec::new();
        loop {
            match self.read_one()? {
                Response::Delta(delta) => deltas.push(delta),
                Response::DeltaEnd { count } => {
                    if count as usize != deltas.len() {
                        return Err(ClientError::Protocol(format!(
                            "delta stream announced {count} records but carried {}",
                            deltas.len()
                        )));
                    }
                    return Ok(deltas);
                }
                other => return Client::unexpected(other),
            }
        }
    }

    /// Syncs `replica` up to the session's head, returning how many deltas
    /// were applied.  The replica afterwards reconstructs the session's
    /// `report()` exactly — or, for a shard-filtered replica
    /// ([`CorpusReplica::new_sharded`]), the shard projection of it: the
    /// subscription automatically requests only that shard's deltas.
    pub fn sync_replica(&mut self, replica: &mut CorpusReplica) -> Result<usize, ClientError> {
        let deltas = self.sync_inner(replica.last_seq(), replica.shard())?;
        for delta in &deltas {
            replica
                .apply_delta(delta)
                .map_err(|e| ClientError::Protocol(format!("replica rejected delta: {e}")))?;
        }
        Ok(deltas.len())
    }

    /// Closes one open document, returning its label.
    pub fn close_doc(&mut self, handle: u64) -> Result<String, ClientError> {
        match self.call(&Request::CloseDoc { handle })? {
            Response::Closed { label } => Ok(label),
            other => Client::unexpected(other),
        }
    }

    /// Snapshots the server's metrics registry — the same shape
    /// `xic stats` renders locally.
    pub fn stats(&mut self) -> Result<RegistrySnapshot, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(snapshot) => Ok(snapshot),
            other => Client::unexpected(other),
        }
    }

    /// Asks the server to drain and stop, returning the number of sessions
    /// it will persist.  The connection is closed by the server afterward.
    pub fn shutdown(&mut self) -> Result<u64, ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown { sessions } => Ok(sessions),
            other => Client::unexpected(other),
        }
    }
}
