//! Session actors: one thread per named session, owning its
//! [`CorpusSession`] (or, after a restart, the [`CorpusReplica`] rebuilt
//! from the drained delta log) and fed over a bounded command channel.
//!
//! The actor is the concurrency boundary of the service: a
//! `CorpusSession` borrows its `CompiledSpec` and is single-threaded by
//! construction, so the thread closure takes an `Arc<CompiledSpec>` and
//! builds the session *inside* — every connection talks to it through
//! [`Cmd`] messages, and a slow commit on one session never blocks
//! another session's channel.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use xic_engine::wire::WireFault;
use xic_engine::{
    read_delta_log, write_delta_log, BatchDelta, CompiledSpec, CorpusReplica, CorpusSession,
    DocHandle, JournalError, Limits, ResourceError, SessionError,
};
use xic_telemetry::MetricsRegistry;
use xic_xml::EditOp;

/// A command sent from a connection worker to a session actor.  Every
/// variant carries a rendezvous reply channel (`sync_channel(1)`), so a
/// worker holds at most one command in flight.
pub(crate) enum Cmd {
    /// Parse and open a document under a label.
    Open {
        label: String,
        source: String,
        reply: SyncSender<Result<u64, WireFault>>,
    },
    /// Apply an edit batch, all-or-nothing, answering the queued-op depth.
    Apply {
        handle: u64,
        ops: Vec<EditOp>,
        reply: SyncSender<Result<u64, WireFault>>,
    },
    /// Commit: re-check dirty documents, answer the new delta.
    Commit {
        reply: SyncSender<Result<BatchDelta, WireFault>>,
    },
    /// Export every retained delta above `after_seq`.
    Sync {
        after_seq: u64,
        reply: SyncSender<Result<Vec<BatchDelta>, WireFault>>,
    },
    /// Close one document, answering its label.
    Close {
        handle: u64,
        reply: SyncSender<Result<String, WireFault>>,
    },
    /// Session metadata for the hello ack: (last_seq, is_replica).
    Meta { reply: SyncSender<(u64, bool)> },
    /// Persist the delta log (when a state dir is configured) and stop the
    /// actor, answering the number of deltas made durable.
    Drain {
        reply: SyncSender<Result<u64, WireFault>>,
    },
}

/// The registry-side handle to a running actor.
pub(crate) struct SessionHandle {
    tx: SyncSender<Cmd>,
    last_used: Mutex<Instant>,
    /// Worker requests currently between offer and reply.  The janitor
    /// must never drain a session a worker is mid-conversation with: at
    /// exactly `idle_timeout` of wall-clock idleness a request can already
    /// be in the channel, and eviction then would answer it with a dead
    /// reply channel.  Guarded by [`SessionHandle::begin_request`].
    in_flight: AtomicUsize,
    join: Mutex<Option<JoinHandle<()>>>,
}

/// RAII marker for one worker request against a session: holds the
/// in-flight count up across offer → reply, and re-bumps `last_used` on
/// drop so idleness is measured from request *completion*, not admission.
pub(crate) struct InFlight<'h> {
    handle: &'h SessionHandle,
}

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        *self.handle.last_used.lock().unwrap() = Instant::now();
        self.handle.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Outcome of offering a command to a session's bounded channel.
pub(crate) enum Offer {
    /// The command was accepted.
    Sent,
    /// The channel is full — per-session backpressure (code 3 on the wire).
    Backpressure,
    /// The actor is gone (evicted or drained).
    Gone,
}

impl SessionHandle {
    /// Offers `cmd` without blocking; full channels surface as
    /// backpressure rather than head-of-line blocking across sessions.
    pub(crate) fn offer(&self, cmd: Cmd) -> Offer {
        *self.last_used.lock().unwrap() = Instant::now();
        match self.tx.try_send(cmd) {
            Ok(()) => Offer::Sent,
            Err(TrySendError::Full(_)) => Offer::Backpressure,
            Err(TrySendError::Disconnected(_)) => Offer::Gone,
        }
    }

    /// Seconds-scale idleness for the janitor's eviction scan.
    pub(crate) fn idle_for(&self) -> Duration {
        self.last_used.lock().unwrap().elapsed()
    }

    /// Marks the start of one worker request (bumping `last_used` so the
    /// janitor's idleness clock restarts *before* the command is offered).
    /// Hold the returned guard until the reply has been received.
    pub(crate) fn begin_request(&self) -> InFlight<'_> {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        *self.last_used.lock().unwrap() = Instant::now();
        InFlight { handle: self }
    }

    /// Whether the janitor may drain this session: idle past `idle` with
    /// no worker request in flight.  The in-flight check closes the
    /// boundary race where a session idle exactly `idle_timeout` has a
    /// request already admitted to its channel.
    pub(crate) fn evictable(&self, idle: Duration) -> bool {
        self.in_flight.load(Ordering::SeqCst) == 0 && self.idle_for() > idle
    }

    /// Asks the actor to drain (persist + stop) and joins its thread.
    /// Returns the number of deltas persisted, or `None` when the actor
    /// was already gone.
    pub(crate) fn drain(&self) -> Option<u64> {
        let (reply, rx) = sync_channel(1);
        let persisted = match self.tx.send(Cmd::Drain { reply }) {
            Ok(()) => rx.recv().ok().and_then(|r| r.ok()),
            Err(_) => None,
        };
        if let Some(join) = self.join.lock().unwrap().take() {
            let _ = join.join();
        }
        persisted
    }
}

fn resource_fault(e: &ResourceError) -> WireFault {
    WireFault::new(3, format!("resource:{}", e.limit.name()), e.to_string())
}

/// Maps a session error onto the wire taxonomy: resource rejections are
/// code 3, contained faults code 4, everything else a code-2 document
/// error.  The connection stays up in every case.
fn session_fault(e: SessionError) -> WireFault {
    match &e {
        SessionError::Resource(r) => resource_fault(r),
        SessionError::Poisoned { .. } => WireFault::new(4, "fault:poisoned", e.to_string()),
        _ => WireFault::new(2, "document", e.to_string()),
    }
}

fn journal_fault(e: JournalError) -> WireFault {
    WireFault::new(2, "journal", e.to_string())
}

fn replica_fault(name: &str) -> WireFault {
    WireFault::new(
        2,
        "replica",
        format!(
            "session {name:?} is a drained replica restored from its delta log; \
             it serves sync reads only"
        ),
    )
}

fn log_path(state_dir: &std::path::Path, name: &str) -> PathBuf {
    state_dir.join(format!("{name}.xicj"))
}

/// Spawns a live session actor.  The thread owns the spec `Arc` and builds
/// the `CorpusSession` against it; `backlog` bounds the command channel.
pub(crate) fn spawn_live(
    name: String,
    spec: Arc<CompiledSpec>,
    limits: Limits,
    registry: Arc<MetricsRegistry>,
    backlog: usize,
    state_dir: Option<PathBuf>,
    scope: Option<Vec<u32>>,
) -> SessionHandle {
    let (tx, rx) = sync_channel(backlog.max(1));
    let join = std::thread::Builder::new()
        .name(format!("xic-session-{name}"))
        .spawn(move || {
            run_live(
                &name,
                &spec,
                limits,
                registry,
                rx,
                state_dir.as_deref(),
                scope,
            )
        })
        .expect("spawn session actor");
    SessionHandle {
        tx,
        last_used: Mutex::new(Instant::now()),
        in_flight: AtomicUsize::new(0),
        join: Mutex::new(Some(join)),
    }
}

fn run_live(
    name: &str,
    spec: &CompiledSpec,
    limits: Limits,
    registry: Arc<MetricsRegistry>,
    rx: Receiver<Cmd>,
    state_dir: Option<&std::path::Path>,
    scope: Option<Vec<u32>>,
) {
    let mut session = CorpusSession::with_registry_and_limits(spec, limits, registry);
    if let Some(shards) = scope {
        // Validated against the plan at `Server::start`; scoping before any
        // document opens is guaranteed because the session is brand new.
        session.scope_to_shards(&shards);
    }
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Open {
                label,
                source,
                reply,
            } => {
                let result = session
                    .open_source(&label, &source)
                    .map(|h| h.raw())
                    .map_err(session_fault);
                let _ = reply.send(result);
            }
            Cmd::Apply { handle, ops, reply } => {
                let result = session
                    .apply(DocHandle::from_raw(handle), &ops)
                    .map(|()| session.queued_ops() as u64)
                    .map_err(session_fault);
                let _ = reply.send(result);
            }
            Cmd::Commit { reply } => {
                let result = session.try_commit().map_err(|e| resource_fault(&e));
                let _ = reply.send(result);
            }
            Cmd::Sync { after_seq, reply } => {
                let result = session
                    .export_deltas(after_seq)
                    .map(<[BatchDelta]>::to_vec)
                    .map_err(journal_fault);
                let _ = reply.send(result);
            }
            Cmd::Close { handle, reply } => {
                let handle = DocHandle::from_raw(handle);
                let result = session
                    .label(handle)
                    .map(str::to_owned)
                    .and_then(|label| session.close(handle).map(|_| label))
                    .map_err(session_fault);
                let _ = reply.send(result);
            }
            Cmd::Meta { reply } => {
                let _ = reply.send((session.last_seq(), false));
            }
            Cmd::Drain { reply } => {
                // Persist the *committed* history only: an `applied` ack
                // means "queued for the next commit", so uncommitted ops
                // are not yet acknowledged as durable — but every delta a
                // client ever received lands in the log.
                let result = persist(name, &session, state_dir);
                let _ = reply.send(result);
                return;
            }
        }
    }
}

fn persist(
    name: &str,
    session: &CorpusSession<'_>,
    state_dir: Option<&std::path::Path>,
) -> Result<u64, WireFault> {
    let Some(dir) = state_dir else { return Ok(0) };
    if session.last_seq() == 0 {
        return Ok(0);
    }
    let deltas = session.export_deltas(0).map_err(journal_fault)?;
    write_delta_log(log_path(dir, name), session.spec().id(), deltas)
        .map(|_| deltas.len() as u64)
        .map_err(journal_fault)
}

/// Spawns a replica actor from a drained delta log: the restarted server's
/// read-only continuation of a previous run's session.  Fails when the log
/// is unreadable or belongs to another spec.
pub(crate) fn spawn_replica(
    name: String,
    path: PathBuf,
    spec: xic_engine::SpecId,
    backlog: usize,
) -> Result<SessionHandle, JournalError> {
    let log = read_delta_log(&path, spec)?;
    let mut replica = CorpusReplica::new(spec);
    replica.apply_deltas(&log.deltas)?;
    let deltas = log.deltas;
    let (tx, rx) = sync_channel(backlog.max(1));
    let join = std::thread::Builder::new()
        .name(format!("xic-replica-{name}"))
        .spawn(move || run_replica(&name, &replica, &deltas, rx))
        .expect("spawn replica actor");
    Ok(SessionHandle {
        tx,
        last_used: Mutex::new(Instant::now()),
        in_flight: AtomicUsize::new(0),
        join: Mutex::new(Some(join)),
    })
}

fn run_replica(name: &str, replica: &CorpusReplica, deltas: &[BatchDelta], rx: Receiver<Cmd>) {
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Open { reply, .. } => {
                let _ = reply.send(Err(replica_fault(name)));
            }
            Cmd::Apply { reply, .. } => {
                let _ = reply.send(Err(replica_fault(name)));
            }
            Cmd::Commit { reply } => {
                let _ = reply.send(Err(replica_fault(name)));
            }
            Cmd::Sync { after_seq, reply } => {
                let window: Vec<BatchDelta> = deltas
                    .iter()
                    .filter(|d| d.seq > after_seq)
                    .cloned()
                    .collect();
                let _ = reply.send(Ok(window));
            }
            Cmd::Close { reply, .. } => {
                let _ = reply.send(Err(replica_fault(name)));
            }
            Cmd::Meta { reply } => {
                let _ = reply.send((replica.last_seq(), true));
            }
            Cmd::Drain { reply } => {
                // Already durable: the replica *is* the persisted log.
                let _ = reply.send(Ok(0));
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xic_engine::CompiledSpec;

    fn live_handle() -> SessionHandle {
        let spec = Arc::new(
            CompiledSpec::from_sources(
                "<!ELEMENT school (teacher*)>\n\
                 <!ELEMENT teacher EMPTY>\n\
                 <!ATTLIST teacher name CDATA #REQUIRED>",
                Some("school"),
                "teacher.name -> teacher",
            )
            .unwrap(),
        );
        spawn_live(
            "t".into(),
            spec,
            Limits::UNLIMITED,
            Arc::new(MetricsRegistry::new()),
            4,
            None,
            None,
        )
    }

    fn rewind_last_used(handle: &SessionHandle, by: Duration) {
        *handle.last_used.lock().unwrap() = Instant::now() - by;
    }

    /// The janitor/worker boundary race: a session idle exactly
    /// `idle_timeout` must not be drainable while a worker has a request
    /// between offer and reply.  `begin_request` closes the window, and
    /// dropping the guard restarts the idleness clock from completion.
    #[test]
    fn in_flight_requests_block_eviction_at_the_idle_boundary() {
        let handle = live_handle();
        let idle = Duration::from_millis(10);
        rewind_last_used(&handle, idle * 100);
        assert!(handle.evictable(idle), "genuinely idle sessions evict");

        // A worker starting a request closes the eviction window...
        let guard = handle.begin_request();
        assert!(!handle.evictable(idle));
        // ...even if the wall clock runs past the timeout mid-request.
        rewind_last_used(&handle, idle * 100);
        assert!(
            !handle.evictable(idle),
            "a session with a request in flight must never be drained"
        );

        // Completion restarts the idleness clock, so the session is not
        // instantly stale the moment the reply lands.
        drop(guard);
        assert!(!handle.evictable(idle));

        // Only genuine idleness after the last completed request evicts.
        rewind_last_used(&handle, idle * 100);
        assert!(handle.evictable(idle));
        let _ = handle.drain();
    }

    /// Overlapping workers: the session stays pinned until the *last*
    /// in-flight request completes.
    #[test]
    fn eviction_waits_for_every_overlapping_request() {
        let handle = live_handle();
        let idle = Duration::from_millis(10);
        let first = handle.begin_request();
        let second = handle.begin_request();
        rewind_last_used(&handle, idle * 100);
        drop(first);
        rewind_last_used(&handle, idle * 100);
        assert!(!handle.evictable(idle), "second request still in flight");
        drop(second);
        rewind_last_used(&handle, idle * 100);
        assert!(handle.evictable(idle));
        let _ = handle.drain();
    }
}
